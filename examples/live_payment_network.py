#!/usr/bin/env python
"""Two Teechain daemons as real processes, driven over their control API.

Spawns ``python -m repro.runtime serve`` twice, lets the daemons attest
to each other over TCP (quotes in the wire handshake — no shared
memory), opens a channel, funds it from both sides, streams payments in
both directions, and settles on the replicated simulated blockchain.

Everything crossing the sockets is the versioned wire codec; the same
flow is available interactively:

    terminal 1:  python -m repro.runtime serve --name alice --port 7000 \
                     --control-port 7100 --fund alice=200000 --fund bob=200000
    terminal 2:  python -m repro.runtime serve --name bob --port 7001 \
                     --control-port 7101 --fund alice=200000 --fund bob=200000
    terminal 3:  python -m repro.runtime call 127.0.0.1:7100 connect \
                     peer=bob host=127.0.0.1 port=7001
"""

from repro.runtime.launch import launch_network


def main() -> None:
    print("=== spawning two node daemons (alice, bob) ===")
    handles, ports = launch_network({"alice": 200_000, "bob": 200_000})
    alice = handles["alice"].control
    bob = handles["bob"].control
    try:
        for name, (port, control_port) in ports.items():
            print(f"{name}: peers on :{port}, control on :{control_port}")

        print("\n=== open a channel (attested over TCP) ===")
        channel_id = alice.call("open-channel", peer="bob")["channel_id"]
        print(f"channel: {channel_id}")

        print("\n=== fund it from both sides ===")
        for client, peer in ((alice, "bob"), (bob, "alice")):
            deposit = client.call("deposit", value=60_000)
            state = client.call("approve-associate", peer=peer,
                                channel_id=channel_id, txid=deposit["txid"])
            print(f"deposit {deposit['txid'][:12]}… associated; balances "
                  f"{state['my_balance']}/{state['remote_balance']}")

        print("\n=== 100 payments, both directions ===")
        for _ in range(50):
            alice.call("pay", channel_id=channel_id, amount=7)
            bob.call("pay", channel_id=channel_id, amount=3)
        rtt = alice.call("echo", peer="bob")["rtt_s"]
        state = alice.call("channel", channel_id=channel_id)
        print(f"alice sees {state['my_balance']}/{state['remote_balance']} "
              f"(loopback echo RTT {rtt * 1e3:.2f} ms)")

        print("\n=== settle to the replicated chain ===")
        settlement = alice.call("settle", channel_id=channel_id)
        print(f"settlement tx {settlement['txid'][:12]}… mined")
        for name, client in (("alice", alice), ("bob", bob)):
            balance = client.call("balance")["onchain"]
            height = client.call("stats")["chain"]["height"]
            print(f"{name}: on-chain {balance} at height {height}")
    finally:
        print("\n=== shutting daemons down ===")
        for handle in handles.values():
            handle.shutdown()


if __name__ == "__main__":
    main()
