#!/usr/bin/env python
"""A small Teechain payment network with routing and temporary channels.

Builds a five-node hub topology (one hub, four spokes), replays a payment
workload through multi-hop routing, relieves hub contention with temporary
channels (paper §5.2), and finally tears everything down verifying balance
correctness for every participant.
"""

from repro import TeechainNetwork
from repro.core.temporary import TemporaryChannelManager
from repro.network.topology import Overlay
from repro.routing import RoutePlanner


def main() -> None:
    network = TeechainNetwork()
    hub = network.create_node("hub", funds=2_000_000)
    spokes = [network.create_node(f"spoke{i}", funds=500_000)
              for i in range(1, 5)]

    print("=== building the overlay: hub ↔ every spoke ===")
    channels = {}
    for spoke in spokes:
        cid = hub.open_channel(spoke)
        deposit_hub = hub.create_deposit(200_000)
        hub.approve_and_associate(spoke, deposit_hub, cid)
        deposit_spoke = spoke.create_deposit(100_000)
        spoke.approve_and_associate(hub, deposit_spoke, cid)
        channels[spoke.name] = cid
    overlay = Overlay(
        nodes=tuple(["hub"] + [spoke.name for spoke in spokes]),
        channels=tuple(("hub", spoke.name) for spoke in spokes),
        tier_of={"hub": 1, **{spoke.name: 2 for spoke in spokes}},
    )

    print("\n=== routed spoke-to-spoke payments through the hub ===")
    workload = [("spoke1", "spoke3", 5_000), ("spoke2", "spoke4", 7_500),
                ("spoke4", "spoke1", 2_000), ("spoke3", "spoke2", 9_000)]
    nodes = {node.name: node for node in [hub] + spokes}
    planner = RoutePlanner.from_overlay(overlay)
    for sender, recipient, amount in workload:
        route = planner.find_route(sender, recipient, amount=amount)
        path_nodes = [nodes[name] for name in route]
        payment = nodes[sender].pay_multihop(path_nodes, amount)
        status = "✓" if nodes[sender].multihop_completed(payment) else "✗"
        print(f"{sender} → {recipient}: {amount} via {' → '.join(route)} "
              f"{status}")

    print("\n=== temporary channels to relieve hub contention (§5.2) ===")
    manager = TemporaryChannelManager(hub)
    temporary = manager.create(spokes[0], deposit_value=50_000)
    print(f"temporary channel {temporary!r} created instantly "
          f"(hub ↔ spoke1 now has 2 parallel channels)")
    hub.pay(temporary, 12_000)
    print("payment executed on the temporary channel while the primary "
          "stays available")
    manager.merge(spokes[0], temporary, channels["spoke1"])
    print("temporary channel merged back off-chain; its deposit is free "
          "for reuse")

    print("\n=== teardown: settle everything, verify everyone ===")
    for spoke in spokes:
        hub.settle(channels[spoke.name])
    network.mine()
    for node in [hub] + spokes:
        node.assert_balance_correct()
        print(f"{node.name}: on-chain {node.onchain_balance():>9,} — "
              "balance correct ✓")


if __name__ == "__main__":
    main()
