#!/usr/bin/env python
"""Multi-hop payments with proofs of premature termination (paper §5).

Alice pays Carol through Bob (no direct Alice↔Carol channel).  The example
runs the happy path, then reproduces the paper's central safety scenario:
a participant walks away mid-payment, settles one channel on the
blockchain, and everyone else uses that settlement as a *proof of
premature termination* (PoPT) to settle their own channels in the
consistent state — no synchrony required.
"""

from repro import TeechainNetwork
from repro.network import NetworkAdversary


def build_path(network):
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    carol = network.create_node("carol", funds=100_000)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(40_000)
    bob.approve_and_associate(carol, deposit_bc, bc)
    return alice, bob, carol, ab, bc


def main() -> None:
    print("=== happy path: alice → bob → carol ===")
    network = TeechainNetwork()
    alice, bob, carol, ab, bc = build_path(network)
    payment = alice.pay_multihop([alice, bob, carol], 5_000)
    print(f"payment completed: {alice.multihop_completed(payment)}")
    print(f"alice↔bob balances (alice's view): {alice.channel_balance(ab)}")
    print(f"bob↔carol balances (carol's view): {carol.channel_balance(bc)}")
    for node in (alice, bob, carol):
        node.assert_balance_correct()
    print("balance correctness holds for all three ✓")

    print("\n=== premature termination: bob ejects mid-payment ===")
    network = TeechainNetwork()
    alice, bob, carol, ab, bc = build_path(network)
    adversary = NetworkAdversary(network.transport)
    adversary.partition("bob", "carol")  # the lock never reaches carol

    payment = alice.pay_multihop([alice, bob, carol], 5_000)
    print(f"payment stuck; bob's stage: "
          f"{bob.program.multihop_sessions[payment].stage.value}")

    settlements = bob.eject(payment)
    network.mine()
    print(f"bob ejected, broadcasting {len(settlements)} pre-payment "
          f"settlement(s)")

    # Alice observes bob's settlement of their shared channel on the
    # blockchain and presents it to her TEE as a PoPT.
    popt = settlements[0]
    alice_settlements = alice.eject_with_popt(payment, popt)
    network.mine()
    print(f"alice settled consistently (pre-payment) with "
          f"{len(alice_settlements)} transaction(s)")

    for node in (alice, bob, carol):
        node.assert_balance_correct()
    print("no funds lost despite the premature termination ✓")


if __name__ == "__main__":
    main()
