#!/usr/bin/env python
"""The headline claim, head to head: asynchronous blockchain access.

Existing payment networks assume a victim can write to the blockchain
within a bounded time τ.  Recent attacks (spam floods, eclipse attacks,
miner censorship) break that assumption.  This example mounts the *same*
transaction-censorship attack against

* a **Lightning Network** channel — the attacker broadcasts a revoked
  state and censors the victim's justice transaction until the dispute
  window closes: **the theft succeeds**; and
* a **Teechain** channel — there is no stale state to publish (the TEE
  signs only the latest settlement) and no deadline to miss: however long
  the attacker delays the victim's settlement, the eventual on-chain
  outcome pays the victim their full balance: **the theft fails**.
"""

from repro import TeechainNetwork
from repro.baselines import LightningChannel
from repro.blockchain import Blockchain, LockingScript
from repro.crypto import KeyPair
from repro.errors import DoubleSpend


def lightning_attack() -> None:
    print("=== Lightning Network under write censorship ===")
    chain = Blockchain()
    alice = KeyPair.from_seed(b"ln-alice")
    bob = KeyPair.from_seed(b"ln-bob")
    coinbase = chain.mint(LockingScript.pay_to_address(alice.address()),
                          100_000)
    chain.mine_block()

    channel = LightningChannel(chain, alice, bob, funding_a=60_000,
                               funding_b=0, justice_window_blocks=3)
    channel.open([(coinbase.outpoint(0), 100_000)], alice)
    for _ in range(6):
        chain.mine_block()

    stale = channel.current                 # alice owns 60,000 here
    channel.pay(from_a=True, amount=20_000)  # now alice owns only 40,000
    print("alice paid 20,000 to bob; the old 60,000-state is revoked")

    channel.broadcast_state(stale)
    print("alice (attacker) broadcasts the revoked state...")
    for _ in range(5):
        chain.mine_block()  # bob's justice transaction is censored
    print(f"justice window passed; theft succeeded: "
          f"{channel.theft_succeeded(stale)}")
    assert channel.theft_succeeded(stale)
    print("→ with synchronous-access assumptions broken, LN loses funds\n")


def teechain_defence() -> None:
    print("=== Teechain under the same adversary ===")
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    channel = alice.open_channel(bob)
    deposit = alice.create_deposit(60_000)
    alice.approve_and_associate(bob, deposit, channel)
    alice.pay(channel, 20_000)
    print("alice paid 20,000 to bob inside the channel")

    # Alice's TEE will only ever sign the *latest* settlement; to "roll
    # back" she would need the TEE to sign an old state, which it refuses
    # by construction.  The strongest remaining attack is censorship:
    # delay bob's settlement arbitrarily.
    settlement = bob.settle(channel)
    bob.adversary.delay(settlement.txid, extra=3_600.0)  # one hour
    print("bob settles; the adversary delays his transaction by an hour")

    # Blocks pass with bob's settlement censored; nothing the attacker
    # broadcasts can spend the deposit at stale balances, because no such
    # signed transaction exists.
    for _ in range(6):
        network.mine()

    network.run()       # ...eventually the delay elapses
    network.mine()
    print(f"settlement finally confirmed: "
          f"{network.chain.contains(settlement.txid)}")
    bob.assert_balance_correct()
    alice.assert_balance_correct()
    print("→ Teechain: arbitrary write delays cannot cause fund loss ✓")


def main() -> None:
    lightning_attack()
    teechain_defence()


if __name__ == "__main__":
    main()
