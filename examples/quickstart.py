#!/usr/bin/env python
"""Quickstart: a bidirectional Teechain payment channel.

Walks the full Algorithm 1 lifecycle between Alice and Bob:

1. fund on-chain wallets;
2. attest enclaves and open a payment channel (seconds, no blockchain
   writes — contrast with Lightning's six-confirmation wait);
3. create fund deposits and dynamically associate them with the channel;
4. exchange payments as single message exchanges;
5. settle on-chain with one final transaction;
6. verify balance correctness: everyone can reclaim exactly what the
   payment history says they own.
"""

from repro import TeechainNetwork


def main() -> None:
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)

    print("=== channel establishment (no blockchain interaction) ===")
    height_before = network.chain.height
    channel = alice.open_channel(bob)
    print(f"channel {channel!r} open; blockchain height unchanged: "
          f"{network.chain.height == height_before}")

    print("\n=== dynamic deposit assignment ===")
    deposit_a = alice.create_deposit(50_000)
    alice.approve_and_associate(bob, deposit_a, channel)
    deposit_b = bob.create_deposit(30_000)
    bob.approve_and_associate(alice, deposit_b, channel)
    mine, theirs = alice.channel_balance(channel)
    print(f"alice's view — own balance: {mine}, bob's balance: {theirs}")

    print("\n=== payments: one message each ===")
    alice.pay(channel, 10_000)
    bob.pay(channel, 2_500)
    alice.pay(channel, 4_000)
    mine, theirs = alice.channel_balance(channel)
    print(f"after three payments — alice: {mine}, bob: {theirs}")

    print("\n=== settlement: a single on-chain transaction ===")
    settlement = alice.settle(channel)
    network.mine()
    print(f"settlement txid: {settlement.txid[:16]}…")
    print(f"alice on-chain: {alice.onchain_balance()}")
    print(f"bob on-chain:   {bob.onchain_balance()}")

    print("\n=== balance correctness (paper Appendix A) ===")
    alice.assert_balance_correct()
    bob.assert_balance_correct()
    print("both parties reclaimed ≥ their perceived balances ✓")


if __name__ == "__main__":
    main()
