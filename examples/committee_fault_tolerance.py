#!/usr/bin/env python
"""Committee chains: surviving crashes and Byzantine TEEs (paper §6).

Demonstrates the three defences of Teechain's fault-tolerance layer:

1. **Crash recovery** — Alice's enclave dies; she reads a live backup
   (force-freezing the chain) and settles from the replicated state.
2. **Byzantine TEE containment** — an attacker extracts Alice's enclave
   memory (Foreshadow-style) and forks its state, then tries to settle the
   channel at a *stale* balance.  The 2-of-3 committee refuses to co-sign
   anything inconsistent with its replicated view, so the theft fails.
3. **Force-freeze on read** — any read from a backup freezes the whole
   chain: no more payments, only settlement, killing rollback attacks.
"""

from repro import TeechainNetwork
from repro.core.settlement import build_unsigned_settlement
from repro.errors import EnclaveFrozen, ThresholdError
from repro.tee import crash_enclave, fork_enclave


def setup():
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    alice.attach_committee(backups=2, threshold=2)  # 2-of-3 deposits
    channel = alice.open_channel(bob)
    deposit = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit, channel)
    return network, alice, bob, channel, deposit


def main() -> None:
    print("=== 1. crash recovery from a backup ===")
    network, alice, bob, channel, _ = setup()
    alice.pay(channel, 7_000)
    crash_enclave(alice.enclave)
    print("alice's enclave crashed mid-session")
    ledger = alice.reclaim_all()  # falls back to backup recovery
    print(f"recovered from backup; alice's on-chain balance: {ledger}")
    alice.assert_balance_correct()
    bob.assert_balance_correct()
    print("balance correctness survived the crash ✓")

    print("\n=== 2. Byzantine TEE: stale-state settlement refused ===")
    network, alice, bob, channel, deposit = setup()
    fork = fork_enclave(alice.enclave, "stolen-snapshot")
    print("attacker extracted and forked alice's enclave (pre-payment)")
    alice.pay(channel, 10_000)  # the real payment the attacker wants undone

    stale = fork.program.channels[channel]
    records = [fork.program.deposits[o] for o in sorted(stale.all_deposits())]
    stale_settlement = build_unsigned_settlement(records, [
        (stale.my_settlement_address, stale.my_balance),
        (stale.remote_settlement_address, stale.remote_balance),
    ])
    print(f"attacker's stale settlement claims {stale.my_balance} for alice "
          f"(true balance: {alice.channel_balance(channel)[0]})")
    try:
        alice.committee.gather_signatures(deposit, stale_settlement)
        raise SystemExit("BUG: committee signed a stale settlement!")
    except ThresholdError:
        print("committee refused to co-sign the stale settlement ✓")

    print("\n=== 3. force-freeze on backup read ===")
    state = alice.replication.read_backup(alice.replication.members[0])
    print(f"read backup state (version {alice.replication.version}); "
          "chain frozen")
    try:
        alice.pay(channel, 1_000)
        raise SystemExit("BUG: payment accepted on a frozen chain!")
    except EnclaveFrozen:
        print("further payments refused ✓")
    transaction = alice._ecall("unilateral_settlement", channel)
    alice.client.broadcast(transaction)
    network.mine()
    alice.assert_balance_correct()
    print("settlement still possible while frozen ✓")


if __name__ == "__main__":
    main()
