"""The public node API and the simulated (discrete-event) transport mode."""

import pytest

from repro.core.node import TeechainNetwork
from repro.errors import MultihopError, ReproError
from repro.network.topology import fig3_topology


class TestNetworkFactory:
    def test_duplicate_node_name_rejected(self, network):
        network.create_node("n1")
        with pytest.raises(ReproError):
            network.create_node("n1")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ReproError):
            TeechainNetwork(transport="carrier-pigeon")

    def test_simulated_transport_needs_topology(self):
        with pytest.raises(ReproError):
            TeechainNetwork(transport="simulated")

    def test_channel_ids_unique(self, funded_pair):
        network, alice, bob = funded_pair
        first = alice.open_channel(bob)
        second = alice.open_channel(bob)
        assert first != second

    def test_funding_registers_initial_balance(self, network):
        node = network.create_node("n", funds=42_000)
        assert node.onchain_balance() == 42_000
        assert network.tracker.perceived_balance("n") == 42_000

    def test_incremental_funding_accumulates(self, network):
        node = network.create_node("n", funds=10_000)
        node.fund(5_000)
        assert node.onchain_balance() == 15_000
        assert network.tracker.perceived_balance("n") == 15_000


class TestTracker:
    def test_payment_moves_perceived_balance(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 3_000)
        assert network.tracker.perceived_balance("alice") == 97_000
        assert network.tracker.perceived_balance("bob") == 103_000

    def test_multihop_resolution(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        alice.pay_multihop([alice, bob, carol], 4_000)
        assert network.tracker.perceived_balance("alice") == 96_000
        assert network.tracker.perceived_balance("carol") == 104_000
        assert network.tracker.perceived_balance("bob") == 100_000
        assert network.tracker.inflight("alice") == 0

    def test_unresolved_multihop_counts_as_inflight(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        from repro.network import NetworkAdversary
        adversary = NetworkAdversary(network.transport)
        adversary.partition("bob", "carol")
        alice.pay_multihop([alice, bob, carol], 4_000)
        assert network.tracker.inflight("alice") == 4_000
        assert network.tracker.perceived_balance("alice") == 100_000

    def test_failed_multihop_resolves_inflight(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.pay_multihop([alice, bob, carol], 99_000_000)
        assert network.tracker.inflight("alice") == 0


class TestSimulatedTransport:
    """The same protocol over the discrete-event network: operations
    complete only as the clock advances past real link latencies."""

    @pytest.fixture
    def des_network(self):
        network = TeechainNetwork(transport="simulated",
                                  topology=fig3_topology())
        alice = network.create_node("US", funds=100_000)
        bob = network.create_node("UK1", funds=100_000)
        return network, alice, bob

    def test_channel_opens_after_one_way_latency(self, des_network):
        network, alice, bob = des_network
        channel = alice.open_channel(bob)
        assert not alice.program.channels[channel].is_open
        network.run()
        assert alice.program.channels[channel].is_open
        assert bob.program.channels[channel].is_open
        # The acknowledgement crossed the 90 ms-RTT atlantic link once.
        assert network.scheduler.now >= 0.045

    def test_payment_round_trip_on_simulated_clock(self, des_network):
        network, alice, bob = des_network
        channel = alice.open_channel(bob)
        network.run()
        record = alice.create_deposit(50_000)
        # Over the DES transport each exchange needs the clock to advance.
        alice.approve_deposit(bob, record)
        network.run()
        alice.associate_deposit(channel, record)
        network.run()
        start = network.scheduler.now
        alice.pay(channel, 1_000)
        network.run()
        assert bob.channel_balance(channel)[0] == 1_000
        assert network.scheduler.now - start >= 0.045

    def test_full_lifecycle_over_des(self, des_network):
        network, alice, bob = des_network
        channel = alice.open_channel(bob)
        network.run()
        record = alice.create_deposit(50_000)
        alice.approve_deposit(bob, record)
        network.run()
        alice.associate_deposit(channel, record)
        network.run()
        alice.pay(channel, 10_000)
        network.run()
        transaction = alice.settle(channel)
        network.run()
        network.mine()
        assert network.chain.contains(transaction.txid)
        alice.assert_balance_correct()
        bob.assert_balance_correct()


class TestReprs:
    def test_node_repr(self, network):
        node = network.create_node("n")
        assert "n" in repr(node)
