"""Blockchain substrate: transactions, scripts, UTXO set, validation,
mining, confirmations, and conservation of value."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.blockchain import (
    Blockchain,
    LockingScript,
    Miner,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    Witness,
    build_p2pkh_transfer,
)
from repro.blockchain.cost import (
    blockchain_cost,
    transaction_cost,
    transaction_pubkeys,
    transaction_signatures,
)
from repro.crypto import KeyPair, MultisigSpec
from repro.errors import (
    DoubleSpend,
    InvalidTransaction,
    UnknownOutput,
)
from repro.simulation import Scheduler

ALICE = KeyPair.from_seed(b"chain-alice")
BOB = KeyPair.from_seed(b"chain-bob")


def funded_chain(value=100_000):
    chain = Blockchain()
    coinbase = chain.mint(LockingScript.pay_to_address(ALICE.address()), value)
    chain.mine_block()
    return chain, coinbase


class TestTransactions:
    def test_txid_ignores_witnesses(self):
        chain, coinbase = funded_chain()
        unsigned = Transaction(
            inputs=(TxInput(coinbase.outpoint(0)),),
            outputs=(TxOutput(100_000,
                              LockingScript.pay_to_address(BOB.address())),),
        )
        signed = unsigned.with_witnesses([Witness(
            signatures=(ALICE.private.sign(unsigned.sighash()),),
            public_key=ALICE.public,
        )])
        assert unsigned.txid == signed.txid

    def test_conflict_detection(self):
        chain, coinbase = funded_chain()
        tx1 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 1)])
        tx2 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 2)])
        assert tx1.conflicts_with(tx2)
        assert not tx1.conflicts_with(tx1) or True  # self-conflict trivially
        unrelated = Transaction(
            inputs=(TxInput(OutPoint("ff" * 32, 0)),),
            outputs=(TxOutput(1, LockingScript.pay_to_address("btcx")),),
        )
        assert not tx1.conflicts_with(unrelated)

    def test_duplicate_input_rejected(self):
        outpoint = OutPoint("aa" * 32, 0)
        with pytest.raises(InvalidTransaction):
            Transaction(
                inputs=(TxInput(outpoint), TxInput(outpoint)),
                outputs=(TxOutput(1, LockingScript.pay_to_address("btcx")),),
            )

    def test_no_outputs_rejected(self):
        with pytest.raises(InvalidTransaction):
            Transaction(inputs=(TxInput(OutPoint("aa" * 32, 0)),), outputs=())

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidTransaction):
            TxOutput(-1, LockingScript.pay_to_address("btcx"))

    def test_overspend_rejected_by_builder(self):
        chain, coinbase = funded_chain()
        with pytest.raises(InvalidTransaction):
            build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                 ALICE.private, [(BOB.address(), 100_001)])

    def test_outpoint_index_bounds(self):
        chain, coinbase = funded_chain()
        with pytest.raises(InvalidTransaction):
            coinbase.outpoint(5)


class TestScripts:
    def test_p2pkh_witness(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private, [(BOB.address(), 50_000)])
        chain.submit(tx)

    def test_p2pkh_wrong_key_rejected(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  BOB.private, [(BOB.address(), 50_000)])
        with pytest.raises(InvalidTransaction):
            chain.submit(tx)

    def test_multisig_spend_requires_threshold(self):
        chain, coinbase = funded_chain()
        spec = MultisigSpec(2, (ALICE.public, BOB.public))
        fund = build_deposit(chain, coinbase, spec, 60_000)
        chain.submit(fund)
        chain.mine_block()
        spend = Transaction(
            inputs=(TxInput(fund.outpoint(0)),),
            outputs=(TxOutput(60_000,
                              LockingScript.pay_to_address(BOB.address())),),
        )
        digest = spend.sighash()
        under = spend.with_witnesses([
            Witness(signatures=(ALICE.private.sign(digest),))
        ])
        with pytest.raises(InvalidTransaction):
            chain.submit(under)
        full = spend.with_witnesses([Witness(signatures=(
            ALICE.private.sign(digest), BOB.private.sign(digest)))])
        chain.submit(full)

    def test_script_must_be_exactly_one_kind(self):
        with pytest.raises(InvalidTransaction):
            LockingScript()
        with pytest.raises(InvalidTransaction):
            LockingScript(p2pkh_address="btcx",
                          multisig=MultisigSpec(1, (ALICE.public,)))


def build_deposit(chain, coinbase, spec, value):
    unsigned = Transaction(
        inputs=(TxInput(coinbase.outpoint(0)),),
        outputs=(
            TxOutput(value, LockingScript.pay_to_multisig(spec)),
            TxOutput(100_000 - value,
                     LockingScript.pay_to_address(ALICE.address())),
        ),
    )
    witness = Witness(signatures=(ALICE.private.sign(unsigned.sighash()),),
                      public_key=ALICE.public)
    return unsigned.with_witnesses([witness])


class TestChain:
    def test_balance_tracking(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private,
                                  [(BOB.address(), 40_000),
                                   (ALICE.address(), 60_000)])
        chain.submit(tx)
        chain.mine_block()
        assert chain.balance(BOB.address()) == 40_000
        assert chain.balance(ALICE.address()) == 60_000

    def test_double_spend_in_mempool_rejected(self):
        chain, coinbase = funded_chain()
        tx1 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 1)])
        tx2 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 2)])
        chain.submit(tx1)
        with pytest.raises(DoubleSpend):
            chain.submit(tx2)

    def test_double_spend_after_confirmation_rejected(self):
        chain, coinbase = funded_chain()
        tx1 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 1)])
        chain.submit(tx1)
        chain.mine_block()
        tx2 = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                   ALICE.private, [(BOB.address(), 2)])
        with pytest.raises(DoubleSpend):
            chain.submit(tx2)

    def test_unknown_output_rejected(self):
        chain, _ = funded_chain()
        ghost = Transaction(
            inputs=(TxInput(OutPoint("ee" * 32, 0)),),
            outputs=(TxOutput(1, LockingScript.pay_to_address("btcx")),),
        )
        with pytest.raises(UnknownOutput):
            chain.submit(ghost)

    def test_submit_idempotent(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private, [(BOB.address(), 1)])
        assert chain.submit(tx) == chain.submit(tx)
        assert chain.mempool_size() == 1

    def test_confirmations_grow_with_blocks(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private, [(BOB.address(), 1)])
        chain.submit(tx)
        assert chain.confirmations(tx.txid) == 0
        chain.mine_block()
        assert chain.confirmations(tx.txid) == 1
        chain.mine_block()
        chain.mine_block()
        assert chain.confirmations(tx.txid) == 3

    def test_block_limit_leaves_overflow_queued(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer(
            [(coinbase.outpoint(0), 100_000)], ALICE.private,
            [(BOB.address(), 10_000), (ALICE.address(), 90_000)])
        chain.submit(tx)
        chain.mine_block()
        # two independent spends, block limit 1
        entries = chain.outputs_for(ALICE.address())
        spends = [
            build_p2pkh_transfer([(entry.outpoint, entry.value)],
                                 ALICE.private, [(BOB.address(), 1)])
            for entry in entries
        ]
        for spend in spends:
            chain.submit(spend)
        chain.mine_block(limit=1)
        assert chain.mempool_size() == len(spends) - 1

    def test_conservation_of_value(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private,
                                  [(BOB.address(), 30_000),
                                   (ALICE.address(), 70_000)])
        chain.submit(tx)
        chain.mine_block()
        assert chain.utxos.total_value() == chain.total_minted()

    def test_block_listener(self):
        chain, _ = funded_chain()
        seen = []
        chain.subscribe(seen.append)
        chain.mine_block()
        assert len(seen) == 1 and seen[0].height == 2


class TestMiner:
    def test_periodic_mining(self):
        scheduler = Scheduler()
        chain = Blockchain()
        miner = Miner(chain, scheduler, block_interval=600.0)
        miner.start()
        scheduler.run(until=1_900.0)
        assert chain.height == 3

    def test_stop(self):
        scheduler = Scheduler()
        chain = Blockchain()
        miner = Miner(chain, scheduler, block_interval=10.0)
        miner.start()
        scheduler.run(until=25.0)
        miner.stop()
        scheduler.run(until=100.0)
        assert chain.height == 2


class TestCostMetric:
    def test_p2pkh_spend_cost(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private, [(BOB.address(), 1)])
        # one signature + one revealed pubkey = one pair.
        assert transaction_signatures(tx) == 1
        assert transaction_pubkeys(tx) == 1
        assert transaction_cost(tx) == 1.0

    def test_deposit_cost_is_one_plus_half_n(self):
        chain, coinbase = funded_chain()
        spec = MultisigSpec(2, (ALICE.public, BOB.public))
        fund = build_deposit(chain, coinbase, spec, 60_000)
        # 1 sig + 1 pubkey (input) + 2 pubkeys (multisig output) = 1 + n/2.
        assert transaction_cost(fund) == 1 + 2 / 2

    def test_blockchain_cost_sums(self):
        chain, coinbase = funded_chain()
        tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                                  ALICE.private, [(BOB.address(), 1)])
        assert blockchain_cost([tx, tx]) == 2 * transaction_cost(tx)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=1_000), min_size=1,
                max_size=6))
def test_property_value_conservation(amounts):
    """Whatever sequence of sends happens, unspent value equals minted
    value (no transaction creates or destroys coins)."""
    chain = Blockchain()
    total = sum(amounts) + 1_000
    coinbase = chain.mint(LockingScript.pay_to_address(ALICE.address()), total)
    chain.mine_block()
    available = [(coinbase.outpoint(0), total)]
    for amount in amounts:
        outpoint, value = available.pop()
        tx = build_p2pkh_transfer(
            [(outpoint, value)], ALICE.private,
            [(BOB.address(), amount), (ALICE.address(), value - amount)])
        chain.submit(tx)
        chain.mine_block()
        available.append((tx.outpoint(1), value - amount))
    assert chain.utxos.total_value() == chain.total_minted()
