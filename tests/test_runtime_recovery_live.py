"""Live crash recovery: SIGKILL a daemon mid-benchmark, restart it from
sealed state, and settle exact balances.

The tentpole e2e for the fault engine's live half.  Two daemons run with
``--state-dir`` so every protocol state change is sealed to disk bound
to a persisted monotonic counter (paper §6.2).  Bob is SIGKILLed while a
``bench-pay`` burst is in flight, respawned on the same ports and state
directory, restores his sealed snapshot, replays his chain, and
re-handshakes (fresh boot nonce ⇒ alice's enclave reinstalls the secure
channel).  Settlement then comes from alice's enclave — the survivor's
ledger is authoritative for what she signed away — and both replicas
must confirm the same exact on-chain split.
"""

import threading
import time

import pytest

from repro.faults import FaultSchedule, LiveFaultInjector
from repro.runtime.control import ControlError
from repro.runtime.launch import HOST, launch_network

pytestmark = [pytest.mark.live, pytest.mark.chaos]

GENESIS = 200_000
DEPOSIT = 60_000


def _poll(predicate, timeout=20.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(interval)


def test_sigkill_mid_bench_restart_settles_exact_balances(tmp_path):
    handles, ports = launch_network({"alice": GENESIS, "bob": GENESIS},
                                    state_dir=str(tmp_path))
    bench_error = []
    try:
        alice = handles["alice"].control
        bob = handles["bob"].control

        channel_id = alice.call("open-channel", peer="bob")["channel_id"]
        deposit = alice.call("deposit", value=DEPOSIT)
        alice.call("approve-associate", peer="bob", channel_id=channel_id,
                   txid=deposit["txid"])

        # Tranche 1 completes cleanly (echo barrier): sealed on both ends.
        alice.call("bench-pay", channel_id=channel_id, count=50, amount=7)

        # Tranche 2 runs while we pull bob's power cord.  Alice's pay
        # ecalls are local and all succeed; whatever bob had not yet
        # processed dies with his enclave memory.  The echo barrier may
        # time out — that is the expected casualty, not a failure.
        def burst():
            try:
                alice.call("bench-pay", channel_id=channel_id,
                           count=600, amount=3)
            except ControlError as exc:
                bench_error.append(exc)

        bench = threading.Thread(target=burst, daemon=True)
        bench.start()
        time.sleep(0.05)

        injector = LiveFaultInjector(handles, FaultSchedule().kill("bob"))
        injector.apply()
        assert handles["bob"].process.poll() is not None
        assert injector.killed == ["bob"]

        # Respawn on the same ports and state directory.
        handles["bob"] = handles["bob"].respawn()
        bob = handles["bob"].control
        stats = bob.call("stats")
        assert stats["restored"] is True
        # The restored replica replayed its chain past genesis (the
        # deposit was mined before the kill).
        assert stats["chain"]["height"] >= 2

        # Bob restored the channel from sealed state, with at least
        # tranche 1 in it (everything echo-barriered pre-kill is sealed).
        snapshot = bob.call("channel", channel_id=channel_id)
        assert snapshot["is_open"]
        assert snapshot["my_balance"] >= 50 * 7

        # Re-handshake: bob's boot nonce changed, so alice's enclave
        # must renew the secure channel rather than resume old counters.
        bob.call("connect", peer="alice", host=HOST,
                 port=ports["alice"][0])

        # Wait for the interrupted bench call to resolve so alice's
        # ledger is final before we read it.
        bench.join(timeout=30.0)
        _poll(lambda: not bench.is_alive(), what="bench thread to finish")

        # Alice was never down: her enclave's ledger is the ground truth
        # for what she signed away (all 50×7 + 600×3 pays ran locally).
        ledger = alice.call("channel", channel_id=channel_id)
        paid = DEPOSIT - ledger["my_balance"]
        assert paid == 50 * 7 + 600 * 3

        settlement = alice.call("settle", channel_id=channel_id)
        assert settlement["txid"] is not None

        expected_alice = GENESIS - paid
        expected_bob = GENESIS + paid
        assert alice.call("balance")["onchain"] == expected_alice

        # Bob's replayed replica converges on the same settlement.
        height = alice.call("stats")["chain"]["height"]

        def converged():
            stats = bob.call("stats")["chain"]
            return stats["height"] >= height and stats["mempool"] == 0

        _poll(converged, what="restored replica to confirm the settlement")
        assert bob.call("balance")["onchain"] == expected_bob
        assert (alice.call("balance")["onchain"]
                + bob.call("balance")["onchain"]) == 2 * GENESIS

        # The recovery metrics made it to the survivor's registry.
        counters = alice.call("metrics")["metrics"]["counters"]
        assert counters.get("runtime.channel_reinstalls", 0) >= 1
    finally:
        for handle in handles.values():
            handle.shutdown()


def test_corrupt_control_yields_structured_error_and_daemon_survives():
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    try:
        injector = LiveFaultInjector(
            handles, FaultSchedule().corrupt_control("alice"))
        response = injector.apply_spec(injector.schedule.faults[0])
        # Garbage bytes get a structured refusal, not a dropped socket.
        assert response["ok"] is False
        assert response["code"] == "bad_request"
        # ...and the daemon keeps serving afterwards.
        assert handles["alice"].control.call("ping")["name"] == "alice"
        counters = handles["alice"].control.call(
            "metrics")["metrics"]["counters"]
        assert counters.get("control.errors[bad_request]", 0) >= 1
    finally:
        for handle in handles.values():
            handle.shutdown()


def test_blackhole_and_heal_via_fault_command():
    """The daemon's ``fault`` control command drives the transport-level
    link faults; a black-holed link silently eats frames and a heal
    restores delivery."""
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    try:
        alice = handles["alice"].control
        alice.call("fault", action="blackhole", peer="bob")
        stats = alice.call("stats")["transport"]
        assert stats["peers"]["bob"]["blackholed"] is True
        # Echo frames vanish into the black hole: the round trip must
        # time out instead of completing.  The daemon's own echo timeout
        # (10s) fires server-side, so the error arrives as a structured
        # response — a shorter client-side timeout would strand the late
        # reply in the socket buffer and desync the connection.
        with pytest.raises(ControlError) as excinfo:
            alice.call("echo", peer="bob")
        assert excinfo.value.code == "timeout"
        alice.call("fault", action="heal", peer="bob")
        stats = alice.call("stats")["transport"]
        assert stats["peers"]["bob"]["blackholed"] is False
        assert stats["peers"]["bob"]["blackhole_drops"] >= 1
        assert alice.call("echo", peer="bob")["rtt_s"] > 0
        counters = alice.call("metrics")["metrics"]["counters"]
        assert counters.get("faults.injected[blackhole]", 0) == 1
        assert counters.get("faults.injected[heal]", 0) == 1
    finally:
        for handle in handles.values():
            handle.shutdown()
