"""Algorithm 1: the payment-channel protocol, guard by guard."""

import pytest

from repro.errors import (
    ChannelStateError,
    DepositError,
    InsufficientFunds,
    PaymentError,
)


class TestChannelCreation:
    def test_channel_opens_without_blockchain_writes(self, funded_pair):
        network, alice, bob = funded_pair
        height = network.chain.height
        channel = alice.open_channel(bob)
        assert network.chain.height == height
        assert alice.program.channels[channel].is_open
        assert bob.program.channels[channel].is_open

    def test_duplicate_channel_id_rejected(self, funded_pair):
        network, alice, bob = funded_pair
        alice.open_channel(bob, channel_id="c1")
        with pytest.raises(ChannelStateError):
            alice.open_channel(bob, channel_id="c1")

    def test_channel_requires_secure_channel(self, funded_pair):
        network, alice, bob = funded_pair
        carol = network.create_node("carol", funds=0)
        with pytest.raises(ChannelStateError):
            alice.enclave.ecall(
                "new_pay_channel", "cX", carol.enclave.public_key,
                carol.address, alice.address,
            )

    def test_addresses_recorded_both_sides(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        state_a = alice.program.channels[channel]
        state_b = bob.program.channels[channel]
        assert state_a.my_settlement_address == alice.address
        assert state_a.remote_settlement_address == bob.address
        assert state_b.my_settlement_address == bob.address
        assert state_b.remote_settlement_address == alice.address


class TestDepositLifecycle:
    def test_deposit_registered_free(self, funded_pair):
        network, alice, bob = funded_pair
        record = alice.create_deposit(10_000)
        assert alice.program.deposits[record.outpoint].is_free

    def test_deposit_requires_wallet_funds(self, funded_pair):
        network, alice, _ = funded_pair
        with pytest.raises(InsufficientFunds):
            alice.create_deposit(1_000_000)

    def test_deposit_confirmed_on_chain(self, funded_pair):
        network, alice, _ = funded_pair
        record = alice.create_deposit(10_000)
        assert network.chain.confirmations(record.outpoint.txid) >= 1

    def test_unconfirmed_deposit_approval_refused(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000, confirm=False)
        with pytest.raises(DepositError):
            # bob's validator sees zero confirmations and refuses; the
            # resulting missing approval blocks association.
            alice.approve_and_associate(bob, record, channel)

    def test_double_registration_rejected(self, funded_pair):
        network, alice, _ = funded_pair
        record = alice.create_deposit(10_000)
        with pytest.raises(DepositError):
            alice.program.register_deposit(record)

    def test_association_requires_approval(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        with pytest.raises(DepositError):
            alice.associate_deposit(channel, record)

    def test_association_updates_both_balances(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        assert alice.channel_balance(channel) == (10_000, 0)
        assert bob.channel_balance(channel) == (0, 10_000)

    def test_association_shares_deposit_key(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        deposit_address = record.spec.public_keys[0].address()
        assert deposit_address in bob.program.deposit_keys

    def test_double_association_rejected(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        with pytest.raises(DepositError):
            alice.associate_deposit(channel, record)

    def test_release_free_deposit(self, funded_pair):
        network, alice, _ = funded_pair
        before = alice.onchain_balance()
        record = alice.create_deposit(10_000)
        assert alice.onchain_balance() == before - 10_000
        alice.release_deposit(record)
        network.mine()
        assert alice.onchain_balance() == before

    def test_release_associated_deposit_rejected(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        with pytest.raises(DepositError):
            alice.release_deposit(record)

    def test_release_twice_rejected(self, funded_pair):
        network, alice, _ = funded_pair
        record = alice.create_deposit(10_000)
        alice.release_deposit(record)
        with pytest.raises(DepositError):
            alice.release_deposit(record)

    def test_oversized_committee_policy_refused(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        bob.program.max_committee_size = 2
        alice.attach_committee(backups=3, threshold=2)  # n = 4 > 2
        record = alice.create_deposit(10_000)
        alice.approve_deposit(bob, record)  # bob silently refuses
        peer_key = bob.enclave.public_key.to_bytes()
        assert record.outpoint not in alice.program.approved_deposits[peer_key]
        with pytest.raises(DepositError):
            alice.associate_deposit(channel, record)


class TestDissociation:
    def test_dissociate_returns_deposit_to_free(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        alice.dissociate_deposit(channel, record)
        assert alice.program.deposits[record.outpoint].is_free
        assert alice.channel_balance(channel) == (0, 0)

    def test_remote_destroys_key_copy(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        deposit_address = record.spec.public_keys[0].address()
        assert deposit_address in bob.program.deposit_keys
        alice.dissociate_deposit(channel, record)
        assert deposit_address not in bob.program.deposit_keys

    def test_dissociation_blocked_below_deposit_value(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 25_000)  # balance 25k < 50k deposit
        record = next(r for r in alice.deposits if r.value == 50_000)
        with pytest.raises(DepositError):
            alice.dissociate_deposit(channel, record)

    def test_rebalancing_pattern(self, funded_pair):
        """§4.1's deposit rebalancing: swap a large deposit for a smaller
        one after payments reduce the needed collateral."""
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        big = alice.create_deposit(50_000)
        alice.approve_and_associate(bob, big, channel)
        alice.pay(channel, 10_000)  # balance 40k; v1=50k, p1=10k
        small = alice.create_deposit(45_000)  # v1 > v2 > p1
        alice.approve_and_associate(bob, small, channel)
        alice.dissociate_deposit(channel, big)
        assert alice.channel_balance(channel) == (35_000, 10_000)
        alice.release_deposit(big)
        network.mine()
        alice.assert_balance_correct()
        bob.assert_balance_correct()


class TestPayments:
    def test_pay_updates_both_views(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 5_000)
        assert alice.channel_balance(channel) == (45_000, 35_000)
        assert bob.channel_balance(channel) == (35_000, 45_000)

    def test_bidirectional(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 5_000)
        bob.pay(channel, 2_000)
        assert alice.channel_balance(channel) == (47_000, 33_000)

    def test_overdraft_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        with pytest.raises(PaymentError):
            alice.pay(channel, 50_001)

    def test_exact_balance_spendable(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 50_000)
        assert alice.channel_balance(channel) == (0, 80_000)

    def test_zero_and_negative_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        with pytest.raises(PaymentError):
            alice.pay(channel, 0)
        with pytest.raises(PaymentError):
            alice.pay(channel, -5)

    def test_pay_on_unknown_channel_rejected(self, funded_pair):
        network, alice, _ = funded_pair
        with pytest.raises(ChannelStateError):
            alice.program.pay("ghost", 1)

    def test_many_small_payments(self, open_channel):
        network, alice, bob, channel = open_channel
        for _ in range(100):
            alice.pay(channel, 100)
        assert alice.channel_balance(channel) == (40_000, 40_000)
        assert bob.program.payments_received == 100


class TestSettlement:
    def test_onchain_settlement_pays_final_balances(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 10_000)
        transaction = alice.settle(channel)
        network.mine()
        assert network.chain.contains(transaction.txid)
        # alice: 100k - 50k deposit + 40k settle = 90k
        assert alice.onchain_balance() == 90_000
        assert bob.onchain_balance() == 110_000

    def test_settlement_spends_all_channel_deposits(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 1_000)  # non-neutral → on-chain settlement
        transaction = alice.settle(channel)
        assert len(transaction.inputs) == 2

    def test_peer_learns_of_settlement(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 1_000)
        alice.settle(channel)
        assert bob.program.channels[channel].terminated

    def test_offchain_settlement_when_neutral(self, funded_pair):
        network, alice, bob = funded_pair
        channel = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, channel)
        height = network.chain.height
        result = alice.settle(channel)
        assert result is None  # off-chain
        assert network.chain.height == height
        assert alice.program.deposits[record.outpoint].is_free
        assert alice.program.channels[channel].terminated
        assert bob.program.channels[channel].terminated

    def test_offchain_settlement_after_roundtrip_payments(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 5_000)
        bob.pay(channel, 5_000)  # back to neutral
        assert alice.settle(channel) is None

    def test_settle_closed_channel_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.settle(channel)
        with pytest.raises(ChannelStateError):
            alice.settle(channel)

    def test_unilateral_settlement_without_peer(self, open_channel):
        """The asynchronous-safety core: settle with the peer offline."""
        network, alice, bob, channel = open_channel
        alice.pay(channel, 10_000)
        network.transport.unregister("bob")  # bob vanishes
        transaction = alice._ecall("unilateral_settlement", channel)
        alice.client.broadcast(transaction)
        network.mine()
        assert alice.onchain_balance() == 90_000
        # bob's share sits on-chain at his address even though he is gone.
        assert network.chain.balance(bob.address) == 110_000

    def test_channel_reusable_after_settlement(self, open_channel):
        network, alice, bob, channel = open_channel
        alice.settle(channel)
        channel2 = alice.open_channel(bob)
        record = alice.create_deposit(5_000)
        alice.approve_and_associate(bob, record, channel2)
        alice.pay(channel2, 1_000)
        assert alice.channel_balance(channel2) == (4_000, 1_000)
