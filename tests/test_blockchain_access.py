"""Asynchronous blockchain access: write delays, censorship, eclipse."""

import pytest

from repro.blockchain import (
    AsyncBlockchainClient,
    Blockchain,
    LockingScript,
    WriteAdversary,
    build_p2pkh_transfer,
)
from repro.crypto import KeyPair
from repro.errors import BlockchainError
from repro.simulation import Scheduler

ALICE = KeyPair.from_seed(b"async-alice")
BOB = KeyPair.from_seed(b"async-bob")


@pytest.fixture
def setup():
    scheduler = Scheduler()
    chain = Blockchain()
    coinbase = chain.mint(LockingScript.pay_to_address(ALICE.address()),
                          100_000)
    chain.mine_block()
    adversary = WriteAdversary(base_delay=1.0)
    client = AsyncBlockchainClient(chain, scheduler, adversary)
    tx = build_p2pkh_transfer([(coinbase.outpoint(0), 100_000)],
                              ALICE.private, [(BOB.address(), 100_000)])
    return scheduler, chain, adversary, client, tx


def test_broadcast_arrives_after_base_delay(setup):
    scheduler, chain, _, client, tx = setup
    receipt = client.broadcast(tx)
    assert chain.mempool_size() == 0
    scheduler.run()
    assert receipt.delivered
    assert receipt.delivered_at == 1.0
    assert chain.mempool_size() == 1


def test_adversarial_extra_delay(setup):
    scheduler, chain, adversary, client, tx = setup
    adversary.delay(tx.txid, extra=3_599.0)
    receipt = client.broadcast(tx)
    scheduler.run(until=3_000.0)
    assert not receipt.delivered
    scheduler.run()
    assert receipt.delivered
    assert receipt.delivered_at == 3_600.0


def test_censorship_never_delivers(setup):
    scheduler, chain, adversary, client, tx = setup
    adversary.censor(tx.txid)
    receipt = client.broadcast(tx)
    scheduler.run()
    assert not receipt.delivered
    assert chain.mempool_size() == 0


def test_eclipse_blocks_everything_until_lifted(setup):
    scheduler, chain, adversary, client, tx = setup
    adversary.eclipse()
    client.broadcast(tx)
    scheduler.run()
    assert chain.mempool_size() == 0
    adversary.lift_eclipse()
    receipt = client.broadcast(tx)
    scheduler.run()
    assert receipt.delivered


def test_invalid_transaction_surfaces_on_receipt(setup):
    scheduler, chain, _, client, tx = setup
    receipt = client.broadcast(tx)
    # A conflicting spend delivered first wins; ours gets rejected.
    conflict = build_p2pkh_transfer([(tx.inputs[0].outpoint, 100_000)],
                                    ALICE.private, [(ALICE.address(), 1)])
    chain.submit(conflict)
    scheduler.run()
    assert receipt.rejected is not None
    assert not receipt.delivered


def test_reads_blocked_when_eclipsed(setup):
    _, _, _, client, tx = setup
    client.reads_blocked = True
    with pytest.raises(BlockchainError):
        client.balance(ALICE.address())
    with pytest.raises(BlockchainError):
        client.confirmations(tx.txid)


def test_wait_for_confirmations(setup):
    scheduler, chain, _, client, tx = setup
    fired = []
    client.broadcast(tx)
    client.wait_for_confirmations(tx.txid, depth=2, callback=lambda:
                                  fired.append(scheduler.now))
    scheduler.run(until=5.0)
    assert not fired
    chain.mine_block()
    chain.mine_block()
    scheduler.run(until=30.0)
    assert fired


def test_wait_never_fires_for_censored_tx(setup):
    scheduler, chain, adversary, client, tx = setup
    adversary.censor(tx.txid)
    fired = []
    client.broadcast(tx)
    client.wait_for_confirmations(tx.txid, depth=1,
                                  callback=lambda: fired.append(1))
    chain.mine_block()
    scheduler.run(until=1_000.0)
    assert not fired


def test_censorship_imposed_after_broadcast_still_suppresses(setup):
    # §2.2: the adversary can suppress a transaction at *any* point.
    # Regression: censorship used to be checked only at broadcast time,
    # so censoring during the propagation window leaked the delivery.
    scheduler, chain, adversary, client, tx = setup
    receipt = client.broadcast(tx)
    adversary.censor(tx.txid)  # after broadcast, before mempool arrival
    scheduler.run()
    assert not receipt.delivered
    assert chain.mempool_size() == 0


def test_mid_poll_eclipse_suspends_confirmation_watch(setup):
    # Regression: the confirmation poll used to read the chain object
    # directly, bypassing the eclipse check — an eclipsed client would
    # keep observing confirmations it could not actually see.
    scheduler, chain, _, client, tx = setup
    fired = []
    client.broadcast(tx)
    client.wait_for_confirmations(tx.txid, depth=1,
                                  callback=lambda: fired.append(1))
    scheduler.run(until=5.0)
    client.reads_blocked = True
    chain.mine_block()  # confirmed on chain, but we cannot see it
    scheduler.run(until=100.0)
    assert not fired
    client.reads_blocked = False  # eclipse lifts; the poll resumes
    scheduler.run(until=200.0)
    assert fired


def test_feerate_estimate_blocked_when_eclipsed(setup):
    _, _, _, client, _ = setup
    client.reads_blocked = True
    with pytest.raises(BlockchainError):
        client.feerate_estimate(limit=1)


def test_reorg_marks_receipt_orphaned_and_rebroadcasts(setup):
    scheduler, chain, _, client, tx = setup
    receipt = client.broadcast(tx)
    scheduler.run()
    fork_parent = chain.tip_hash
    chain.mine_block(timestamp=scheduler.now)
    assert receipt.delivered and chain.contains(tx.txid)

    # A competing two-block branch from below the tx's block wins.
    rival = chain.mine_block(timestamp=scheduler.now, parent=fork_parent,
                             transactions=())
    chain.mine_block(timestamp=scheduler.now,
                     parent=rival.block_hash, transactions=())
    assert chain.confirmations(tx.txid) == 0
    assert receipt.orphaned
    assert receipt.rebroadcasts == 1

    # The automatic re-broadcast re-delivers; mining re-confirms it.
    scheduler.run()
    chain.mine_block(timestamp=scheduler.now)
    assert chain.confirmations(tx.txid) == 1
    assert receipt.delivered
    assert not receipt.orphaned
