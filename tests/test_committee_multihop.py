"""Integration: committee-secured (m-of-n) deposits inside multi-hop
payments — the combination of §5 and §6.

The subtlety under test: committee members only co-sign transactions in
their replicated valid set, so the multi-hop candidates (pre/post
settlements and τ) must be replicated to the committee *before* the
signing rounds.  These tests fail loudly if that ordering regresses.
"""

import pytest

from repro.core.state import MultihopStage
from repro.errors import ThresholdError
from repro.network import NetworkAdversary
from repro.tee import crash_enclave


@pytest.fixture
def committee_path(network):
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    carol = network.create_node("carol", funds=100_000)
    alice.attach_committee(backups=2, threshold=2)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(40_000)
    bob.approve_and_associate(carol, deposit_bc, bc)
    return network, alice, bob, carol, ab, bc


class TestCommitteeMultihop:
    def test_happy_path(self, committee_path):
        network, alice, bob, carol, ab, bc = committee_path
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert alice.multihop_completed(payment)
        assert carol.channel_balance(bc) == (5_000, 35_000)
        for node in (alice, bob, carol):
            node.assert_balance_correct()

    def test_candidates_announced_before_signing(self, committee_path):
        network, alice, bob, carol, ab, bc = committee_path
        adversary = NetworkAdversary(network.transport)
        adversary.drop_after("alice", "bob", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        # Alice holds the fully signed τ — the committee co-signed it,
        # which requires its txid in the replicated valid set.
        session = alice.program.multihop_sessions[payment]
        member = alice.replication.members[0]
        assert session.tau.txid in member.program.state["valid_txids"]

    def test_tau_eject_with_committee_deposit(self, committee_path):
        network, alice, bob, carol, ab, bc = committee_path
        adversary = NetworkAdversary(network.transport)
        adversary.drop_after("alice", "bob", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        transactions = alice.eject(payment)
        network.mine()
        assert network.chain.contains(transactions[0].txid)
        bob.eject(payment)
        carol.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        assert network.chain.balance(carol.address) == 105_000

    def test_pre_payment_eject_with_committee_deposit(self, committee_path):
        network, alice, bob, carol, ab, bc = committee_path
        adversary = NetworkAdversary(network.transport)
        adversary.partition("bob", "carol")
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        transactions = bob.eject(payment)
        network.mine()
        alice.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        assert network.chain.balance(carol.address) == 100_000

    def test_counterparty_reclaim_after_owner_settled(self, committee_path):
        """After alice settles on-chain, bob's reclaim recognises the
        already-spent deposits instead of demanding a re-signature."""
        network, alice, bob, carol, ab, bc = committee_path
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert alice.multihop_completed(payment)
        alice.assert_balance_correct()  # settles ab on-chain
        bob.assert_balance_correct()    # must not raise

    def test_committee_crash_during_multihop_keeps_funds_safe(
            self, committee_path):
        network, alice, bob, carol, ab, bc = committee_path
        adversary = NetworkAdversary(network.transport)
        adversary.drop_after("alice", "bob", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        # One committee member dies mid-flight; 2-of-3 quorum remains and
        # the already-signed τ is still broadcastable.
        crash_enclave(alice.replication.members[0])
        # The first eject detects the dead backup, freezes the chain, and
        # rolls back; on the frozen chain the retry succeeds (eject is a
        # settlement operation, allowed while frozen).
        from repro.errors import ReplicationError
        try:
            transactions = alice.eject(payment)
        except ReplicationError:
            assert alice.replication.frozen
            transactions = alice.eject(payment)
        network.mine()
        assert network.chain.contains(transactions[0].txid)
        bob.eject(payment)
        carol.eject(payment)
        network.mine()
        for node in (bob, carol):
            node.assert_balance_correct()
