"""Live end-to-end: two daemon processes doing the full Teechain flow.

This is the acceptance test for the runtime subsystem: two ``python -m
repro.runtime serve`` subprocesses on localhost attest over TCP, open a
payment channel, fund it from both sides, exchange 100 payments
bidirectionally, and settle to their (replicated simulated) blockchain —
with balance correctness asserted at every stage.  Only the wire codec
crosses the sockets; nothing pickled, nothing shared in memory.
"""

import time

import pytest

from repro.runtime.launch import launch_network

GENESIS = 200_000
DEPOSIT = 60_000
ROUNDS = 50          # 50 × (one 7-unit pay + one 3-unit pay) = 100 payments
A_TO_B, B_TO_A = 7, 3

# Net flow: 50×7 alice→bob minus 50×3 bob→alice = 200 units to bob.
ALICE_FINAL_CHANNEL = DEPOSIT - ROUNDS * A_TO_B + ROUNDS * B_TO_A
BOB_FINAL_CHANNEL = DEPOSIT + ROUNDS * A_TO_B - ROUNDS * B_TO_A


def _poll(predicate, timeout=15.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(interval)


@pytest.mark.live
def test_two_daemons_full_payment_lifecycle():
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    alice = handles["alice"].control
    bob = handles["bob"].control
    try:
        # launch_network already ran the attestation handshake (connect).
        channel_id = alice.call("open-channel", peer="bob")["channel_id"]

        # Fund from both sides; each deposit is broadcast, mined, gossiped.
        deposit_a = alice.call("deposit", value=DEPOSIT)
        result = alice.call("approve-associate", peer="bob",
                            channel_id=channel_id, txid=deposit_a["txid"])
        assert result["my_balance"] == DEPOSIT
        deposit_b = bob.call("deposit", value=DEPOSIT)
        result = bob.call("approve-associate", peer="alice",
                          channel_id=channel_id, txid=deposit_b["txid"])
        assert result["my_balance"] == DEPOSIT

        # Both sides must see both deposits before paying.
        def funded(client):
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == DEPOSIT
                    and snapshot["remote_balance"] == DEPOSIT)

        _poll(lambda: funded(alice) and funded(bob),
              what="both deposits visible on both daemons")

        # 100 payments, interleaved in both directions.
        for _ in range(ROUNDS):
            alice.call("pay", channel_id=channel_id, amount=A_TO_B)
            bob.call("pay", channel_id=channel_id, amount=B_TO_A)

        # In-flight payments race the snapshot; poll until both replicas of
        # the channel state agree on the final ledger.
        def settled_at(client, mine, theirs):
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == mine
                    and snapshot["remote_balance"] == theirs)

        _poll(lambda: settled_at(alice, ALICE_FINAL_CHANNEL, BOB_FINAL_CHANNEL)
              and settled_at(bob, BOB_FINAL_CHANNEL, ALICE_FINAL_CHANNEL),
              what="channel balances to converge after 100 payments")

        # Cooperative settlement: alice broadcasts, mines, gossips.
        settlement = alice.call("settle", channel_id=channel_id)
        assert settlement["txid"] is not None
        assert not settlement["offchain"]

        # Both chain replicas confirmed the same settlement transaction.
        height_a = alice.call("stats")["chain"]["height"]

        def caught_up():
            stats = bob.call("stats")["chain"]
            return stats["height"] == height_a and stats["mempool"] == 0

        _poll(caught_up, what="bob's chain replica to include the settlement")

        # On-chain balance correctness, asserted on each daemon's own
        # replica: genesis − deposit + settlement payout.
        balance_a = alice.call("balance")["onchain"]
        balance_b = bob.call("balance")["onchain"]
        assert balance_a == GENESIS - DEPOSIT + ALICE_FINAL_CHANNEL
        assert balance_b == GENESIS - DEPOSIT + BOB_FINAL_CHANNEL
        assert balance_a + balance_b == 2 * GENESIS  # conservation

        # No frames were dropped or links bounced along the way.
        for client in (alice, bob):
            transport = client.call("stats")["transport"]
            for peer_stats in transport["peers"].values():
                assert peer_stats["drops"] == 0
                assert peer_stats["reconnects"] == 0
    finally:
        for handle in handles.values():
            handle.shutdown()
