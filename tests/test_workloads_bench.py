"""Workload generation and the benchmark models' structural properties."""

import pytest

from repro.bench.calibration import Calibration
from repro.bench.harness import ExperimentResult, comparison_table, within_factor
from repro.bench.netsim import NetworkSimulation, NetworkSimulationConfig
from repro.bench.timing import (
    ChannelTimingModel,
    MultihopTimingModel,
    committee_chain_latency,
)
from repro.errors import ReproError, WorkloadError
from repro.network.topology import (
    Overlay,
    complete_graph_overlay,
    fig3_topology,
    hub_and_spoke_overlay,
)
from repro.workloads import (
    assign_addresses_skewed,
    assign_addresses_uniform,
    filter_for_replay,
    generate_raw_transactions,
    generate_trace,
)
from repro.workloads.assignment import HashRing, assign_addresses_balanced
from repro.workloads.bitcoin_trace import DEFAULT_VALUE_THRESHOLD_SATOSHI


class TestTraceGeneration:
    def test_exact_count(self):
        assert len(generate_trace(500, seed=1)) == 500

    def test_deterministic_per_seed(self):
        assert generate_trace(100, seed=7) == generate_trace(100, seed=7)
        assert generate_trace(100, seed=7) != generate_trace(100, seed=8)

    def test_filter_drops_multisig(self):
        raw = list(generate_raw_transactions(2_000, seed=2,
                                             multisig_fraction=1.0))
        assert filter_for_replay(raw) == []

    def test_filter_drops_high_value(self):
        raw = list(generate_raw_transactions(2_000, seed=3))
        payments = filter_for_replay(raw)
        assert all(p.value <= DEFAULT_VALUE_THRESHOLD_SATOSHI
                   for p in payments)

    def test_filter_drops_self_payments(self):
        raw = list(generate_raw_transactions(2_000, seed=4))
        payments = filter_for_replay(raw)
        assert all(p.sender != p.recipient for p in payments)

    def test_high_value_fraction_roughly_respected(self):
        raw = list(generate_raw_transactions(5_000, seed=5,
                                             high_value_fraction=0.10))
        over = sum(1 for t in raw
                   if t.value > DEFAULT_VALUE_THRESHOLD_SATOSHI)
        assert 0.04 < over / len(raw) < 0.20

    def test_popularity_is_skewed(self):
        payments = generate_trace(5_000, seed=6)
        counts = {}
        for payment in payments:
            counts[payment.sender] = counts.get(payment.sender, 0) + 1
        top = max(counts.values())
        assert top > 5 * (len(payments) / len(counts))  # heavy head

    def test_address_universe_minimum(self):
        with pytest.raises(WorkloadError):
            list(generate_raw_transactions(1, address_count=1))


class TestAssignment:
    def test_uniform_covers_all(self):
        addresses = [f"a{i}" for i in range(100)]
        assignment = assign_addresses_uniform(addresses, ["m1", "m2", "m3"])
        assert set(assignment) == set(addresses)
        counts = [list(assignment.values()).count(m)
                  for m in ("m1", "m2", "m3")]
        assert max(counts) - min(counts) <= 1

    def test_skewed_shares(self):
        addresses = [f"a{i}" for i in range(1_000)]
        tier_of = {"hub": 1, "mid": 2, "leaf": 3}
        assignment = assign_addresses_skewed(addresses, tier_of)
        hub_share = list(assignment.values()).count("hub") / 1_000
        assert 0.45 < hub_share < 0.55

    def test_skewed_requires_all_tiers(self):
        with pytest.raises(WorkloadError):
            assign_addresses_skewed(["a"], {"hub": 1})

    def test_balanced_splits_weight(self):
        weights = {"hot": 100, **{f"c{i}": 1 for i in range(99)}}
        assignment = assign_addresses_balanced(weights, ["m1", "m2"])
        load = {"m1": 0, "m2": 0}
        for address, machine in assignment.items():
            load[machine] += weights[address]
        assert abs(load["m1"] - load["m2"]) <= 100


class TestHashRing:
    def test_deterministic_across_instances(self):
        """Two independently built rings agree on every key — the
        property that lets every router process route without
        coordination."""
        keys = [f"peer{i}" for i in range(200)]
        first = HashRing(["w0", "w1", "w2", "w3"])
        second = HashRing(["w3", "w1", "w0", "w2"])  # insertion order differs
        assert [first.owner(k) for k in keys] == [second.owner(k) for k in keys]

    def test_all_nodes_receive_keys(self):
        ring = HashRing([f"w{i}" for i in range(4)])
        owners = {ring.owner(f"peer{i}") for i in range(500)}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_distribution_is_roughly_even(self):
        ring = HashRing([f"w{i}" for i in range(4)], replicas=128)
        counts = {f"w{i}": 0 for i in range(4)}
        for i in range(4_000):
            counts[ring.owner(f"peer{i}")] += 1
        # Consistent hashing is only statistically even; with 128 virtual
        # nodes each worker should land within a factor of ~2 of fair.
        assert min(counts.values()) > 1_000 / 2
        assert max(counts.values()) < 1_000 * 2

    def test_removal_only_moves_removed_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        keys = [f"peer{i}" for i in range(300)]
        before = {key: ring.owner(key) for key in keys}
        ring.remove("w2")
        for key in keys:
            if before[key] != "w2":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "w2"

    def test_empty_ring_rejected(self):
        with pytest.raises(WorkloadError):
            HashRing([]).owner("anything")

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(WorkloadError):
            HashRing(["w0"]).remove("w9")

    def test_add_is_idempotent(self):
        ring = HashRing(["w0", "w1"])
        ring.add("w0")
        assert ring.nodes == ["w0", "w1"]

    def test_add_one_worker_moves_bounded_share(self):
        """The stability bound documented on :class:`HashRing`: adding
        one worker to N moves only the keys the newcomer captures —
        ``keys/(N+1)`` in expectation, under ``2 × keys/(N+1)``
        observed with 64 replicas — and every moved key moves *to* the
        newcomer, never between survivors."""
        workers = 4
        keys = [f"account:key{i}" for i in range(10_000)]
        ring = HashRing([f"w{i}" for i in range(workers)])
        before = {key: ring.owner(key) for key in keys}
        ring.add("w-new")
        moved = {key for key in keys if ring.owner(key) != before[key]}
        assert moved, "the new worker captured nothing"
        assert all(ring.owner(key) == "w-new" for key in moved)
        assert len(moved) <= 2 * len(keys) // (workers + 1)

    def test_remove_one_worker_moves_only_its_keys(self):
        keys = [f"account:key{i}" for i in range(10_000)]
        ring = HashRing([f"w{i}" for i in range(5)])
        before = {key: ring.owner(key) for key in keys}
        ring.remove("w3")
        moved = {key for key in keys if ring.owner(key) != before[key]}
        assert moved == {key for key in keys if before[key] == "w3"}

    def test_add_then_remove_restores_ownership(self):
        keys = [f"account:key{i}" for i in range(2_000)]
        ring = HashRing([f"w{i}" for i in range(4)])
        before = {key: ring.owner(key) for key in keys}
        ring.add("w-new")
        ring.remove("w-new")
        assert {key: ring.owner(key) for key in keys} == before


class TestTimingModels:
    def test_chain_latency_sums_hops(self):
        topology = fig3_topology()
        assert committee_chain_latency(topology, "US", ("IL",)) == \
            pytest.approx(0.140)
        assert committee_chain_latency(topology, "US", ("IL", "UK")) == \
            pytest.approx(0.140 + 0.060)

    def test_throughput_ladder(self):
        model = ChannelTimingModel.paper_setup()
        assert model.payment_throughput(0) > model.payment_throughput(1)
        assert model.payment_throughput(1) == model.payment_throughput(2)
        assert model.payment_throughput(0, stable_storage=True) == 10.0

    def test_latency_ladder(self):
        model = ChannelTimingModel.paper_setup()
        ladder = [model.payment_latency(r) for r in range(4)]
        assert ladder == sorted(ladder)

    def test_batching_adds_window_latency(self):
        model = ChannelTimingModel.paper_setup()
        assert model.payment_latency(0, batching=True) == pytest.approx(
            model.payment_latency(0) + 0.100)

    def test_multihop_noft_is_twice_ln(self):
        model = MultihopTimingModel.paper_setup()
        for hops in (2, 5, 11):
            assert model.teechain_latency(hops, 0) == pytest.approx(
                2 * model.lightning_latency(hops))

    def test_multihop_throughput_ratio_in_paper_band(self):
        model = MultihopTimingModel.paper_setup()
        for hops in (2, 11):
            ratio = (model.teechain_throughput(hops)
                     / model.lightning_throughput(hops))
            assert 12 < ratio < 32

    def test_replication_throughput_independent_of_length(self):
        calibration = Calibration()
        assert calibration.node_capacity(2) > calibration.node_capacity(3)
        assert calibration.replication_throughput() == pytest.approx(
            90e6 / (8 * 330))


class TestNetworkSimulation:
    def test_complete_graph_scales_with_nodes(self):
        def run(nodes):
            config = NetworkSimulationConfig(
                overlay=complete_graph_overlay(
                    [f"m{i}" for i in range(nodes)]),
                payment_count=4_000,
            )
            return NetworkSimulation(config).run().throughput

        assert run(10) > 1.5 * run(5)

    def test_hub_spoke_collapses(self):
        complete = NetworkSimulation(NetworkSimulationConfig(
            overlay=complete_graph_overlay([f"m{i}" for i in range(10)]),
            payment_count=4_000)).run().throughput
        hub = NetworkSimulation(NetworkSimulationConfig(
            overlay=hub_and_spoke_overlay(), payment_count=2_000,
        )).run().throughput
        assert complete > 100 * hub

    def test_fault_tolerance_costs_throughput(self):
        def run(n):
            config = NetworkSimulationConfig(
                overlay=hub_and_spoke_overlay(), committee_size=n,
                payment_count=2_000)
            return NetworkSimulation(config).run().throughput

        assert run(1) > 1.5 * run(2)

    def test_all_payments_resolve(self):
        config = NetworkSimulationConfig(overlay=hub_and_spoke_overlay(),
                                         payment_count=2_000)
        simulation = NetworkSimulation(config)
        queued = sum(len(q) for q in simulation._queues.values())
        result = simulation.run()
        assert result.completed + result.failed == queued

    def test_deterministic_per_seed(self):
        def run(seed):
            config = NetworkSimulationConfig(
                overlay=hub_and_spoke_overlay(), payment_count=1_000,
                seed=seed)
            return NetworkSimulation(config).run().throughput

        assert run(3) == run(3)

    def test_disconnected_overlay_dynamic_routing_completes(self):
        # A partitioned overlay under dynamic routing must finish the run
        # with failures recorded — not leak a networkx exception out of
        # the path generator mid-iteration.
        overlay = Overlay(
            nodes=("hub", "mid", "leaf", "island"),
            channels=(("hub", "mid"), ("mid", "leaf")),
            tier_of={"hub": 1, "mid": 2, "leaf": 3, "island": 3},
        )
        config = NetworkSimulationConfig(
            overlay=overlay, routing="dynamic", payment_count=500)
        simulation = NetworkSimulation(config)
        queued = sum(len(q) for q in simulation._queues.values())
        result = simulation.run()
        assert result.failed > 0
        assert result.completed > 0
        assert result.completed + result.failed == queued

    def test_metrics_collection_does_not_perturb_results(self):
        from repro import obs

        def run():
            config = NetworkSimulationConfig(
                overlay=hub_and_spoke_overlay(), payment_count=1_000)
            result = NetworkSimulation(config).run()
            return (result.completed, result.failed, result.makespan,
                    result.total_latency, result.total_hops, result.retries)

        baseline = run()
        with obs.collecting() as (registry, _tracer):
            instrumented = run()
        assert instrumented == baseline
        snapshot = registry.snapshot()
        assert snapshot["counters"]["netsim.completed"] == baseline[0]
        assert any(name.startswith("netsim.link_occupancy[")
                   for name in snapshot["histograms"])
        assert snapshot["histograms"]["netsim.retry_backoff"]["count"] > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            NetworkSimulationConfig(overlay=hub_and_spoke_overlay(),
                                    routing="teleport")
        with pytest.raises(ReproError):
            NetworkSimulationConfig(overlay=hub_and_spoke_overlay(),
                                    committee_size=0)


class TestHarness:
    def test_ratio(self):
        result = ExperimentResult("t", "c", "m", measured=150.0, paper=100.0)
        assert result.ratio == pytest.approx(1.5)

    def test_ratio_without_paper_value(self):
        assert ExperimentResult("t", "c", "m", 1.0).ratio is None

    def test_within_factor(self):
        assert within_factor(120, 100, 1.25)
        assert within_factor(80, 100, 1.25)
        assert not within_factor(200, 100, 1.25)

    def test_table_renders(self):
        table = comparison_table("Title", [
            ExperimentResult("t", "config", "throughput", 1234.5, 1000.0,
                             "tx/s")])
        assert "Title" in table
        assert "1,234.5" in table
