"""Hashing, key handling, authenticated encryption, Shamir sharing and
multisig — the non-ECDSA crypto substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    KeyPair,
    MultisigSpec,
    combine_shares,
    decrypt,
    derive_channel_keys,
    ecdh_shared_secret,
    encrypt,
    hash160,
    merkle_root,
    sha256,
    sha256d,
    split_secret,
)
from repro.crypto.authenticated import nonce_from_counter
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.multisig import collect_signatures, share_indices_for_keys
from repro.crypto.shamir import Share, reshare
from repro.errors import DecryptionError, InvalidKey, ThresholdError


class TestHashing:
    def test_sha256_known_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha256d_is_double(self):
        assert sha256d(b"x") == sha256(sha256(b"x"))

    def test_hash160_length(self):
        assert len(hash160(b"payload")) == 20

    def test_merkle_empty(self):
        assert merkle_root([]) == b"\x00" * 32

    def test_merkle_single_leaf_is_leaf(self):
        leaf = sha256(b"leaf")
        assert merkle_root([leaf]) == leaf

    def test_merkle_odd_duplicates_last(self):
        a, b, c = sha256(b"a"), sha256(b"b"), sha256(b"c")
        assert merkle_root([a, b, c]) == merkle_root([a, b, c, c])

    def test_merkle_order_sensitive(self):
        a, b = sha256(b"a"), sha256(b"b")
        assert merkle_root([a, b]) != merkle_root([b, a])


class TestKeys:
    def test_seeded_keys_deterministic(self):
        assert KeyPair.from_seed(b"s").public == KeyPair.from_seed(b"s").public

    def test_generated_keys_distinct(self):
        assert KeyPair.generate().public != KeyPair.generate().public

    def test_public_key_roundtrip(self):
        public = KeyPair.from_seed(b"k").public
        assert PublicKey.from_bytes(public.to_bytes()) == public

    def test_private_key_roundtrip(self):
        private = KeyPair.from_seed(b"k").private
        assert PrivateKey.from_bytes(private.to_bytes()).secret == private.secret

    def test_address_prefix_and_stability(self):
        keys = KeyPair.from_seed(b"addr")
        assert keys.address().startswith("btc")
        assert keys.address() == keys.public.address()

    def test_sign_message_verifies(self):
        keys = KeyPair.from_seed(b"m")
        signature = keys.private.sign_message(b"hello")
        assert keys.public.verify_message(b"hello", signature)
        assert not keys.public.verify_message(b"tampered", signature)

    def test_bad_compressed_key_rejected(self):
        with pytest.raises(InvalidKey):
            PublicKey.from_bytes(b"\x05" + b"\x00" * 32)

    def test_private_repr_hides_secret(self):
        private = KeyPair.from_seed(b"secret").private
        assert hex(private.secret)[2:] not in repr(private)


class TestAuthenticatedEncryption:
    def _keys(self):
        a = KeyPair.from_seed(b"chan-a")
        b = KeyPair.from_seed(b"chan-b")
        return derive_channel_keys(a.private, b.public), a, b

    def test_both_sides_derive_same_keys(self):
        a = KeyPair.from_seed(b"chan-a")
        b = KeyPair.from_seed(b"chan-b")
        assert derive_channel_keys(a.private, b.public) == derive_channel_keys(
            b.private, a.public
        )

    def test_ecdh_symmetry(self):
        a = KeyPair.from_seed(b"e1")
        b = KeyPair.from_seed(b"e2")
        assert ecdh_shared_secret(a.private, b.public) == ecdh_shared_secret(
            b.private, a.public
        )

    def test_roundtrip(self):
        keys, _, _ = self._keys()
        envelope = encrypt(keys, nonce_from_counter(1), b"payload")
        assert decrypt(keys, envelope) == b"payload"

    def test_tampered_ciphertext_rejected(self):
        keys, _, _ = self._keys()
        envelope = bytearray(encrypt(keys, nonce_from_counter(1), b"payload"))
        envelope[14] ^= 0x01
        with pytest.raises(DecryptionError):
            decrypt(keys, bytes(envelope))

    def test_tampered_tag_rejected(self):
        keys, _, _ = self._keys()
        envelope = bytearray(encrypt(keys, nonce_from_counter(1), b"payload"))
        envelope[-1] ^= 0x01
        with pytest.raises(DecryptionError):
            decrypt(keys, bytes(envelope))

    def test_wrong_channel_keys_rejected(self):
        keys, _, _ = self._keys()
        other = derive_channel_keys(KeyPair.from_seed(b"x").private,
                                    KeyPair.from_seed(b"y").public)
        envelope = encrypt(keys, nonce_from_counter(1), b"payload")
        with pytest.raises(DecryptionError):
            decrypt(other, envelope)

    def test_short_envelope_rejected(self):
        keys, _, _ = self._keys()
        with pytest.raises(DecryptionError):
            decrypt(keys, b"tiny")

    def test_bad_nonce_length_rejected(self):
        keys, _, _ = self._keys()
        with pytest.raises(DecryptionError):
            encrypt(keys, b"short", b"payload")

    def test_empty_plaintext(self):
        keys, _, _ = self._keys()
        assert decrypt(keys, encrypt(keys, nonce_from_counter(2), b"")) == b""

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=512), st.integers(min_value=1, max_value=2**40))
    def test_property_roundtrip(self, plaintext, counter):
        keys = derive_channel_keys(KeyPair.from_seed(b"p1").private,
                                   KeyPair.from_seed(b"p2").public)
        envelope = encrypt(keys, nonce_from_counter(counter), plaintext)
        assert decrypt(keys, envelope) == plaintext


class TestShamir:
    def test_roundtrip(self):
        shares = split_secret(424242, threshold=3, total=5)
        assert combine_shares(shares[:3], 3) == 424242

    def test_any_subset_works(self):
        shares = split_secret(99, threshold=2, total=4)
        assert combine_shares([shares[1], shares[3]], 2) == 99

    def test_too_few_shares_fail(self):
        shares = split_secret(99, threshold=3, total=5)
        with pytest.raises(ThresholdError):
            combine_shares(shares[:2], 3)

    def test_duplicate_index_not_counted(self):
        shares = split_secret(99, threshold=2, total=3)
        with pytest.raises(ThresholdError):
            combine_shares([shares[0], shares[0]], 2)

    def test_conflicting_duplicates_rejected(self):
        shares = split_secret(99, threshold=2, total=3)
        forged = Share(shares[0].index, (shares[0].value + 1))
        with pytest.raises(ThresholdError):
            combine_shares([shares[0], forged], 2)

    def test_one_of_n_degenerates_to_replication(self):
        shares = split_secret(7, threshold=1, total=3)
        for share in shares:
            assert combine_shares([share], 1) == 7

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ThresholdError):
            split_secret(1, threshold=0, total=3)
        with pytest.raises(ThresholdError):
            split_secret(1, threshold=4, total=3)

    def test_reshare(self):
        shares = split_secret(1234, threshold=2, total=3)
        new_shares = reshare(shares[:2], threshold=2, new_total=5)
        assert len(new_shares) == 5
        assert combine_shares(new_shares[3:], 2) == 1234

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**128),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=3))
    def test_property_threshold_roundtrip(self, secret, threshold, extra):
        total = threshold + extra
        shares = split_secret(secret, threshold, total)
        assert combine_shares(shares[extra:], threshold) == secret


class TestMultisig:
    def _spec(self, m, n):
        keys = [KeyPair.from_seed(f"ms{i}".encode()) for i in range(n)]
        return MultisigSpec(m, tuple(k.public for k in keys)), keys

    def test_threshold_met(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        signatures = [keys[0].private.sign(digest), keys[2].private.sign(digest)]
        assert spec.verify(digest, signatures)

    def test_threshold_not_met(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        assert not spec.verify(digest, [keys[0].private.sign(digest)])

    def test_same_key_twice_not_counted(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        signature = keys[0].private.sign(digest)
        assert not spec.verify(digest, [signature, signature])

    def test_foreign_signature_ignored(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        outsider = KeyPair.from_seed(b"outsider")
        assert not spec.verify(digest, [
            keys[0].private.sign(digest), outsider.private.sign(digest)
        ])

    def test_order_insensitive(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        signatures = [keys[2].private.sign(digest), keys[0].private.sign(digest)]
        assert spec.verify(digest, signatures)

    def test_invalid_spec_rejected(self):
        keys = [KeyPair.from_seed(b"a").public]
        with pytest.raises(ThresholdError):
            MultisigSpec(2, tuple(keys))

    def test_duplicate_keys_rejected(self):
        key = KeyPair.from_seed(b"dup").public
        with pytest.raises(ThresholdError):
            MultisigSpec(1, (key, key))

    def test_address_deterministic_and_prefixed(self):
        spec, _ = self._spec(2, 3)
        assert spec.address().startswith("msig")
        spec2, _ = self._spec(2, 3)
        assert spec.address() == spec2.address()

    def test_collect_signatures_success(self):
        spec, keys = self._spec(2, 3)
        digest = sha256(b"spend")
        signatures = collect_signatures(
            digest, [keys[0].private, keys[1].private], spec
        )
        assert spec.verify(digest, signatures)

    def test_collect_signatures_under_threshold(self):
        spec, keys = self._spec(2, 3)
        with pytest.raises(ThresholdError):
            collect_signatures(sha256(b"spend"), [keys[0].private], spec)

    def test_cost_weight(self):
        spec, _ = self._spec(2, 3)
        assert spec.cost_weight() == 1.5

    def test_share_indices(self):
        spec, keys = self._spec(2, 3)
        indices = share_indices_for_keys(
            spec, {"first": keys[0].public, "third": keys[2].public}
        )
        assert indices == {"first": 1, "third": 3}

    def test_share_indices_unknown_holder(self):
        spec, _ = self._spec(2, 3)
        with pytest.raises(ThresholdError):
            share_indices_for_keys(
                spec, {"evil": KeyPair.from_seed(b"evil").public}
            )
