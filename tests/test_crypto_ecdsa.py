"""secp256k1 ECDSA: curve arithmetic, RFC 6979 determinism, low-s,
verification edge cases, and cross-key rejection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecdsa
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import sha256
from repro.errors import InvalidKey, InvalidSignature

KEY = 0x1E99423A4ED27608A15A2616A2B0E9E52CED330AC530EDCC32C8FFC6A526AEDD
DIGEST = sha256(b"teechain")

# Published RFC 6979 test vectors for secp256k1 with HMAC-SHA256 (the
# widely cross-checked set used by trezor-crypto, haskoin, and
# python-ecdsa): (private key, ASCII message, expected k, r, s).
RFC6979_VECTORS = [
    (1, b"Satoshi Nakamoto",
     0x8F8A276C19F4149656B280621E358CCE24F5F52542772691EE69063B74F15D15,
     0x934B1EA10A4B3C1757E2B0C017D0B6143CE3C9A7E6A4A49860D7A6AB210EE3D8,
     0x2442CE9D2B916064108014783E923EC36B49743E2FFA1C4496F01A512AAFD9E5),
    (1, b"All those moments will be lost in time, like tears in rain. "
        b"Time to die...",
     0x38AA22D72376B4DBC472E06C3BA403EE0A394DA63FC58D88686C611ABA98D6B3,
     0x8600DBD41E348FE5C9465AB92D23E3DB8B98B873BEECD930736488696438CB6B,
     0x547FE64427496DB33BF66019DACBF0039C04199ABB0122918601DB38A72CFC21),
    (ecdsa.N - 1, b"Satoshi Nakamoto",
     0x33A19B60E25FB6F4435AF53A3D42D493644827367E6453928554F43E49AA6F90,
     0xFD567D121DB66E382991534ADA77A6BD3106F0A1098C231E47993447CD6AF2D0,
     0x6B39CD0EB1BC8603E159EF5C20A5C8AD685A45B06CE9BEBED3F153D10D93BED5),
    (0xF8B8AF8CE3C7CCA5E300D33939540C10D45CE001B8F252BFBC57BA0342904181,
     b"Alan Turing",
     0x525A82B70E67874398067543FD84C83D30C175FDC45FDEEE082FE13B1D7CFDF1,
     0x7063AE83E7F62BBB171798131B4A0564B956930092B33B07B395615D9EC7E15C,
     0x58DFCC1E00A35E1572F366FFE34BA0FC47DB1E7189759B9FB233C5B05AB388EA),
    (0xE91671C46231F833A6406CCBEA0E3E392C76C167BAC1CB013F6F1013980455C2,
     b"There is a computer disease that anybody who works with computers "
     b"knows about. It's a very serious disease and it interferes "
     b"completely with the work. The trouble with computers is that you "
     b"'play' with them!",
     0x1F4B84C23A86A221D233F2521BE018D9318639D5B8BBD6374A8A59232D16AD3D,
     0xB552EDD27580141F3B2A5463048CB7CD3E047B97C9F98076C32DBDF85A68718B,
     0x279FA72DD19BFAE05577E06C7C0C1900C371FCD5893F7E1D56A37D30174671F6),
]


class TestCurve:
    def test_generator_on_curve(self):
        assert ecdsa.is_on_curve((ecdsa.GX, ecdsa.GY))

    def test_infinity_on_curve(self):
        assert ecdsa.is_on_curve(None)

    def test_off_curve_point_detected(self):
        assert not ecdsa.is_on_curve((ecdsa.GX, ecdsa.GY + 1))

    def test_generator_order(self):
        assert ecdsa.point_multiply(ecdsa.N) is None

    def test_point_addition_commutes(self):
        p = ecdsa.point_multiply(7)
        q = ecdsa.point_multiply(11)
        assert ecdsa.point_add(p, q) == ecdsa.point_add(q, p)

    def test_addition_matches_multiplication(self):
        assert ecdsa.point_add(
            ecdsa.point_multiply(7), ecdsa.point_multiply(11)
        ) == ecdsa.point_multiply(18)

    def test_adding_inverse_gives_infinity(self):
        p = ecdsa.point_multiply(5)
        negated = (p[0], ecdsa.P - p[1])
        assert ecdsa.point_add(p, negated) is None

    def test_infinity_is_identity(self):
        p = ecdsa.point_multiply(9)
        assert ecdsa.point_add(p, None) == p
        assert ecdsa.point_add(None, p) == p

    def test_known_vector(self):
        # 2·G from the canonical secp256k1 test vectors.
        point = ecdsa.point_multiply(2)
        assert point[0] == int(
            "C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5",
            16,
        )


class TestSignVerify:
    def test_roundtrip(self):
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        assert ecdsa.verify(public, DIGEST, signature)

    def test_deterministic_rfc6979(self):
        assert ecdsa.sign(KEY, DIGEST) == ecdsa.sign(KEY, DIGEST)

    def test_different_digests_different_signatures(self):
        assert ecdsa.sign(KEY, DIGEST) != ecdsa.sign(KEY, sha256(b"other"))

    def test_low_s(self):
        signature = ecdsa.sign(KEY, DIGEST)
        assert signature.s <= ecdsa.N // 2

    def test_wrong_key_rejected(self):
        signature = ecdsa.sign(KEY, DIGEST)
        other = ecdsa.derive_public_key(KEY + 1)
        assert not ecdsa.verify(other, DIGEST, signature)

    def test_wrong_digest_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        assert not ecdsa.verify(public, sha256(b"tampered"), signature)

    def test_zero_r_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        assert not ecdsa.verify(public, DIGEST, Signature(0, 1))

    def test_out_of_range_s_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        assert not ecdsa.verify(public, DIGEST, Signature(1, ecdsa.N))

    def test_bad_private_key_rejected(self):
        with pytest.raises(InvalidKey):
            ecdsa.sign(0, DIGEST)
        with pytest.raises(InvalidKey):
            ecdsa.sign(ecdsa.N, DIGEST)

    def test_bad_digest_length_rejected(self):
        with pytest.raises(InvalidSignature):
            ecdsa.sign(KEY, b"short")

    def test_off_curve_public_key_rejected(self):
        with pytest.raises(InvalidKey):
            ecdsa.verify((1, 1), DIGEST, ecdsa.sign(KEY, DIGEST))

    def test_signature_serialisation_roundtrip(self):
        signature = ecdsa.sign(KEY, DIGEST)
        assert Signature.from_bytes(signature.to_bytes()) == signature

    def test_signature_bad_length(self):
        with pytest.raises(InvalidSignature):
            Signature.from_bytes(b"\x00" * 63)


class TestRFC6979Vectors:
    """Pin signing to the published secp256k1 vectors so the windowed
    precomputed-G multiply (or any future arithmetic change) cannot
    silently alter signatures."""

    @pytest.mark.parametrize(
        "private_key,message,k,r,s", RFC6979_VECTORS,
        ids=[v[1][:20].decode() for v in RFC6979_VECTORS])
    def test_vector(self, private_key, message, k, r, s):
        digest = sha256(message)
        assert ecdsa._rfc6979_nonce(private_key, digest) == k
        signature = ecdsa.sign(private_key, digest)
        assert (signature.r, signature.s) == (r, s)
        public = ecdsa.derive_public_key(private_key)
        assert ecdsa.verify(public, digest, signature)


class TestNonceRetry:
    """RFC 6979 §3.2h: an unusable nonce (r == 0 or s == 0) must be
    retried by advancing the K/V HMAC chain, never by incrementing k."""

    def test_retry_rederives_via_hmac_chain(self, monkeypatch):
        real = ecdsa._rfc6979_nonces
        z = ecdsa._bits_to_int(DIGEST)
        # Engineer a first nonce that yields s == 0: with r fixed by
        # k_bad, pick the private key solving z + r*key ≡ 0 (mod N).
        k_bad = 7
        r_bad = ecdsa.point_multiply(k_bad)[0] % ecdsa.N
        key = (-z * pow(r_bad, ecdsa.N - 2, ecdsa.N)) % ecdsa.N

        def forced_first(private_key, digest):
            chain = real(private_key, digest)
            next(chain)  # drop the true first candidate...
            yield k_bad  # ...and force the unusable nonce instead
            yield from chain  # retries continue the updated-K/V chain

        monkeypatch.setattr(ecdsa, "_rfc6979_nonces", forced_first)
        signature = ecdsa.sign(key, DIGEST)

        chain = real(key, DIGEST)
        next(chain)
        k_second = next(chain)
        assert signature == _signature_from_nonce(key, z, k_second)
        # Regression: the old behaviour retried with k_bad + 1.
        assert signature != _signature_from_nonce(key, z, k_bad + 1)

    def test_retry_on_zero_s_still_verifies(self, monkeypatch):
        real = ecdsa._rfc6979_nonces
        z = ecdsa._bits_to_int(DIGEST)
        k_bad = 7
        r_bad = ecdsa.point_multiply(k_bad)[0] % ecdsa.N
        key = (-z * pow(r_bad, ecdsa.N - 2, ecdsa.N)) % ecdsa.N

        def forced_first(private_key, digest):
            chain = real(private_key, digest)
            next(chain)
            yield k_bad
            yield from chain

        monkeypatch.setattr(ecdsa, "_rfc6979_nonces", forced_first)
        signature = ecdsa.sign(key, DIGEST)
        assert ecdsa.verify(ecdsa.derive_public_key(key), DIGEST, signature)


def _signature_from_nonce(private_key, z, k):
    """Textbook ECDSA with an explicit nonce (test oracle)."""
    r = ecdsa.point_multiply(k)[0] % ecdsa.N
    s = (pow(k, ecdsa.N - 2, ecdsa.N) * (z + r * private_key)) % ecdsa.N
    if s > ecdsa.N // 2:
        s = ecdsa.N - s
    return ecdsa.Signature(r, s)


class TestLowSEnforcement:
    def test_flipped_s_no_longer_verifies(self):
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        flipped = Signature(signature.r, ecdsa.N - signature.s)
        # (r, N - s) is algebraically valid for the same digest — the
        # classic malleability — and must now be rejected outright.
        assert not ecdsa.verify(public, DIGEST, flipped)

    def test_low_s_boundary_accepted(self):
        # s == N//2 is the largest permitted value; only s > N//2 is
        # rejected, so a boundary signature must still pass range checks
        # (it fails the curve equation here, which is fine — we only
        # assert no false rejection before the algebra).
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        assert signature.s <= ecdsa.N // 2
        assert ecdsa.verify(public, DIGEST, signature)


class TestWindowedGeneratorMultiply:
    """The precomputed-table path must agree with the generic ladder."""

    def test_matches_generic_ladder(self):
        for scalar in (1, 2, 15, 16, 0xDEADBEEF, ecdsa.N - 1,
                       (1 << 255) + 12345):
            fast = ecdsa._from_jacobian(ecdsa._jacobian_multiply_g(scalar))
            slow = ecdsa._from_jacobian(ecdsa._jacobian_multiply(
                (ecdsa.GX, ecdsa.GY, 1), scalar))
            assert fast == slow

    def test_order_multiple_is_infinity(self):
        assert ecdsa._from_jacobian(ecdsa._jacobian_multiply_g(ecdsa.N)) \
            is None

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=ecdsa.N - 1))
    def test_property_matches_ladder(self, scalar):
        assert ecdsa._from_jacobian(ecdsa._jacobian_multiply_g(scalar)) \
            == ecdsa._from_jacobian(ecdsa._jacobian_multiply(
                (ecdsa.GX, ecdsa.GY, 1), scalar))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=ecdsa.N - 1),
       st.binary(min_size=1, max_size=64))
def test_property_sign_verify_roundtrip(private_key, message):
    digest = sha256(message)
    signature = ecdsa.sign(private_key, digest)
    public = ecdsa.derive_public_key(private_key)
    assert ecdsa.verify(public, digest, signature)
    assert signature.s <= ecdsa.N // 2
    # Low-s invariance: the mirrored signature must never verify.
    mirrored = Signature(signature.r, ecdsa.N - signature.s)
    assert not ecdsa.verify(public, digest, mirrored)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=ecdsa.N - 2))
def test_property_scalar_homomorphism(k):
    # (k·G) + G == (k+1)·G
    assert ecdsa.point_add(
        ecdsa.point_multiply(k), (ecdsa.GX, ecdsa.GY)
    ) == ecdsa.point_multiply(k + 1)
