"""secp256k1 ECDSA: curve arithmetic, RFC 6979 determinism, low-s,
verification edge cases, and cross-key rejection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ecdsa
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import sha256
from repro.errors import InvalidKey, InvalidSignature

KEY = 0x1E99423A4ED27608A15A2616A2B0E9E52CED330AC530EDCC32C8FFC6A526AEDD
DIGEST = sha256(b"teechain")


class TestCurve:
    def test_generator_on_curve(self):
        assert ecdsa.is_on_curve((ecdsa.GX, ecdsa.GY))

    def test_infinity_on_curve(self):
        assert ecdsa.is_on_curve(None)

    def test_off_curve_point_detected(self):
        assert not ecdsa.is_on_curve((ecdsa.GX, ecdsa.GY + 1))

    def test_generator_order(self):
        assert ecdsa.point_multiply(ecdsa.N) is None

    def test_point_addition_commutes(self):
        p = ecdsa.point_multiply(7)
        q = ecdsa.point_multiply(11)
        assert ecdsa.point_add(p, q) == ecdsa.point_add(q, p)

    def test_addition_matches_multiplication(self):
        assert ecdsa.point_add(
            ecdsa.point_multiply(7), ecdsa.point_multiply(11)
        ) == ecdsa.point_multiply(18)

    def test_adding_inverse_gives_infinity(self):
        p = ecdsa.point_multiply(5)
        negated = (p[0], ecdsa.P - p[1])
        assert ecdsa.point_add(p, negated) is None

    def test_infinity_is_identity(self):
        p = ecdsa.point_multiply(9)
        assert ecdsa.point_add(p, None) == p
        assert ecdsa.point_add(None, p) == p

    def test_known_vector(self):
        # 2·G from the canonical secp256k1 test vectors.
        point = ecdsa.point_multiply(2)
        assert point[0] == int(
            "C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5",
            16,
        )


class TestSignVerify:
    def test_roundtrip(self):
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        assert ecdsa.verify(public, DIGEST, signature)

    def test_deterministic_rfc6979(self):
        assert ecdsa.sign(KEY, DIGEST) == ecdsa.sign(KEY, DIGEST)

    def test_different_digests_different_signatures(self):
        assert ecdsa.sign(KEY, DIGEST) != ecdsa.sign(KEY, sha256(b"other"))

    def test_low_s(self):
        signature = ecdsa.sign(KEY, DIGEST)
        assert signature.s <= ecdsa.N // 2

    def test_wrong_key_rejected(self):
        signature = ecdsa.sign(KEY, DIGEST)
        other = ecdsa.derive_public_key(KEY + 1)
        assert not ecdsa.verify(other, DIGEST, signature)

    def test_wrong_digest_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        signature = ecdsa.sign(KEY, DIGEST)
        assert not ecdsa.verify(public, sha256(b"tampered"), signature)

    def test_zero_r_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        assert not ecdsa.verify(public, DIGEST, Signature(0, 1))

    def test_out_of_range_s_rejected(self):
        public = ecdsa.derive_public_key(KEY)
        assert not ecdsa.verify(public, DIGEST, Signature(1, ecdsa.N))

    def test_bad_private_key_rejected(self):
        with pytest.raises(InvalidKey):
            ecdsa.sign(0, DIGEST)
        with pytest.raises(InvalidKey):
            ecdsa.sign(ecdsa.N, DIGEST)

    def test_bad_digest_length_rejected(self):
        with pytest.raises(InvalidSignature):
            ecdsa.sign(KEY, b"short")

    def test_off_curve_public_key_rejected(self):
        with pytest.raises(InvalidKey):
            ecdsa.verify((1, 1), DIGEST, ecdsa.sign(KEY, DIGEST))

    def test_signature_serialisation_roundtrip(self):
        signature = ecdsa.sign(KEY, DIGEST)
        assert Signature.from_bytes(signature.to_bytes()) == signature

    def test_signature_bad_length(self):
        with pytest.raises(InvalidSignature):
            Signature.from_bytes(b"\x00" * 63)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=ecdsa.N - 1),
       st.binary(min_size=1, max_size=64))
def test_property_sign_verify_roundtrip(private_key, message):
    digest = sha256(message)
    signature = ecdsa.sign(private_key, digest)
    public = ecdsa.derive_public_key(private_key)
    assert ecdsa.verify(public, digest, signature)
    assert signature.s <= ecdsa.N // 2


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=ecdsa.N - 2))
def test_property_scalar_homomorphism(k):
    # (k·G) + G == (k+1)·G
    assert ecdsa.point_add(
        ecdsa.point_multiply(k), (ecdsa.GX, ecdsa.GY)
    ) == ecdsa.point_multiply(k + 1)
