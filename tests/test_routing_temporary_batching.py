"""Routing (§7.4 policies), temporary channels (§5.2), and client-side
batching (§7.2)."""

import pytest

from repro.core.batching import PaymentBatcher
from repro.core.temporary import TemporaryChannelManager
from repro.errors import MultihopError, PaymentError, RoutingError
from repro.network.topology import Overlay, hub_and_spoke_overlay
from repro.routing import RoutePlanner, path_length


class TestRouting:
    def test_shortest_path_direct(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        assert planner.find_route("Nhub1", "Nhub2") == ["Nhub1", "Nhub2"]

    def test_leaf_to_leaf_goes_through_tiers(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        path = planner.find_route("Nleaf1", "Nleaf18")
        assert path[0] == "Nleaf1" and path[-1] == "Nleaf18"
        assert path_length(path) >= 4

    def test_paths_by_length_ordered(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        paths = list(planner.iter_routes("Nhub1", "Nhub2", limit=3))
        lengths = [path_length(path) for path in paths]
        assert lengths == sorted(lengths)
        assert lengths[0] == 1

    def test_limit_respected(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        assert len(list(planner.iter_routes("Nhub1", "Nhub2", limit=2))) == 2

    def test_no_path_raises(self):
        overlay = Overlay(nodes=("a", "b", "island"),
                          channels=(("a", "b"),), tier_of={})
        with pytest.raises(RoutingError):
            RoutePlanner.from_overlay(overlay).find_route("a", "island")

    def test_unknown_node_raises(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        with pytest.raises(RoutingError):
            planner.find_route("Nhub1", "mars")

    def test_disconnected_pair_raises_routing_error_during_iteration(self):
        # iter_routes is a generator: networkx only discovers there is
        # no path once iteration starts, so the guard must wrap the
        # loop, not just the shortest_simple_paths() call.
        overlay = Overlay(nodes=("a", "b", "island"),
                          channels=(("a", "b"),), tier_of={})
        paths = RoutePlanner.from_overlay(overlay).iter_routes("a", "island")
        with pytest.raises(RoutingError):
            next(paths)

    def test_unknown_node_raises_routing_error_during_iteration(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        with pytest.raises(RoutingError):
            list(planner.iter_routes("Nhub1", "mars"))


class TestDeprecatedShims:
    """`core.routing` keeps working, but warns toward `repro.routing`."""

    def test_shortest_path_shim_warns_and_delegates(self):
        from repro.core.routing import shortest_path
        overlay = hub_and_spoke_overlay()
        with pytest.deprecated_call():
            path = shortest_path(overlay, "Nhub1", "Nhub2")
        assert path == ["Nhub1", "Nhub2"]

    def test_iter_paths_shim_warns_and_delegates(self):
        from repro.core.routing import iter_paths_by_length
        overlay = hub_and_spoke_overlay()
        with pytest.deprecated_call():
            paths = list(iter_paths_by_length(overlay, "Nhub1", "Nhub2",
                                              limit=2))
        assert len(paths) == 2

    def test_path_length_shim_warns(self):
        from repro.core.routing import path_length as shimmed
        with pytest.deprecated_call():
            assert shimmed(["a", "b", "c"]) == 2

    def test_no_networkx_import_in_shim_module(self):
        # The acceptance bar: networkx stays confined to repro.routing.
        import inspect
        import repro.core.routing as shim
        assert "import networkx" not in inspect.getsource(shim)


class TestTemporaryChannels:
    @pytest.fixture
    def contended(self, funded_pair):
        network, alice, bob = funded_pair
        primary = alice.open_channel(bob)
        record = alice.create_deposit(50_000)
        alice.approve_and_associate(bob, record, primary)
        return network, alice, bob, primary, TemporaryChannelManager(alice)

    def test_create_temporary(self, contended):
        network, alice, bob, primary, manager = contended
        temporary = manager.create(bob, 10_000)
        assert temporary != primary
        assert manager.count("bob") == 1
        assert alice.program.channels[temporary].is_open

    def test_parallel_payment_while_primary_locked(self, network):
        """The §5.2 scenario: the primary channel is locked by a multi-hop
        payment, yet a payment still flows over a temporary channel."""
        alice = network.create_node("alice", funds=200_000)
        bob = network.create_node("bob", funds=200_000)
        carol = network.create_node("carol", funds=200_000)
        primary = alice.open_channel(bob)
        bc = bob.open_channel(carol)
        record = alice.create_deposit(40_000)
        alice.approve_and_associate(bob, record, primary)
        record_bc = bob.create_deposit(40_000)
        bob.approve_and_associate(carol, record_bc, bc)
        manager = TemporaryChannelManager(alice)
        temporary = manager.create(bob, 10_000)

        from repro.network import NetworkAdversary
        adversary = NetworkAdversary(network.transport)
        adversary.drop_after("bob", "carol", 0)
        # The multi-hop locks the *primary* channel (lexicographically
        # first among idle channels)... it locks one of the two; the other
        # stays usable.
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        locked = [cid for cid in (primary, temporary)
                  if alice.program.channels[cid].stage.value != "idle"]
        free = [cid for cid in (primary, temporary) if cid not in locked]
        assert len(locked) == 1 and len(free) == 1
        alice.pay(free[0], 1_000)  # parallel payment succeeds

    def test_merge_restores_primary_and_frees_deposit(self, contended):
        network, alice, bob, primary, manager = contended
        record = bob.create_deposit(20_000)
        bob.approve_and_associate(alice, record, primary)
        temporary = manager.create(bob, 10_000)
        alice.pay(temporary, 3_000)
        manager.merge(bob, temporary, primary)
        assert not alice.program.channels[temporary].is_open
        assert alice.channel_balance(primary) == (47_000, 23_000)
        free = [r for r in alice.program.deposits.values() if r.is_free]
        assert any(r.value == 10_000 for r in free)
        alice.assert_balance_correct()
        bob.assert_balance_correct()

    def test_merge_reuses_deposit_without_blockchain(self, contended):
        network, alice, bob, primary, manager = contended
        record = bob.create_deposit(20_000)
        bob.approve_and_associate(alice, record, primary)
        temporary = manager.create(bob, 10_000)
        manager.merge(bob, temporary, primary)
        height = network.chain.height
        manager.create(bob, 10_000)
        assert network.chain.height == height

    def test_merge_with_reverse_drift(self, contended):
        network, alice, bob, primary, manager = contended
        record = bob.create_deposit(20_000)
        bob.approve_and_associate(alice, record, primary)
        temporary = manager.create(bob, 10_000)
        bob_record = bob.create_deposit(5_000)
        bob.approve_and_associate(alice, bob_record, temporary)
        bob.pay(temporary, 2_000)  # alice *gains* on the temporary channel
        manager.merge(bob, temporary, primary)
        assert not alice.program.channels[temporary].is_open
        alice.assert_balance_correct()
        bob.assert_balance_correct()


class TestBatching:
    def test_flush_aggregates_per_channel(self, open_channel):
        network, alice, bob, channel = open_channel
        batcher = PaymentBatcher(alice)
        for _ in range(20):
            batcher.submit(channel, 50)
        assert batcher.pending_count(channel) == 20
        flushed = batcher.flush()
        assert flushed == 20
        assert bob.program.payments_received == 20
        assert bob.channel_balance(channel) == (31_000, 49_000)

    def test_single_protocol_message_per_batch(self, open_channel):
        network, alice, bob, channel = open_channel
        sent_before = network.transport.messages_sent
        batcher = PaymentBatcher(alice)
        for _ in range(50):
            batcher.submit(channel, 10)
        batcher.flush()
        assert network.transport.messages_sent == sent_before + 1

    def test_scheduler_driven_flush(self, open_channel):
        network, alice, bob, channel = open_channel
        batcher = PaymentBatcher(alice, window=0.1,
                                 scheduler=network.scheduler)
        batcher.submit(channel, 100)
        batcher.submit(channel, 200)
        assert batcher.pending_count(channel) == 2
        network.scheduler.run()
        assert batcher.pending_count(channel) == 0
        assert alice.channel_balance(channel)[1] == 30_300

    def test_explicit_flush_cancels_window_timer(self, open_channel):
        """An explicit flush() must cancel the armed window timer; a
        stale timer would flush the *next* batch before its own 100 ms
        window elapses (§7.2)."""
        network, alice, bob, channel = open_channel
        scheduler = network.scheduler
        batcher = PaymentBatcher(alice, window=0.1, scheduler=scheduler)
        batcher.submit(channel, 100)  # timer armed for t = 0.1

        def flush_then_resubmit():
            batcher.flush()           # explicit flush at t = 0.04
            batcher.submit(channel, 200)  # new window ends at t = 0.14

        scheduler.call_at(0.04, flush_then_resubmit)
        scheduler.run(until=0.12)
        # With the stale timer the second batch flushes at t = 0.1.
        assert batcher.pending_count(channel) == 1
        scheduler.run()
        assert batcher.pending_count(channel) == 0
        assert batcher.batches_flushed == 2

    def test_empty_flush_noop(self, open_channel):
        network, alice, bob, channel = open_channel
        assert PaymentBatcher(alice).flush() == 0

    def test_invalid_amount_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        with pytest.raises(PaymentError):
            PaymentBatcher(alice).submit(channel, 0)

    def test_batch_counts_tracked(self, open_channel):
        network, alice, bob, channel = open_channel
        batcher = PaymentBatcher(alice)
        for _ in range(7):
            batcher.submit(channel, 10)
        batcher.flush()
        assert batcher.payments_batched == 7
        assert batcher.batches_flushed == 1
        assert alice.program.payments_sent == 7

    def test_flush_failure_restores_unflushed_batches(self, open_channel):
        """A failing channel must not destroy the other channels' queued
        batches (flush used to swap _pending out and drop everything on
        the floor when one pay raised).  The failed batch itself stays
        queued too — top up the channel and the re-armed window timer
        delivers every payment."""
        network, alice, bob, channel = open_channel
        other = alice.open_channel(bob)
        record = alice.create_deposit(10_000)
        alice.approve_and_associate(bob, record, other)
        # Minted up front: create_deposit mines, and mining drains the
        # scheduler — which would fire the re-armed window timer early.
        top_up = alice.create_deposit(20_000)
        batcher = PaymentBatcher(alice, window=0.1,
                                 scheduler=network.scheduler)
        batcher.submit(channel, 60_000)  # exceeds the 50k deposit
        batcher.submit(channel, 1_000)
        batcher.submit(other, 500)
        with pytest.raises(PaymentError):
            batcher.flush()
        # Everything restored: the failed channel's batch and the one
        # flush never reached.
        assert batcher.pending_count(channel) == 2
        assert batcher.pending_count(other) == 1
        assert batcher.batches_flushed == 0
        assert alice.program.payments_sent == 0
        # The window timer was re-armed; after funding the shortfall the
        # scheduled flush delivers all three payments.
        alice.approve_and_associate(bob, top_up, channel)
        network.scheduler.run()
        assert batcher.pending_payments() == 0
        assert batcher.batches_flushed == 2
        assert alice.program.payments_sent == 3
        assert bob.program.payments_received == 3
        alice.assert_balance_correct()
        bob.assert_balance_correct()
