"""Network substrate: transports, topologies, secure channels, and the
message adversary."""

import pytest

from repro.crypto import KeyPair
from repro.errors import (
    AttestationError,
    MessageAuthenticationError,
    NetworkError,
)
from repro.network import (
    InstantNetwork,
    Network,
    NetworkAdversary,
    Topology,
    complete_graph_overlay,
    establish_secure_channel,
    fig3_topology,
    hub_and_spoke_overlay,
)
from repro.simulation import Scheduler
from repro.tee import AttestationService, Enclave, EnclaveProgram


class Prog(EnclaveProgram):
    PROGRAM_NAME = "net-test"


class Tampered(EnclaveProgram):
    PROGRAM_NAME = "net-test-tampered"


class TestTransport:
    def test_latency_is_half_rtt_plus_serialisation(self):
        topology = fig3_topology()
        scheduler = Scheduler()
        network = Network(scheduler, topology.latency_fn(),
                          topology.bandwidth_fn())
        arrivals = []
        network.register("US", lambda m: arrivals.append(scheduler.now))
        network.register("UK1", lambda m: None)
        network.send("UK1", "US", "ping", size=512)
        scheduler.run()
        expected = 0.090 / 2 + 512 * 8 / 150e6
        assert arrivals[0] == pytest.approx(expected)

    def test_unregistered_destination_drops_silently(self):
        scheduler = Scheduler()
        network = Network(scheduler, lambda a, b: 0.01)
        network.register("a", lambda m: None)
        network.send("a", "ghost", "x")
        scheduler.run()  # no exception: the host is just gone

    def test_crash_between_send_and_delivery_drops(self):
        scheduler = Scheduler()
        network = Network(scheduler, lambda a, b: 1.0)
        got = []
        network.register("a", lambda m: None)
        network.register("b", got.append)
        network.send("a", "b", "x")
        network.unregister("b")
        scheduler.run()
        assert got == []

    def test_duplicate_registration_rejected(self):
        network = InstantNetwork()
        network.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            network.register("a", lambda m: None)

    def test_instant_fifo_cascade(self):
        network = InstantNetwork()
        log = []

        def handler_a(message):
            log.append(("a", message.payload))
            if message.payload == "start":
                network.send("a", "b", "fwd1")
                network.send("a", "b", "fwd2")

        network.register("a", handler_a)
        network.register("b", lambda m: log.append(("b", m.payload)))
        network.send("x", "a", "start")
        assert log == [("a", "start"), ("b", "fwd1"), ("b", "fwd2")]

    def test_byte_accounting(self):
        network = InstantNetwork()
        network.register("b", lambda m: None)
        network.send("a", "b", "x", size=100)
        network.send("a", "b", "y", size=200)
        assert network.messages_sent == 2
        assert network.bytes_sent == 300

    def test_tap_suppression_not_counted_as_sent(self):
        # Messages the adversary takes over never reach the wire; they
        # must land in the suppressed counters, not messages_sent.
        network = InstantNetwork()
        network.register("b", lambda m: None)
        adversary = NetworkAdversary(network)
        adversary.partition("a", "b")
        network.send("a", "b", "lost", size=64)
        assert network.messages_sent == 0
        assert network.bytes_sent == 0
        assert network.messages_suppressed == 1
        assert network.bytes_suppressed == 64
        adversary.heal("a", "b")
        network.send("a", "b", "found", size=32)
        assert network.messages_sent == 1
        assert network.bytes_sent == 32
        assert network.messages_suppressed == 1

    def test_tap_suppression_on_simulated_network(self):
        scheduler = Scheduler()
        network = Network(scheduler, lambda a, b: 0.01)
        network.register("b", lambda m: None)
        NetworkAdversary(network).partition("a", "b")
        network.send("a", "b", "x", size=10)
        scheduler.run()
        assert network.messages_sent == 0
        assert network.messages_suppressed == 1

    def test_transport_metrics_split_sends_and_drops(self):
        from repro import obs

        with obs.collecting() as (registry, _tracer):
            network = InstantNetwork()
            network.register("b", lambda m: None)
            adversary = NetworkAdversary(network)
            adversary.partition("a", "b")
            network.send("a", "b", "lost", size=10)
            network.send("c", "b", "ok", size=5)
        counters = registry.snapshot()["counters"]
        assert counters["transport.tap_drops"] == 1
        assert counters["transport.tap_dropped_bytes"] == 10
        assert counters["transport.messages[c->b]"] == 1
        assert counters["transport.bytes[c->b]"] == 5
        assert "transport.messages[a->b]" not in counters


class TestDrainRobustness:
    """A raising handler (or mid-drain unregister) must not wedge the FIFO."""

    def test_raising_handler_still_delivers_the_rest(self):
        network = InstantNetwork()
        got = []

        def exploding(message):
            got.append(("b", message.payload))
            raise RuntimeError("handler bug")

        network.register("b", exploding)
        network.register("c", lambda m: got.append(("c", m.payload)))

        def fan_out(message):
            network.send("a", "b", "boom")
            network.send("a", "c", "survivor")

        network.register("a", fan_out)
        with pytest.raises(NetworkError) as exc_info:
            network.send("driver", "a", "go")
        # Everything queued behind the failure was still delivered.
        assert got == [("b", "boom"), ("c", "survivor")]
        # The error carries the offending message and chains the cause.
        assert exc_info.value.message.destination == "b"
        assert exc_info.value.message.payload == "boom"
        assert isinstance(exc_info.value.__cause__, RuntimeError)

    def test_first_failure_wins_when_several_handlers_raise(self):
        network = InstantNetwork()
        network.register("b", lambda m: (_ for _ in ()).throw(
            ValueError(f"bad {m.payload}")))

        def fan_out(message):
            network.send("a", "b", "first")
            network.send("a", "b", "second")

        network.register("a", fan_out)
        with pytest.raises(NetworkError) as exc_info:
            network.send("driver", "a", "go")
        assert exc_info.value.message.payload == "first"

    def test_unregister_mid_drain_skips_silently(self):
        network = InstantNetwork()
        got = []

        def crash_then_more(message):
            network.unregister("b")
            network.send("a", "b", "into the void")
            network.send("a", "c", "still alive")

        network.register("a", crash_then_more)
        network.register("b", lambda m: got.append(("b", m.payload)))
        network.register("c", lambda m: got.append(("c", m.payload)))
        network.send("driver", "a", "go")  # no exception
        assert got == [("c", "still alive")]

    def test_network_usable_after_a_drain_failure(self):
        network = InstantNetwork()
        network.register("b", lambda m: (_ for _ in ()).throw(
            RuntimeError("once")))
        with pytest.raises(NetworkError):
            network.send("a", "b", "fails")
        network.unregister("b")
        got = []
        network.register("b", lambda m: got.append(m.payload))
        network.send("a", "b", "recovered")
        assert got == ["recovered"]


class TestPayloadSize:
    """Message sizes come from the wire codec, not a hardcoded constant."""

    def test_encodable_payload_gets_codec_size(self):
        from repro.core.messages import Paid
        from repro.network.transport import DEFAULT_MESSAGE_SIZE, payload_size
        from repro.runtime import codec

        paid = Paid(channel_id="chan", amount=7, sequence=1, batch_count=1)
        assert payload_size(paid) == len(codec.encode(paid))
        assert payload_size(paid) != DEFAULT_MESSAGE_SIZE

    def test_unencodable_payload_falls_back_to_default(self):
        from repro.network.transport import DEFAULT_MESSAGE_SIZE, payload_size

        assert payload_size(object()) == DEFAULT_MESSAGE_SIZE

    def test_send_without_size_uses_codec_length(self):
        from repro.runtime import codec

        network = InstantNetwork()
        sizes = []
        network.register("b", lambda m: sizes.append(m.size))
        network.send("a", "b", b"\x00" * 100)
        assert sizes == [len(codec.encode(b"\x00" * 100))]

    def test_explicit_size_still_wins(self):
        network = InstantNetwork()
        sizes = []
        network.register("b", lambda m: sizes.append(m.size))
        network.send("a", "b", b"payload", size=9999)
        assert sizes == [9999]


class TestWrapHandler:
    def test_wrap_interposes_without_reregistering(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(("inner", m.payload)))
        network.wrap_handler(
            "b", lambda inner: lambda m: (got.append(("outer", m.payload)),
                                          inner(m)))
        network.send("a", "b", "x")
        assert got == [("outer", "x"), ("inner", "x")]

    def test_wrap_unknown_endpoint_raises(self):
        network = InstantNetwork()
        with pytest.raises(NetworkError):
            network.wrap_handler("ghost", lambda inner: inner)


class TestTopology:
    def test_fig3_rtts(self):
        topology = fig3_topology()
        assert topology.rtt("UK1", "US") == 0.090
        assert topology.rtt("UK1", "IL1") == 0.060
        assert topology.rtt("US", "IL2") == 0.140
        assert topology.rtt("UK1", "UK7") == 0.0005
        assert topology.rtt("US", "US") == 0.0

    def test_fig3_machine_count(self):
        assert len(fig3_topology(uk_machines=30).nodes()) == 33

    def test_unknown_node_rejected(self):
        with pytest.raises(NetworkError):
            fig3_topology().rtt("mars", "US")

    def test_uniform_topology(self):
        topology = Topology.uniform(["a", "b", "c"], rtt=0.1)
        assert topology.rtt("a", "c") == 0.1

    def test_complete_graph_overlay(self):
        overlay = complete_graph_overlay(["a", "b", "c", "d"])
        assert len(overlay.channels) == 6
        assert overlay.has_channel("a", "d")
        assert sorted(overlay.neighbours("a")) == ["b", "c", "d"]

    def test_hub_and_spoke_default_shape(self):
        overlay = hub_and_spoke_overlay()
        assert len(overlay.nodes) == 30
        tiers = [overlay.tier_of[node] for node in overlay.nodes]
        assert tiers.count(1) == 3
        assert tiers.count(2) == 9
        assert tiers.count(3) == 18
        # Hubs form a complete core.
        assert overlay.has_channel("Nhub1", "Nhub2")
        # Leaves connect only to their mid.
        assert len(overlay.neighbours("Nleaf1")) == 1


class TestSecureChannel:
    def _pair(self):
        service = AttestationService()
        a = Enclave(Prog(), seed=b"sc-a")
        b = Enclave(Prog(), seed=b"sc-b")
        return service, a, b

    def test_roundtrip(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        envelope = chan_a.seal_message({"amount": 7})
        assert chan_b.open_message(envelope) == {"amount": 7}

    def test_replay_rejected(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        envelope = chan_a.seal_message("once")
        chan_b.open_message(envelope)
        with pytest.raises(MessageAuthenticationError):
            chan_b.open_message(envelope)

    def test_reorder_rejected(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        first = chan_a.seal_message("first")
        second = chan_a.seal_message("second")
        chan_b.open_message(second)
        with pytest.raises(MessageAuthenticationError):
            chan_b.open_message(first)

    def test_tampering_rejected(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        envelope = bytearray(chan_a.seal_message("x"))
        envelope[20] ^= 1
        with pytest.raises(MessageAuthenticationError):
            chan_b.open_message(bytes(envelope))

    def test_cross_channel_rejected(self):
        service, a, b = self._pair()
        c = Enclave(Prog(), seed=b"sc-c")
        chan_a, chan_b = establish_secure_channel(a, b, service)
        chan_a2, chan_c = establish_secure_channel(a, c, service)
        envelope = chan_a2.seal_message("for c")
        with pytest.raises(MessageAuthenticationError):
            chan_b.open_message(envelope)

    def test_wrong_program_fails_attestation(self):
        service, a, _ = self._pair()
        tampered = Enclave(Tampered(), seed=b"evil")
        with pytest.raises(AttestationError):
            establish_secure_channel(a, tampered, service)

    def test_blob_namespace_independent_of_messages(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        blob = chan_a.seal_blob("key-material")
        chan_b.open_message(chan_a.seal_message("outer"))
        # Blob opens regardless of message-counter state.
        assert chan_b.open_blob(blob) == "key-material"

    def test_blob_tampering_rejected(self):
        service, a, b = self._pair()
        chan_a, chan_b = establish_secure_channel(a, b, service)
        blob = bytearray(chan_a.seal_blob("key"))
        blob[-1] ^= 1
        with pytest.raises(MessageAuthenticationError):
            chan_b.open_blob(bytes(blob))


class TestAdversary:
    def test_partition_and_heal(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(m.payload))
        adversary = NetworkAdversary(network)
        adversary.partition("a", "b")
        network.send("a", "b", "lost")
        assert got == []
        adversary.heal("a", "b")
        network.send("a", "b", "found")
        assert got == ["found"]

    def test_partition_is_directional(self):
        network = InstantNetwork()
        got = []
        network.register("a", lambda m: got.append(m.payload))
        network.register("b", lambda m: None)
        adversary = NetworkAdversary(network)
        adversary.partition("a", "b")
        network.send("b", "a", "reverse")
        assert got == ["reverse"]

    def test_drop_after(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(m.payload))
        adversary = NetworkAdversary(network)
        adversary.drop_after("a", "b", 2)
        for index in range(4):
            network.send("a", "b", index)
        assert got == [0, 1]

    def test_record_and_replay(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(m.payload))
        adversary = NetworkAdversary(network)
        adversary.record("a", "b")
        network.send("a", "b", "original")
        adversary.replay_recorded(0)
        assert got == ["original", "original"]

    def test_duplicate(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(m.payload))
        adversary = NetworkAdversary(network)
        adversary.duplicate("a", "b")
        network.send("a", "b", "x")
        assert got == ["x", "x"]

    def test_delay_on_simulated_network(self):
        scheduler = Scheduler()
        network = Network(scheduler, lambda a, b: 0.010)
        arrivals = []
        network.register("b", lambda m: arrivals.append(scheduler.now))
        adversary = NetworkAdversary(network)
        adversary.delay("a", "b", 5.0)
        network.send("a", "b", "late")
        scheduler.run()
        assert arrivals[0] == pytest.approx(5.005)

    def test_lossy_link(self):
        network = InstantNetwork()
        got = []
        network.register("b", lambda m: got.append(m.payload))
        adversary = NetworkAdversary(network, rng_seed=1)
        adversary.lossy("a", "b", probability=0.5)
        for index in range(100):
            network.send("a", "b", index)
        assert 20 < len(got) < 80
        assert len(adversary.dropped) == 100 - len(got)
