"""Algorithm 3 + §6.1: force-freeze chain replication and committee
chains."""

import pytest

from repro.core.replication import (
    CommitteeMemberProgram,
    ReplicationChain,
    recover_settlements,
)
from repro.core.settlement import build_unsigned_settlement
from repro.errors import (
    EnclaveFrozen,
    ReplicationError,
    SettlementError,
    ThresholdError,
)
from repro.tee import Enclave, crash_enclave, fork_enclave


@pytest.fixture
def committee_pair(network):
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    alice.attach_committee(backups=2, threshold=2)
    channel = alice.open_channel(bob)
    deposit = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit, channel)
    return network, alice, bob, channel, deposit


class TestReplication:
    def test_every_mutation_pushes_an_update(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        pushes = alice.replication.pushes
        alice.pay(channel, 1_000)
        assert alice.replication.pushes == pushes + 1

    def test_backups_hold_latest_state(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 1_000)
        for member in alice.replication.members:
            state = member.program.state
            assert state["channels"][channel].my_balance == 39_000

    def test_versions_strictly_increase(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        member = alice.replication.members[0]
        version = member.ecall("latest_version")
        alice.pay(channel, 1_000)
        assert member.ecall("latest_version") == version + 1

    def test_replayed_old_update_refused(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        member = alice.replication.members[0]
        from repro.core.channel_base import replication_blob
        blob = replication_blob(alice.program)
        version = member.ecall("latest_version")
        with pytest.raises(ReplicationError):
            member.ecall("state_update", alice.replication.chain_id,
                         version, blob)  # not greater than current

    def test_update_for_wrong_chain_refused(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        member = alice.replication.members[0]
        with pytest.raises(ReplicationError):
            member.ecall("state_update", "other-chain", 999, b"x")

    def test_member_cannot_join_two_chains(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        member = alice.replication.members[0]
        with pytest.raises(ReplicationError):
            member.ecall("assign_to_chain", "second-chain")

    def test_backup_crash_freezes_chain_and_rolls_back(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 1_000)
        crash_enclave(alice.replication.members[1])
        with pytest.raises(ReplicationError):
            alice.pay(channel, 2_000)
        # The failed payment rolled back: balance unchanged.
        assert alice.program.channels[channel].my_balance == 39_000
        assert alice.replication.frozen

    def test_rolled_back_payment_never_reaches_peer(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        crash_enclave(alice.replication.members[0])
        with pytest.raises(ReplicationError):
            alice.pay(channel, 2_000)
        assert bob.channel_balance(channel) == (0, 40_000)

    def test_read_from_backup_force_freezes(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.replication.read_backup(alice.replication.members[0])
        assert alice.replication.frozen
        with pytest.raises(EnclaveFrozen):
            alice.pay(channel, 1_000)

    def test_frozen_chain_still_settles(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 5_000)
        alice.replication.read_backup(alice.replication.members[0])
        transaction = alice._ecall("unilateral_settlement", channel)
        alice.client.broadcast(transaction)
        network.mine()
        alice.assert_balance_correct()
        bob.assert_balance_correct()

    def test_recovery_from_backup_snapshot(self, network):
        alice = network.create_node("alice", funds=100_000)
        bob = network.create_node("bob", funds=100_000)
        alice.attach_committee(backups=2, threshold=1)
        channel = alice.open_channel(bob)
        deposit = alice.create_deposit(40_000)
        alice.approve_and_associate(bob, deposit, channel)
        alice.pay(channel, 5_000)
        crash_enclave(alice.enclave)
        state = alice.replication.members[0].ecall("read_state")
        transactions = recover_settlements(
            state, alice.address, provider_factory=alice._signing_chain)
        for transaction in transactions:
            alice.client.broadcast(transaction)
        network.mine()
        alice.assert_balance_correct()
        bob.assert_balance_correct()

    def test_reclaim_falls_back_to_backups(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 5_000)
        crash_enclave(alice.enclave)
        alice.assert_balance_correct()
        bob.assert_balance_correct()


class TestCommitteeSigning:
    def test_deposit_uses_committee_multisig(self, committee_pair):
        network, alice, bob, channel, deposit = committee_pair
        assert deposit.spec.threshold == 2
        assert deposit.spec.total == 3

    def test_settlement_gathers_quorum(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 5_000)
        transaction = alice.settle(channel)
        network.mine()
        assert network.chain.contains(transaction.txid)
        alice.assert_balance_correct()

    def test_counterparty_can_settle_via_committee(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 9_000)
        transaction = bob.settle(channel)
        network.mine()
        assert network.chain.contains(transaction.txid)
        bob.assert_balance_correct()

    def test_quorum_survives_minority_crash(self, committee_pair):
        network, alice, bob, channel, _ = committee_pair
        alice.pay(channel, 5_000)
        crash_enclave(alice.replication.members[0])
        # The crash freezes the chain on the next push attempt; settle at
        # the frozen state still gathers 2 of the 3 member signatures.
        try:
            alice.pay(channel, 1_000)
        except ReplicationError:
            pass
        transaction = alice._ecall("unilateral_settlement", channel)
        alice.client.broadcast(transaction)
        network.mine()
        assert network.chain.contains(transaction.txid)

    def test_quorum_fails_below_threshold(self, committee_pair):
        network, alice, bob, channel, deposit = committee_pair
        alice.pay(channel, 5_000)
        for member in alice.replication.members:
            crash_enclave(member)
        # Only the primary's signature remains: 1 < m = 2.
        with pytest.raises((ThresholdError, SettlementError)):
            alice._ecall("unilateral_settlement", channel)

    def test_stale_settlement_refused_by_members(self, committee_pair):
        network, alice, bob, channel, deposit = committee_pair
        fork = fork_enclave(alice.enclave, "stolen")
        alice.pay(channel, 10_000)
        stale = fork.program.channels[channel]
        records = [fork.program.deposits[o]
                   for o in sorted(stale.all_deposits())]
        stale_settlement = build_unsigned_settlement(records, [
            (stale.my_settlement_address, stale.my_balance),
            (stale.remote_settlement_address, stale.remote_balance)])
        with pytest.raises(ThresholdError):
            alice.committee.gather_signatures(deposit, stale_settlement)

    def test_arbitrary_spend_refused_by_members(self, committee_pair):
        network, alice, bob, channel, deposit = committee_pair
        from repro.core.deposits import DepositRecord
        theft = build_unsigned_settlement(
            [alice.program.deposits[deposit.outpoint]],
            [("btcattacker", 40_000)])
        with pytest.raises(ThresholdError):
            alice.committee.gather_signatures(deposit, theft)

    def test_member_refuses_without_replicated_state(self, network):
        alice = network.create_node("alice", funds=100_000)
        member = Enclave(CommitteeMemberProgram(), name="lonely")
        member.ecall("assign_to_chain", "c")
        address, _ = member.ecall("new_deposit_address")
        from repro.blockchain.transaction import OutPoint, Transaction, TxInput, TxOutput
        from repro.blockchain.script import LockingScript
        bogus = Transaction(
            inputs=(TxInput(OutPoint("aa" * 32, 0)),),
            outputs=(TxOutput(1, LockingScript.pay_to_address("btcx")),))
        with pytest.raises(ReplicationError):
            member.ecall("sign_deposit_spend", address, bogus)

    def test_invalid_threshold_rejected(self, network):
        alice = network.create_node("alice", funds=1_000)
        with pytest.raises(ThresholdError):
            alice.attach_committee(backups=1, threshold=3)
