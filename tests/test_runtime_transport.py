"""Runtime transport: the wall-clock scheduler shim and AsyncTcpNetwork.

Socket tests are ``live``-marked (deselect with ``-m "not live"`` where
loopback networking is unavailable); the wall-clock scheduler tests are
plain unit tests.
"""

import asyncio

import pytest

from repro.errors import NetworkError, SimulationError
from repro.runtime.messages import Echo
from repro.runtime.transport import AsyncTcpNetwork
from repro.runtime.wallclock import WallClockScheduler


class TestWallClockScheduler:
    def test_now_advances_with_real_time(self):
        scheduler = WallClockScheduler()
        first = scheduler.now
        assert first >= 0.0
        assert scheduler.now >= first
        assert scheduler.clock.now >= first  # .clock shim for DES code

    def test_zero_delay_runs_inline(self):
        scheduler = WallClockScheduler()
        ran = []
        scheduler.call_after(0, lambda: ran.append(True))
        # No event loop involved: the DES contract is that zero-delay
        # events complete before control returns.
        assert ran == [True]
        assert scheduler.events_processed == 1

    def test_negative_delay_rejected(self):
        scheduler = WallClockScheduler()
        with pytest.raises(SimulationError):
            scheduler.call_after(-1, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.call_at(scheduler.now - 10, lambda: None)

    def test_positive_delay_fires_on_loop(self):
        async def scenario():
            scheduler = WallClockScheduler()
            ran = asyncio.Event()
            scheduler.call_after(0.01, ran.set)
            await asyncio.wait_for(ran.wait(), 2.0)

        asyncio.run(scenario())

    def test_cancelled_timer_never_fires(self):
        async def scenario():
            scheduler = WallClockScheduler()
            ran = []
            handle = scheduler.call_after(0.01, lambda: ran.append(True))
            handle.cancel()
            await asyncio.sleep(0.05)
            assert ran == []
            assert scheduler.events_processed == 0

        asyncio.run(scenario())

    def test_run_is_a_noop(self):
        scheduler = WallClockScheduler()
        scheduler.run()
        scheduler.run_until_idle()
        assert scheduler.step() is False


@pytest.mark.live
class TestAsyncTcpNetwork:
    def _pair(self):
        """Two transports with a's outbound link dialled to b."""
        a = AsyncTcpNetwork("a")
        b = AsyncTcpNetwork("b")
        return a, b

    def test_envelope_crosses_a_real_socket(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.send("a", "b", b"sealed-bytes")
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.sender == "a"
            assert message.destination == "b"
            assert message.payload == b"sealed-bytes"
            assert message.size > len(b"sealed-bytes")  # framing overhead
            assert a.messages_sent == 1
            assert b.frames_received == 1
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_non_bytes_payload_rides_nested_frame(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            a.add_peer("b", b.host, b.port)
            a.send("a", "b", {"amount": 7, "ids": (1, 2)})
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.payload == {"amount": 7, "ids": (1, 2)}
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_unencodable_payload_rejected(self):
        async def scenario():
            a, _ = self._pair()
            await a.start()
            with pytest.raises(NetworkError, match="no wire encoding"):
                a.send("a", "b", object())
            await a.stop()

        asyncio.run(scenario())

    def test_reconnect_with_backoff_when_peer_starts_late(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            # Dial before b exists: the link must retry, not die.
            from repro.runtime.launch import free_port
            port = free_port()
            a.add_peer("b", "127.0.0.1", port)
            a.send("a", "b", b"early")  # queued while dialling
            await asyncio.sleep(0.2)
            assert not a._links["b"].connected.is_set()
            b.port = port
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            await a.wait_connected("b", 5.0)
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.payload == b"early"
            assert a._links["b"].reconnects >= 1
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_bounded_queue_drops_when_full(self):
        async def scenario():
            a = AsyncTcpNetwork("a", max_queue=4)
            await a.start()
            from repro.runtime.launch import free_port
            a.add_peer("b", "127.0.0.1", free_port())  # never connects
            for _ in range(10):
                a.send("a", "b", b"x")
            link = a._links["b"]
            assert link.queue.qsize() == 4
            assert link.drops == 6
            await a.stop()

        asyncio.run(scenario())

    def test_taps_suppress_before_the_wire(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.add_tap(lambda message: False)  # adversary drops everything
            a.send("a", "b", b"never-arrives")
            assert a.messages_sent == 0
            assert a.messages_suppressed == 1
            assert a._links["b"].queue.qsize() == 0
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_control_frames_share_fifo_with_envelopes(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            order = []
            b.register("b", lambda message: order.append(("env",
                                                          message.payload)))
            b.control_handler = lambda obj, peer: order.append(("ctl", obj))
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.send("a", "b", b"first")
            a.send_control("b", Echo(seq=1, origin="a"))
            a.send("a", "b", b"second")
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(order) < 3:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert order == [("env", b"first"),
                             ("ctl", Echo(seq=1, origin="a")),
                             ("env", b"second")]
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_handler_exception_does_not_kill_the_reader(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = []

            def flaky(message):
                received.append(message.payload)
                if message.payload == b"boom":
                    raise RuntimeError("handler bug")

            b.register("b", flaky)
            a.add_peer("b", b.host, b.port)
            a.send("a", "b", b"boom")
            a.send("a", "b", b"after")
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(received) < 2:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert received == [b"boom", b"after"]
            await a.stop()
            await b.stop()

        asyncio.run(scenario())


@pytest.mark.live
class TestFlowControl:
    """Credit/watermark flow control on the outbound queues."""

    def test_send_wait_blocks_instead_of_dropping(self):
        async def scenario():
            # max_queue=4 → high watermark 3: three sends go straight in,
            # the fourth waits for credit instead of dropping.
            a = AsyncTcpNetwork("a", max_queue=4)
            await a.start()
            from repro.runtime.launch import free_port
            port = free_port()
            a.add_peer("b", "127.0.0.1", port)  # not listening yet
            for index in range(3):
                await a.send_wait("a", "b", f"f{index}".encode())
            link = a._links["b"]
            assert not link.writable.is_set()

            blocked = asyncio.ensure_future(
                a.send_wait("a", "b", b"f3"))
            await asyncio.sleep(0.1)
            assert not blocked.done()  # backpressured, not dropped

            b = AsyncTcpNetwork("b", port=port)
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            await b.start()
            payloads = [
                (await asyncio.wait_for(received.get(), 5.0)).payload
                for _ in range(4)
            ]
            await asyncio.wait_for(blocked, 5.0)
            assert payloads == [b"f0", b"f1", b"f2", b"f3"]
            assert link.drops == 0
            assert link.drops_by_plane == {"protocol": 0, "control": 0}
            assert link.backpressure_waits >= 1
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_drops_counted_per_plane(self):
        async def scenario():
            a = AsyncTcpNetwork("a", max_queue=4)
            await a.start()
            from repro.runtime.launch import free_port
            a.add_peer("b", "127.0.0.1", free_port())  # never connects
            for _ in range(7):           # 4 fill the queue, 3 drop
                a.send("a", "b", b"x")
            for seq in range(2):         # both drop, on the control plane
                a.send_control("b", Echo(seq=seq, origin="a"))
            link = a._links["b"]
            assert link.drops == 5
            assert link.drops_by_plane == {"protocol": 3, "control": 2}
            peer_stats = a.stats()["peers"]["b"]
            assert peer_stats["drops_protocol"] == 3
            assert peer_stats["drops_control"] == 2
            await a.stop()

        asyncio.run(scenario())

    def test_flush_is_a_write_barrier(self):
        async def scenario():
            a = AsyncTcpNetwork("a")
            b = AsyncTcpNetwork("b")
            await a.start()
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            for index in range(20):
                a.send("a", "b", f"frame{index}".encode())
            await a.flush("b", timeout=5.0)
            assert a._links["b"].queue.qsize() == 0
            # flush() with no destination covers every link.
            await a.flush(timeout=5.0)
            for _ in range(20):
                await asyncio.wait_for(received.get(), 5.0)
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_flush_timeout_reports_queue_depth(self):
        async def scenario():
            a = AsyncTcpNetwork("a", max_queue=8)
            await a.start()
            from repro.runtime.launch import free_port
            a.add_peer("b", "127.0.0.1", free_port())  # never connects
            a.send("a", "b", b"stuck")
            with pytest.raises(NetworkError, match="flush timed out"):
                await a.flush("b", timeout=0.2)
            await a.stop()

        asyncio.run(scenario())

    def test_wait_writable_hysteresis(self):
        async def scenario():
            # high=3, low=1: credit is lost when the queue reaches 3 and
            # only returns once it has drained back down to 1 — a stalled
            # sender resumes into bulk headroom, not a single free slot.
            a = AsyncTcpNetwork("a", max_queue=4)
            await a.start()
            from repro.runtime.launch import free_port
            port = free_port()
            a.add_peer("b", "127.0.0.1", port)
            await a.wait_writable("b")  # plenty of credit while empty
            for index in range(3):
                a.send("a", "b", f"f{index}".encode())
            link = a._links["b"]
            assert not link.writable.is_set()
            with pytest.raises(NetworkError, match="no send credit"):
                await a.wait_writable("b", timeout=0.2)

            b = AsyncTcpNetwork("b", port=port)
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            await b.start()
            await a.wait_writable("b", timeout=5.0)  # drained → credit back
            assert link.queue.qsize() <= 1
            # Unknown destinations have no queue to exert pressure.
            await a.wait_writable("nobody", timeout=0.1)
            await a.stop()
            await b.stop()

        asyncio.run(scenario())
