"""Runtime transport: the wall-clock scheduler shim and AsyncTcpNetwork.

Socket tests are ``live``-marked (deselect with ``-m "not live"`` where
loopback networking is unavailable); the wall-clock scheduler tests are
plain unit tests.
"""

import asyncio

import pytest

from repro.errors import NetworkError, SimulationError
from repro.runtime.messages import Echo
from repro.runtime.transport import AsyncTcpNetwork
from repro.runtime.wallclock import WallClockScheduler


class TestWallClockScheduler:
    def test_now_advances_with_real_time(self):
        scheduler = WallClockScheduler()
        first = scheduler.now
        assert first >= 0.0
        assert scheduler.now >= first
        assert scheduler.clock.now >= first  # .clock shim for DES code

    def test_zero_delay_runs_inline(self):
        scheduler = WallClockScheduler()
        ran = []
        scheduler.call_after(0, lambda: ran.append(True))
        # No event loop involved: the DES contract is that zero-delay
        # events complete before control returns.
        assert ran == [True]
        assert scheduler.events_processed == 1

    def test_negative_delay_rejected(self):
        scheduler = WallClockScheduler()
        with pytest.raises(SimulationError):
            scheduler.call_after(-1, lambda: None)
        with pytest.raises(SimulationError):
            scheduler.call_at(scheduler.now - 10, lambda: None)

    def test_positive_delay_fires_on_loop(self):
        async def scenario():
            scheduler = WallClockScheduler()
            ran = asyncio.Event()
            scheduler.call_after(0.01, ran.set)
            await asyncio.wait_for(ran.wait(), 2.0)

        asyncio.run(scenario())

    def test_cancelled_timer_never_fires(self):
        async def scenario():
            scheduler = WallClockScheduler()
            ran = []
            handle = scheduler.call_after(0.01, lambda: ran.append(True))
            handle.cancel()
            await asyncio.sleep(0.05)
            assert ran == []
            assert scheduler.events_processed == 0

        asyncio.run(scenario())

    def test_run_is_a_noop(self):
        scheduler = WallClockScheduler()
        scheduler.run()
        scheduler.run_until_idle()
        assert scheduler.step() is False


@pytest.mark.live
class TestAsyncTcpNetwork:
    def _pair(self):
        """Two transports with a's outbound link dialled to b."""
        a = AsyncTcpNetwork("a")
        b = AsyncTcpNetwork("b")
        return a, b

    def test_envelope_crosses_a_real_socket(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.send("a", "b", b"sealed-bytes")
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.sender == "a"
            assert message.destination == "b"
            assert message.payload == b"sealed-bytes"
            assert message.size > len(b"sealed-bytes")  # framing overhead
            assert a.messages_sent == 1
            assert b.frames_received == 1
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_non_bytes_payload_rides_nested_frame(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            a.add_peer("b", b.host, b.port)
            a.send("a", "b", {"amount": 7, "ids": (1, 2)})
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.payload == {"amount": 7, "ids": (1, 2)}
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_unencodable_payload_rejected(self):
        async def scenario():
            a, _ = self._pair()
            await a.start()
            with pytest.raises(NetworkError, match="no wire encoding"):
                a.send("a", "b", object())
            await a.stop()

        asyncio.run(scenario())

    def test_reconnect_with_backoff_when_peer_starts_late(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            # Dial before b exists: the link must retry, not die.
            from repro.runtime.launch import free_port
            port = free_port()
            a.add_peer("b", "127.0.0.1", port)
            a.send("a", "b", b"early")  # queued while dialling
            await asyncio.sleep(0.2)
            assert not a._links["b"].connected.is_set()
            b.port = port
            await b.start()
            received = asyncio.Queue()
            b.register("b", received.put_nowait)
            await a.wait_connected("b", 5.0)
            message = await asyncio.wait_for(received.get(), 5.0)
            assert message.payload == b"early"
            assert a._links["b"].reconnects >= 1
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_bounded_queue_drops_when_full(self):
        async def scenario():
            a = AsyncTcpNetwork("a", max_queue=4)
            await a.start()
            from repro.runtime.launch import free_port
            a.add_peer("b", "127.0.0.1", free_port())  # never connects
            for _ in range(10):
                a.send("a", "b", b"x")
            link = a._links["b"]
            assert link.queue.qsize() == 4
            assert link.drops == 6
            await a.stop()

        asyncio.run(scenario())

    def test_taps_suppress_before_the_wire(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.add_tap(lambda message: False)  # adversary drops everything
            a.send("a", "b", b"never-arrives")
            assert a.messages_sent == 0
            assert a.messages_suppressed == 1
            assert a._links["b"].queue.qsize() == 0
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_control_frames_share_fifo_with_envelopes(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            order = []
            b.register("b", lambda message: order.append(("env",
                                                          message.payload)))
            b.control_handler = lambda obj, peer: order.append(("ctl", obj))
            a.add_peer("b", b.host, b.port)
            await a.wait_connected("b", 5.0)
            a.send("a", "b", b"first")
            a.send_control("b", Echo(seq=1, origin="a"))
            a.send("a", "b", b"second")
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(order) < 3:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert order == [("env", b"first"),
                             ("ctl", Echo(seq=1, origin="a")),
                             ("env", b"second")]
            await a.stop()
            await b.stop()

        asyncio.run(scenario())

    def test_handler_exception_does_not_kill_the_reader(self):
        async def scenario():
            a, b = self._pair()
            await a.start()
            await b.start()
            received = []

            def flaky(message):
                received.append(message.payload)
                if message.payload == b"boom":
                    raise RuntimeError("handler bug")

            b.register("b", flaky)
            a.add_peer("b", b.host, b.port)
            a.send("a", "b", b"boom")
            a.send("a", "b", b"after")
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(received) < 2:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert received == [b"boom", b"after"]
            await a.stop()
            await b.stop()

        asyncio.run(scenario())
