"""Wire codec: lossless round trips for every registered message type.

The property test derives a hypothesis strategy for each class in the
codec registry from its dataclass type hints (with handcrafted strategies
for crypto/blockchain leaves, whose ``__post_init__`` validation rejects
arbitrary field values), then asserts ``decode(encode(m)) == m`` across
the lot — including signatures surviving the trip verbatim.
"""

import dataclasses
import typing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blockchain.script import LockingScript, Witness
from repro.blockchain.transaction import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.core import messages as m
from repro.crypto.ecdsa import Signature
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.multisig import MultisigSpec
from repro.runtime import codec
from repro.runtime import messages as runtime_messages  # noqa: F401 — registers tags 50+
from repro.tee.attestation import Quote

_KEYS = [KeyPair.from_seed(f"codec-test-{i}".encode()) for i in range(4)]

public_keys = st.sampled_from([pair.public for pair in _KEYS])
signatures = st.binary(min_size=32, max_size=32).map(
    lambda digest: _KEYS[0].private.sign(digest)
)
txids = st.binary(min_size=32, max_size=32).map(bytes.hex)
outpoints = st.builds(OutPoint, txid=txids, index=st.integers(0, 3))
addresses = st.text(
    alphabet="0123456789abcdef", min_size=1, max_size=40
)
multisig_specs = st.integers(1, 3).flatmap(
    lambda size: st.builds(
        MultisigSpec,
        threshold=st.integers(1, size),
        public_keys=st.just(tuple(pair.public for pair in _KEYS[:size])),
    )
)
locking_scripts = st.one_of(
    st.builds(LockingScript.pay_to_address, addresses),
    st.builds(LockingScript.pay_to_multisig, multisig_specs),
)
witnesses = st.builds(
    Witness,
    signatures=st.lists(signatures, max_size=2).map(tuple),
    public_key=st.one_of(st.none(), public_keys),
)
tx_outputs = st.builds(
    TxOutput, value=st.integers(0, 2**48), script=locking_scripts
)
tx_inputs = st.builds(TxInput, outpoint=outpoints, witness=witnesses)
transactions = st.one_of(
    # Regular spend: unique outpoints per __post_init__.
    st.builds(
        Transaction,
        inputs=st.lists(tx_inputs, min_size=1, max_size=3,
                        unique_by=lambda i: i.outpoint).map(tuple),
        outputs=st.lists(tx_outputs, min_size=1, max_size=3).map(tuple),
        is_coinbase=st.just(False),
        nonce=st.integers(0, 2**31),
    ),
    # Coinbase: no inputs allowed.
    st.builds(
        Transaction,
        inputs=st.just(()),
        outputs=st.lists(tx_outputs, min_size=1, max_size=2).map(tuple),
        is_coinbase=st.just(True),
        nonce=st.integers(0, 2**31),
    ),
)
quotes = st.builds(
    Quote,
    measurement=st.binary(min_size=32, max_size=32),
    enclave_key=public_keys,
    report_data=st.binary(max_size=40),
    signature=signatures,
)

_LEAVES = {
    int: st.integers(-(2**62), 2**62),
    bool: st.booleans(),
    str: st.text(max_size=16),
    bytes: st.binary(max_size=32),
    float: st.floats(allow_nan=False),
    PublicKey: public_keys,
    Signature: signatures,
    OutPoint: outpoints,
    MultisigSpec: multisig_specs,
    LockingScript: locking_scripts,
    Witness: witnesses,
    TxOutput: tx_outputs,
    TxInput: tx_inputs,
    Transaction: transactions,
    Quote: quotes,
}


def _strategy_for(hint):
    if hint in _LEAVES:
        return _LEAVES[hint]
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(_strategy_for(args[0]), max_size=3).map(tuple)
        return st.tuples(*(_strategy_for(arg) for arg in args))
    if origin is typing.Union:
        options = [st.none() if arg is type(None) else _strategy_for(arg)
                   for arg in args]
        return st.one_of(*options)
    if dataclasses.is_dataclass(hint):
        strategy = _class_strategy(hint)
        _LEAVES[hint] = strategy  # memoise (PathDescriptor nests widely)
        return strategy
    raise TypeError(f"no strategy for type hint {hint!r}")


def _class_strategy(cls):
    if cls in _LEAVES:
        return _LEAVES[cls]
    hints = typing.get_type_hints(cls)
    return st.builds(cls, **{
        field.name: _strategy_for(hints[field.name])
        for field in dataclasses.fields(cls)
    })


# Every registered type except SignedMessage (its ``body: Any`` field gets
# a dedicated test below with real signatures over real message bodies).
REGISTERED = [cls for cls in codec.registered_types()
              if cls is not m.SignedMessage]


@pytest.mark.parametrize("cls", REGISTERED, ids=lambda cls: cls.__name__)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_registered_type_round_trips(cls, data):
    original = data.draw(_class_strategy(cls))
    encoded = codec.encode(original)
    decoded = codec.decode(encoded)
    assert decoded == original
    assert type(decoded) is cls


_bodies = st.one_of(
    st.builds(m.Paid, channel_id=st.text(max_size=8),
              amount=st.integers(1, 10**9), sequence=st.integers(0, 10**6),
              batch_count=st.integers(1, 100)),
    st.builds(m.NewChannelAck, channel_id=st.text(max_size=8),
              my_address=addresses, remote_address=addresses),
    st.builds(m.SettleNotify, channel_id=st.text(max_size=8),
              settlement_txid=txids),
)


@settings(max_examples=50, deadline=None)
@given(body=_bodies, signer=st.sampled_from(_KEYS))
def test_signed_message_round_trips_and_verifies(body, signer):
    signed = m.SignedMessage.create(body, signer.private)
    decoded = codec.decode(codec.encode(signed))
    assert decoded == signed
    assert decoded.body == body
    decoded.verify(expected_sender=signer.public)  # raises on failure


class TestCodecFraming:
    def test_bad_magic_rejected(self):
        with pytest.raises(codec.CodecError, match="magic"):
            codec.decode(b"NOPE" + codec.encode(1)[4:])

    def test_unsupported_version_rejected(self):
        frame = bytearray(codec.encode(1))
        frame[3] = 99
        with pytest.raises(codec.CodecError, match="version"):
            codec.decode(bytes(frame))

    def test_truncated_frame_rejected(self):
        frame = codec.encode([1, 2, 3, "abcdef"])
        with pytest.raises(codec.CodecError, match="truncated"):
            codec.decode(frame[:-3])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(codec.CodecError, match="trailing"):
            codec.decode(codec.encode(7) + b"\x00")

    def test_unknown_tag_rejected(self):
        # version-2 layout: flags byte (0 = no header) before the value.
        frame = codec.MAGIC + bytes([codec.VERSION, 0x00, 0x10, 0x7F])
        with pytest.raises(codec.CodecError, match="unknown wire tag"):
            codec.decode(frame)

    def test_unencodable_object_raises(self):
        with pytest.raises(codec.CodecError, match="no wire encoding"):
            codec.encode(object())

    def test_encodable_and_size_helpers(self):
        assert codec.encodable({"a": (1, 2.5, None, True)})
        assert not codec.encodable(object())
        assert codec.encoded_size(object()) is None
        assert codec.encoded_size(b"x" * 100) == len(codec.encode(b"x" * 100))

    @given(value=st.integers(-(2**200), 2**200))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_precision_ints(self, value):
        assert codec.decode(codec.encode(value)) == value

    def test_bool_and_int_stay_distinct(self):
        assert codec.decode(codec.encode(True)) is True
        assert codec.decode(codec.encode(1)) == 1
        assert codec.decode(codec.encode(1)) is not True

    def test_nested_containers(self):
        value = {"k": [(1, b"\x00"), (2, None)], "nested": {"deep": (3.5,)}}
        assert codec.decode(codec.encode(value)) == value


# ---------------------------------------------------------------------------
# Version-2 trace header
# ---------------------------------------------------------------------------

from repro.obs import NO_TRACE  # noqa: E402
from repro.obs.context import TraceContext  # noqa: E402


@dataclasses.dataclass(frozen=True)
class _GrownSchema:
    """Test-only schema that grew a defaulted field sorting last."""

    x: int
    zz_added: float = 0.0


codec.register_dataclass(99, _GrownSchema)  # tag 99: test block, never shipped


class TestTraceHeader:
    def test_traced_frame_round_trips(self):
        context = TraceContext(trace_id="a" * 16, span_id="b" * 16,
                               parent_id="c" * 16)
        frame = codec.encode({"amount": 7}, trace=context)
        assert frame[:5] == codec.MAGIC + bytes([codec.VERSION, 0x01])
        value, decoded = codec.decode_with_trace(frame)
        assert value == {"amount": 7}
        assert decoded == context
        # decode() drops the header but still accepts the frame.
        assert codec.decode(frame) == {"amount": 7}

    def test_untraced_frame_prefix_is_constant_and_context_none(self):
        frame = codec.encode([1, 2])
        assert frame[:5] == codec.MAGIC + bytes([codec.VERSION, 0x00])
        value, context = codec.decode_with_trace(frame)
        assert value == [1, 2]
        assert context is None

    def test_root_context_empty_parent_survives(self):
        root = TraceContext.root()
        assert root.parent_id == ""
        _, decoded = codec.decode_with_trace(codec.encode(0, trace=root))
        assert decoded == root

    def test_version1_frame_still_decodes(self):
        # A v1 frame is MAGIC ‖ 0x01 ‖ value — no flags byte at all.
        body = codec.encode("hello")[5:]
        v1 = codec.MAGIC + bytes([1]) + body
        value, context = codec.decode_with_trace(v1)
        assert value == "hello"
        assert context is None

    def test_unknown_header_flags_rejected(self):
        frame = codec.MAGIC + bytes([codec.VERSION, 0x02]) + codec.encode(0)[5:]
        with pytest.raises(codec.CodecError, match="header flags"):
            codec.decode(frame)

    def test_empty_trace_id_decodes_to_no_context(self):
        # Three zero-length header strings: a peer that set the flag but
        # carried nothing; from_fields treats it as untraced.
        frame = (codec.MAGIC + bytes([codec.VERSION, 0x01])
                 + b"\x00\x00\x00" + codec.encode(5)[5:])
        value, context = codec.decode_with_trace(frame)
        assert value == 5
        assert context is None

    def test_trailing_defaulted_fields_may_be_omitted(self):
        # The shape an older peer emits: field count 1, no zz_added bytes.
        old_frame = (codec.MAGIC + bytes([codec.VERSION, 0x00])
                     + bytes([0x10, 99]) + bytes([1])  # tag, count
                     + bytes([0x03, 10]))              # int 5 (zigzag)
        assert codec.decode(old_frame) == _GrownSchema(5, 0.0)
        # But a *required* field can never be omitted.
        empty = (codec.MAGIC + bytes([codec.VERSION, 0x00])
                 + bytes([0x10, 99]) + bytes([0]))
        with pytest.raises(codec.CodecError, match="required"):
            codec.decode(empty)

    def test_handshake_timestamps_ride_as_trailing_defaults(self):
        # Hello/HelloAck grew t_* timestamp fields and then the topo_key
        # gossip-key field, all sorting last, so the registry must treat
        # them as omittable.
        for cls, grown in ((runtime_messages.Hello,
                            {"t_sent", "topo_key"}),
                           (runtime_messages.HelloAck,
                            {"t_echo", "t_received", "t_sent",
                             "topo_key"})):
            names = sorted(f.name for f in dataclasses.fields(cls))
            assert set(names[-len(grown):]) == grown, cls.__name__

    def test_disabled_tracing_allocates_no_context_objects(self, monkeypatch):
        # The acceptance guard: with tracing off, the wire path must not
        # construct a single TraceContext — encode uses the precomputed
        # plain prefix and decode returns None without touching the class.
        constructed = []
        original_new = TraceContext.__new__

        def counting_new(cls, *args, **kwargs):
            constructed.append(1)
            return original_new(cls)

        monkeypatch.setattr(TraceContext, "__new__", counting_new)
        assert NO_TRACE.context is None
        for index in range(64):
            frame = codec.encode({"seq": index}, trace=NO_TRACE.context)
            assert frame[:5] == codec.MAGIC + bytes([codec.VERSION, 0x00])
            value, context = codec.decode_with_trace(frame)
            assert value == {"seq": index} and context is None
        assert constructed == []
