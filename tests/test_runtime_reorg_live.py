"""Live two-daemon fork: a settlement orphaned by a reorg must survive.

The acceptance test for chain realism in the runtime: two daemons
partition (blackholed links), both keep mining — a genuine fork, now that
blocks gossip as full bodies instead of blind local re-mines.  The side
carrying a *fee-paying settlement* loses a depth-2 reorg when the
partition heals; the evicted settlement must return to the mempool,
re-gossip automatically, and confirm on the winning branch — with every
unit of value, fees included, accounted for at the end.
"""

import time

import pytest

from repro.runtime.launch import launch_network

GENESIS = 200_000
DEPOSIT = 60_000
ROUNDS = 20
A_TO_B, B_TO_A = 7, 3
FEERATE = 0.25  # value per vsize byte; both endpoints must agree

ALICE_CHANNEL = DEPOSIT - ROUNDS * A_TO_B + ROUNDS * B_TO_A
BOB_CHANNEL = DEPOSIT + ROUNDS * A_TO_B - ROUNDS * B_TO_A


def _poll(predicate, timeout=20.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(interval)


@pytest.mark.live
def test_settlement_survives_depth_two_reorg():
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    alice = handles["alice"].control
    bob = handles["bob"].control
    try:
        channel_id = alice.call("open-channel", peer="bob")["channel_id"]
        for client, peer in ((alice, "bob"), (bob, "alice")):
            deposit = client.call("deposit", value=DEPOSIT)
            client.call("approve-associate", peer=peer,
                        channel_id=channel_id, txid=deposit["txid"])
            assert client.call("fee-policy", feerate=FEERATE)["feerate"] == \
                FEERATE

        def funded(client):
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == DEPOSIT
                    and snapshot["remote_balance"] == DEPOSIT)

        _poll(lambda: funded(alice) and funded(bob),
              what="both deposits visible on both daemons")

        for _ in range(ROUNDS):
            alice.call("pay", channel_id=channel_id, amount=A_TO_B)
            bob.call("pay", channel_id=channel_id, amount=B_TO_A)

        def balanced(client, mine, theirs):
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == mine
                    and snapshot["remote_balance"] == theirs)

        _poll(lambda: balanced(alice, ALICE_CHANNEL, BOB_CHANNEL)
              and balanced(bob, BOB_CHANNEL, ALICE_CHANNEL),
              what="channel balances to converge")

        # Partition: both sides drop all frames toward the other.
        alice.call("fault", action="blackhole", peer="bob")
        bob.call("fault", action="blackhole", peer="alice")

        # Alice settles into her own branch and extends it once more; her
        # two blocks (settlement + empty) will both be unwound.
        settlement = alice.call("settle", channel_id=channel_id)
        assert settlement["txid"] is not None and not settlement["offchain"]
        alice.call("mine")
        height_alice = alice.call("stats")["chain"]["height"]

        # Bob, never having seen the settlement, out-mines her by one.
        for _ in range(3):
            bob.call("mine")
        stats_bob = bob.call("stats")["chain"]
        assert stats_bob["height"] == height_alice + 1
        assert stats_bob["tip"] != alice.call("stats")["chain"]["tip"]

        # Heal and reconcile: bob's longer branch wins on alice —
        # a depth-2 reorg that evicts the settlement.
        alice.call("fault", action="heal", peer="bob")
        bob.call("fault", action="heal", peer="alice")
        bob.call("chain-sync")

        _poll(lambda: alice.call("stats")["chain"]["reorgs"] >= 1,
              what="alice to reorganise onto bob's branch")
        stats = alice.call("stats")["chain"]
        assert stats["orphaned_txs"] >= 1

        # The evicted settlement re-gossips into bob's mempool; bob mines
        # it on the winning branch.
        _poll(lambda: bob.call("stats")["chain"]["mempool"] >= 1,
              what="the orphaned settlement to reach bob's mempool")
        bob.call("mine")

        def converged():
            chain_a = alice.call("stats")["chain"]
            chain_b = bob.call("stats")["chain"]
            return (chain_a["tip"] == chain_b["tip"]
                    and chain_a["mempool"] == chain_b["mempool"] == 0)

        _poll(converged, what="both daemons on one branch, mempools empty")

        # Exact conservation, fees included: the settlement paid a fee,
        # the winning miner (bob) claimed it, nothing vanished.
        fees = alice.call("stats")["chain"]["fees_collected"]
        assert fees > 0
        assert bob.call("stats")["chain"]["fees_collected"] == fees
        balance_a = alice.call("balance")["onchain"]
        balance_b = bob.call("balance")["onchain"]
        assert balance_a + balance_b == 2 * GENESIS
        # The payouts carry the fee: alice nets her channel balance minus
        # her fee share, bob his plus the whole fee as the miner.
        assert balance_a <= GENESIS - DEPOSIT + ALICE_CHANNEL
        assert balance_a >= GENESIS - DEPOSIT + ALICE_CHANNEL - fees
        assert balance_b >= GENESIS - DEPOSIT + BOB_CHANNEL
    finally:
        for handle in handles.values():
            handle.shutdown()
