"""The typed control-command registry and its structured error codes.

Satellite contract for the control-API redesign: every daemon command is
declared exactly once, dispatch is registry-driven (no if/elif chain
anywhere), unknown commands/parameters fail with stable ``code`` fields,
and the ``help`` surface is generated — so it cannot drift from what the
daemon actually accepts.
"""

import asyncio
import inspect

import pytest

from repro import errors
from repro.runtime.daemon import COMMANDS, NodeDaemon
from repro.runtime.registry import (
    CommandError,
    CommandRegistry,
    Param,
    code_for_exception,
)


# ---------------------------------------------------------------------------
# Registry mechanics, on a toy command set
# ---------------------------------------------------------------------------

REGISTRY = CommandRegistry()


class Toy:
    @REGISTRY.command("greet", Param("name"),
                      Param("times", int, required=False, default=1),
                      doc="Say hello.")
    async def _cmd_greet(self, name, times):
        return {"greeting": " ".join([f"hi {name}"] * times)}

    @REGISTRY.command("poke")
    async def _cmd_poke(self):
        """First docstring line becomes the help text."""
        return {}


def dispatch(request):
    return asyncio.run(REGISTRY.dispatch(Toy(), request))


class TestDispatch:
    def test_happy_path_with_default(self):
        assert dispatch({"cmd": "greet", "name": "bob"}) == {
            "greeting": "hi bob"}

    def test_string_int_coerced(self):
        result = dispatch({"cmd": "greet", "name": "bob", "times": "2"})
        assert result == {"greeting": "hi bob hi bob"}

    def test_unknown_command_code(self):
        with pytest.raises(CommandError) as excinfo:
            dispatch({"cmd": "frob"})
        assert excinfo.value.code == "unknown_command"
        assert "greet" in str(excinfo.value)  # lists what exists

    def test_missing_required_param(self):
        with pytest.raises(CommandError) as excinfo:
            dispatch({"cmd": "greet"})
        assert excinfo.value.code == "bad_request"

    def test_unknown_param_rejected(self):
        with pytest.raises(CommandError) as excinfo:
            dispatch({"cmd": "greet", "name": "bob", "shout": True})
        assert excinfo.value.code == "bad_request"
        assert "shout" in str(excinfo.value)

    def test_type_mismatch_rejected(self):
        with pytest.raises(CommandError) as excinfo:
            dispatch({"cmd": "greet", "name": "bob", "times": "soon"})
        assert excinfo.value.code == "bad_request"
        # Booleans are ints in Python but not in a control protocol.
        with pytest.raises(CommandError):
            dispatch({"cmd": "greet", "name": "bob", "times": True})

    def test_missing_cmd_field(self):
        with pytest.raises(CommandError) as excinfo:
            dispatch({"name": "bob"})
        assert excinfo.value.code == "bad_request"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(errors.ReproError):
            REGISTRY.command("greet")(lambda self: None)

    def test_help_is_generated(self):
        table = {row["cmd"]: row for row in REGISTRY.help_table()}
        assert table["greet"]["args"] == "name=str [times=int]"
        assert table["greet"]["doc"] == "Say hello."
        # Docstring fallback when no doc= was given.
        assert table["poke"]["doc"].startswith("First docstring line")
        text = REGISTRY.help_text()
        assert "greet" in text and "poke" in text


class TestErrorCodes:
    @pytest.mark.parametrize("exc,code", [
        (errors.EnclaveCrashed("dead"), "enclave_crashed"),
        (errors.InsufficientFunds("broke"), "insufficient_funds"),
        (errors.SettlementError("locked"), "settlement_error"),
        (errors.ChannelNotEstablished("nope"), "not_connected"),
        (asyncio.TimeoutError(), "timeout"),
        (CommandError("x", code="custom_thing"), "custom_thing"),
        (ValueError("surprise"), "internal"),
    ])
    def test_exception_mapping(self, exc, code):
        assert code_for_exception(exc) == code

    def test_subclass_resolves_most_specific_first(self):
        # EnclaveCrashed subclasses TEEError; the table must not collapse
        # it into the generic tee_error bucket.
        assert issubclass(errors.EnclaveCrashed, errors.TEEError)
        assert code_for_exception(errors.EnclaveCrashed("x")) != "tee_error"


# ---------------------------------------------------------------------------
# The daemon's real command table
# ---------------------------------------------------------------------------

class TestDaemonCommands:
    def test_every_command_binds_to_a_handler(self):
        for spec in COMMANDS:
            handler = getattr(NodeDaemon, spec.attribute, None)
            assert handler is not None, f"{spec.name} has no handler"
            assert inspect.iscoroutinefunction(handler)

    def test_expected_verbs_present(self):
        names = {spec.name for spec in COMMANDS}
        assert {"ping", "help", "connect", "open-channel", "deposit",
                "approve-associate", "pay", "settle", "eject-all",
                "fault", "mine", "balance", "channel", "stats",
                "metrics", "shutdown"} <= names

    def test_no_dispatch_chain_left(self):
        # The api_redesign contract: dispatch is the registry, full stop.
        assert not hasattr(NodeDaemon, "_dispatch_command")
        source = inspect.getsource(NodeDaemon._serve_control)
        assert "elif" not in source

    def test_registry_params_match_handler_signatures(self):
        """Every declared param must be a real keyword of its handler, so
        validate() can never produce kwargs the handler rejects."""
        for spec in COMMANDS:
            handler = getattr(NodeDaemon, spec.attribute)
            accepted = set(inspect.signature(handler).parameters) - {"self"}
            declared = {param.name for param in spec.params}
            assert declared <= accepted, (
                f"{spec.name}: declares {declared - accepted} "
                f"not accepted by {spec.attribute}"
            )
