"""Gossip-plane tests: flooding under faults, replay/forgery rejection.

An in-memory flood mesh drives real :class:`~repro.routing.GossipEngine`
instances over an adversarial "network" scripted by a seeded
:class:`~repro.faults.schedule.FaultSchedule` — the same schedule object
the DES injector consumes, interpreted here for control-plane frames:
LOSS drops each hop-delivery with its probability, PARTITION blackholes
a directed link, HEAL lifts it.  After the faults heal, the anti-entropy
backlog exchange (what live daemons run on every handshake) must bring
every view to convergence.
"""

import dataclasses

import pytest

from repro.crypto.keys import KeyPair
from repro.core.messages import SignedMessage
from repro.errors import ReproError
from repro.faults.schedule import FaultKind, FaultSchedule
from repro.routing import (
    ChannelAnnounce,
    ChannelUpdate,
    GossipEngine,
    RoutePlanner,
)


def _engine(name):
    return GossipEngine(name, KeyPair.from_seed(f"gossip:{name}".encode()))


class FloodMesh:
    """Real engines, scripted network: flood with faults, then heal."""

    def __init__(self, links, schedule=None):
        schedule = schedule if schedule is not None else FaultSchedule()
        self.peers = {}
        for a, b in links:
            self.peers.setdefault(a, set()).add(b)
            self.peers.setdefault(b, set()).add(a)
        self.engines = {name: _engine(name) for name in self.peers}
        self.rng = schedule.rng()
        self.blocked = set()   # directed links currently partitioned
        self.loss = {}         # directed link -> drop probability
        self.healable = []     # HEAL specs applied by heal()
        for spec in schedule:
            if spec.kind is FaultKind.PARTITION:
                self.blocked.add(spec.link())
            elif spec.kind is FaultKind.LOSS:
                self.loss[spec.link()] = spec.probability
            elif spec.kind is FaultKind.HEAL:
                self.healable.append(spec.link())
            else:
                raise ValueError(f"mesh cannot script {spec.kind}")

    def heal(self):
        """Apply the schedule's HEAL specs and clear message loss."""
        for link in self.healable:
            self.blocked.discard(link)
        self.loss.clear()

    def _delivered(self, sender, receiver):
        link = (sender, receiver)
        if link in self.blocked:
            return False
        probability = self.loss.get(link, 0.0)
        return not (probability and self.rng.random() < probability)

    def flood(self, origin, frame):
        """BFS flood from ``origin``: fresh frames re-flood, per the
        engine's handle() contract."""
        queue = [(origin, peer, frame) for peer in sorted(self.peers[origin])]
        while queue:
            sender, receiver, signed = queue.pop(0)
            if not self._delivered(sender, receiver):
                continue
            if self.engines[receiver].handle(signed):
                queue.extend((receiver, peer, signed)
                             for peer in sorted(self.peers[receiver])
                             if peer != sender)

    def announce_all(self, capacity=100):
        """Every endpoint announces its half of every adjacent channel."""
        for name in sorted(self.peers):
            engine = self.engines[name]
            for peer in sorted(self.peers[name]):
                cid = f"{min(name, peer)}--{max(name, peer)}"
                self.flood(name, engine.announce(cid, peer, capacity))

    def anti_entropy(self):
        """The handshake-time backlog exchange, over every live link."""
        for name in sorted(self.peers):
            for peer in sorted(self.peers[name]):
                if not self._delivered(name, peer):
                    continue
                for frame in self.engines[name].backlog():
                    if self.engines[peer].handle(frame):
                        self.flood(peer, frame)

    def views(self):
        return {name: frozenset(engine.view.edges())
                for name, engine in self.engines.items()}


RING = [("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n3", "n4"),
        ("n4", "n0")]


class TestFlooding:
    def test_clean_flood_converges(self):
        mesh = FloodMesh(RING)
        mesh.announce_all()
        views = mesh.views()
        reference = views["n0"]
        # 5 channels, both directions routable once both halves land.
        assert len(reference) == 10
        assert all(view == reference for view in views.values())

    def test_flood_under_loss_and_partition_converges_after_heal(self):
        schedule = (FaultSchedule(seed=42)
                    .loss("n1", "n2", 0.6).loss("n2", "n1", 0.6)
                    .partition("n3", "n4", bidirectional=True)
                    .heal("n3", "n4").heal("n4", "n3"))
        mesh = FloodMesh(RING, schedule)
        mesh.announce_all()
        # The adversary must actually have bitten: some view is short.
        assert any(len(view) < 10 for view in mesh.views().values())
        mesh.heal()
        mesh.anti_entropy()
        views = mesh.views()
        reference = views["n0"]
        assert len(reference) == 10
        assert all(view == reference for view in views.values())

    def test_convergence_is_seed_deterministic(self):
        def run(seed):
            schedule = (FaultSchedule(seed=seed)
                        .loss("n0", "n1", 0.5).loss("n1", "n0", 0.5))
            mesh = FloodMesh(RING, schedule)
            mesh.announce_all()
            return {name: engine.stats()["announces_applied"]
                    for name, engine in mesh.engines.items()}

        assert run(7) == run(7)


class TestRejection:
    def test_replayed_frame_rejected_as_stale(self):
        alice, bob = _engine("alice"), _engine("bob")
        frame = alice.announce("ab", "bob", 100)
        assert bob.handle(frame) is True
        assert bob.handle(frame) is False  # exact replay
        assert bob.stats()["updates_rejected_stale"] == 1

    def test_stale_update_rejected(self):
        alice, bob = _engine("alice"), _engine("bob")
        old = alice.announce("ab", "bob", 100)          # seq 0
        new = alice.update("ab", "bob", 50)             # seq 1
        assert bob.handle(new) is True
        assert bob.handle(old) is False                 # reordered arrival
        assert bob.stats()["updates_rejected_stale"] == 1
        # The fresher balance survived.
        assert bob.view.half("alice", "ab").capacity == 50

    def test_forged_signature_rejected(self):
        alice, bob = _engine("alice"), _engine("bob")
        frame = alice.announce("ab", "bob", 100)
        tampered = dataclasses.replace(
            frame, body=dataclasses.replace(frame.body, capacity=10**9))
        assert bob.handle(tampered) is False
        assert bob.stats()["rejected_sig"] == 1

    def test_key_substitution_after_pin_rejected(self):
        alice, bob = _engine("alice"), _engine("bob")
        # bob pinned alice's real key (as the handshake does).
        bob.view.bind_key("alice", alice.keypair.public.to_bytes(),
                          pinned=True)
        mallory = GossipEngine("alice",
                               KeyPair.from_seed(b"mallory"))  # stolen name
        assert bob.handle(mallory.announce("fake", "bob", 10**9)) is False
        assert bob.stats()["rejected_key"] == 1
        # And a pin arriving after TOFU evicts the impostor's key.
        carol = _engine("carol")
        assert carol.handle(mallory.announce("fake2", "bob", 1)) is True
        assert carol.view.bind_key(
            "alice", alice.keypair.public.to_bytes(), pinned=True) is True
        assert carol.handle(mallory.update("fake2", "bob", 2)) is False

    def test_malformed_body_rejected(self):
        alice, bob = _engine("alice"), _engine("bob")
        bad = ChannelAnnounce(channel_id="ab", origin="alice",
                              peer="alice", capacity=1, seq=0)
        frame = SignedMessage.create(bad, alice.keypair.private)
        assert bob.handle(frame) is False
        assert bob.stats()["rejected_malformed"] == 1
        with pytest.raises(ReproError):
            alice.announce("", "bob", 1)  # local emit validates too

    def test_non_gossip_body_raises(self):
        alice, bob = _engine("alice"), _engine("bob")
        frame = SignedMessage.create(
            ChannelUpdate(channel_id="ab", origin="alice", peer="bob",
                          capacity=1, seq=0), alice.keypair.private)
        bob.handle(frame)
        with pytest.raises(ReproError):
            bob.handle(dataclasses.replace(frame, body="not gossip"))


class TestTrustModel:
    def test_single_liar_cannot_conjure_a_routable_edge(self):
        # DESIGN.md §13: a lying gossiper can announce a channel to any
        # honest node, but the edge never becomes routable because the
        # honest node never co-announces its half.
        mesh = FloodMesh(RING)
        mesh.announce_all()
        liar = mesh.engines["n0"]
        mesh.flood("n0", liar.announce("phantom", "n3", 10**12))
        for engine in mesh.engines.values():
            for edge in engine.view.edges():
                assert edge.channel_id != "phantom"
        # And no planner shortcut appears: n1→n3 still walks the ring
        # instead of hopping the phantom n0--n3 channel.
        planner = RoutePlanner(mesh.engines["n1"].view)
        assert planner.find_route("n1", "n3") == ["n1", "n2", "n3"]

    def test_disable_update_removes_the_direction(self):
        mesh = FloodMesh(RING)
        mesh.announce_all()
        n0 = mesh.engines["n0"]
        mesh.flood("n0", n0.update("n0--n1", "n1", 0, disabled=True))
        for engine in mesh.engines.values():
            directions = {(e.source, e.target)
                          for e in engine.view.edges()
                          if e.channel_id == "n0--n1"}
            assert directions == {("n1", "n0")}  # reverse half still up
