"""Executable attacks from the paper's threat model (§2.4, §7.1), each
asserted to fail against Teechain — plus the LN contrast attack that
motivates the whole system."""

import pytest

from repro.baselines import LightningChannel
from repro.blockchain import Blockchain, LockingScript
from repro.core.messages import Paid, SignedMessage
from repro.crypto import KeyPair
from repro.errors import (
    AccountFundsError,
    AccountNonceError,
    DoubleSpend,
    LedgerTamperError,
    MessageAuthenticationError,
    PaymentError,
)
from repro.hub.messages import AccountDeposit, AccountPay, AccountWithdraw
from repro.network import NetworkAdversary
from repro.obs import MetricsRegistry, set_metrics
from repro.runtime.registry import code_for_exception
from repro.tee import extract_secrets, fork_enclave


class TestMessageAttacks:
    def test_replayed_payment_rejected(self, open_channel):
        """Replaying a 'paid' message must not credit twice."""
        network, alice, bob, channel = open_channel
        adversary = NetworkAdversary(network.transport)
        adversary.record("alice", "bob")
        alice.pay(channel, 1_000)
        balance_after_one = bob.channel_balance(channel)
        adversary.replay_all()  # secure channel rejects, node logs it
        assert bob.channel_balance(channel) == balance_after_one

    def test_forged_payment_rejected(self, open_channel):
        """An attacker who knows the channel id but not the enclave key
        cannot inject payments."""
        network, alice, bob, channel = open_channel
        mallory = KeyPair.from_seed(b"mallory")
        forged = SignedMessage.create(
            Paid(channel_id=channel, amount=40_000, sequence=1),
            mallory.private,
        )
        with pytest.raises(MessageAuthenticationError):
            forged.verify(expected_sender=alice.enclave.public_key)
        # On the wire it cannot even be sealed without the channel keys;
        # injecting garbage bytes fails authentication outright.
        with pytest.raises(MessageAuthenticationError):
            bob.program.handle_envelope("alice", b"\x00" * 64)

    def test_out_of_order_payment_sequence_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        state = alice.program.channels[channel]
        # Craft a payment with a skipped sequence number, properly signed
        # and sealed (a compromised host reordering enclave output).
        secure = alice.program.secure_channels[state.remote_key.to_bytes()]
        signed = SignedMessage.create(
            Paid(channel_id=channel, amount=1, sequence=5),
            alice.enclave.identity.private,
        )
        envelope = secure.seal_message(signed)
        with pytest.raises(PaymentError):
            bob.program.handle_envelope("alice", envelope)


class TestTEECompromise:
    def test_forked_enclave_cannot_double_settle(self, open_channel):
        """State forking: settle once from the fork, once from the
        original — the chain accepts only one."""
        network, alice, bob, channel = open_channel
        alice.pay(channel, 10_000)
        fork = fork_enclave(alice.enclave, "fork")
        alice.pay(channel, 10_000)
        fork_settlement = fork.ecall("unilateral_settlement", channel)
        network.chain.submit(fork_settlement)
        network.mine()
        real_settlement = alice._ecall("unilateral_settlement", channel)
        with pytest.raises(DoubleSpend):
            network.chain.submit(real_settlement)
        # Even under the fork, bob's on-chain payout reflects at least the
        # pre-fork payments — the fork cannot *decrease* what bob already
        # received before the snapshot.
        assert network.chain.balance(bob.address) >= 100_000 - 30_000 + 10_000

    def test_extracted_keys_cannot_beat_committee(self, network):
        """A 2-of-3 committee deposit survives full compromise of the
        primary: the stolen key alone is below threshold."""
        alice = network.create_node("alice", funds=100_000)
        bob = network.create_node("bob", funds=100_000)
        alice.attach_committee(backups=2, threshold=2)
        channel = alice.open_channel(bob)
        deposit = alice.create_deposit(40_000)
        alice.approve_and_associate(bob, deposit, channel)
        secrets = extract_secrets(alice.enclave)
        alice.pay(channel, 10_000)
        # Attacker crafts a theft spend and signs with every stolen key.
        from repro.blockchain.transaction import Transaction, TxInput, TxOutput
        from repro.blockchain.script import Witness
        theft_unsigned = Transaction(
            inputs=(TxInput(deposit.outpoint),),
            outputs=(TxOutput(40_000,
                              LockingScript.pay_to_address("btcthief")),),
        )
        digest = theft_unsigned.sighash()
        stolen_keys = list(secrets.program_state["deposit_keys"].values())
        signatures = tuple(key.sign(digest) for key in stolen_keys)
        theft = theft_unsigned.with_witnesses([Witness(signatures=signatures)])
        from repro.errors import InvalidTransaction
        with pytest.raises(InvalidTransaction):
            network.chain.submit(theft)  # 1 valid signature < threshold 2


class TestHubAccountAttacks:
    """RouTEE-model attacks on the account hub (DESIGN.md §12): the
    host and control plane are untrusted couriers, so every forged,
    replayed, or tampered request must die inside the enclave with a
    stable error code and a counted rejection."""

    @pytest.fixture
    def hub(self, open_channel):
        """Alice's enclave as the hub (50k channel backing), one funded
        client account, and a fresh metrics registry."""
        network, alice, bob, channel = open_channel
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        client = KeyPair.from_seed(b"hub-client")
        alice.enclave.ecall(
            "hub_handle_request",
            SignedMessage.create(AccountDeposit(client.public, 10_000, 1),
                                 client.private))
        yield alice, client, registry
        set_metrics(previous)

    def test_forged_signature_rejected(self, hub):
        """A request signed by anyone but the named account holder is
        refused before any state is read."""
        alice, client, registry = hub
        mallory = KeyPair.from_seed(b"hub-mallory")
        forged = SignedMessage.create(
            AccountWithdraw(client.public, 10_000, 2), mallory.private)
        with pytest.raises(MessageAuthenticationError) as excinfo:
            alice.enclave.ecall("hub_handle_request", forged)
        assert code_for_exception(excinfo.value) == "authentication_failed"
        assert registry.counter("hub.rejected_sigs").value == 1
        assert alice.program.hub.balances[client.public.to_bytes()] == 10_000

    def test_replayed_nonce_rejected(self, hub):
        """Resubmitting an accepted request (or any nonce at or below
        the last accepted one) is a no-op with a stable code."""
        alice, client, registry = hub
        replay = SignedMessage.create(
            AccountDeposit(client.public, 10_000, 1), client.private)
        with pytest.raises(AccountNonceError) as excinfo:
            alice.enclave.ecall("hub_handle_request", replay)
        assert code_for_exception(excinfo.value) == "stale_nonce"
        assert registry.counter("hub.rejected_nonces").value == 1
        assert alice.program.hub.deposited_total == 10_000  # not doubled

    def test_host_balance_tamper_detected(self, hub):
        """A host that edits the ledger out-of-band is caught by the
        conservation check before the next mutation is applied."""
        alice, client, registry = hub
        alice.program.hub.balances[client.public.to_bytes()] += 5_000
        request = SignedMessage.create(
            AccountDeposit(client.public, 100, 2), client.private)
        with pytest.raises(LedgerTamperError) as excinfo:
            alice.enclave.ecall("hub_handle_request", request)
        assert code_for_exception(excinfo.value) == "ledger_tampered"
        assert registry.counter("hub.rejected_tamper").value == 1

    def test_over_withdraw_rejected(self, hub):
        alice, client, registry = hub
        request = SignedMessage.create(
            AccountWithdraw(client.public, 10_001, 2), client.private)
        with pytest.raises(AccountFundsError) as excinfo:
            alice.enclave.ecall("hub_handle_request", request)
        assert code_for_exception(excinfo.value) == "account_insufficient"
        assert registry.counter("hub.rejected_funds").value == 1
        assert alice.program.hub.balances[client.public.to_bytes()] == 10_000

    def test_spliced_account_key_rejected(self, hub):
        """Mallory cannot spend the victim's balance by naming it in a
        request signed with her own (registered) key."""
        alice, client, registry = hub
        mallory = KeyPair.from_seed(b"hub-mallory")
        alice.enclave.ecall(
            "hub_handle_request",
            SignedMessage.create(AccountDeposit(mallory.public, 1_000, 1),
                                 mallory.private))
        spliced = SignedMessage.create(
            AccountPay(client.public, mallory.public, 9_000, 2),
            mallory.private)
        with pytest.raises(MessageAuthenticationError):
            alice.enclave.ecall("hub_handle_request", spliced)
        assert registry.counter("hub.rejected_sigs").value == 1
        assert alice.program.hub.balances[client.public.to_bytes()] == 10_000


class TestAsynchronyContrast:
    def test_lightning_theft_with_censorship(self):
        """The attack that breaks synchronous payment networks."""
        chain = Blockchain()
        alice = KeyPair.from_seed(b"sync-a")
        bob = KeyPair.from_seed(b"sync-b")
        coinbase = chain.mint(LockingScript.pay_to_address(alice.address()),
                              100_000)
        chain.mine_block()
        channel = LightningChannel(chain, alice, bob, 60_000, 0,
                                   justice_window_blocks=3)
        channel.open([(coinbase.outpoint(0), 100_000)], alice)
        for _ in range(6):
            chain.mine_block()
        stale = channel.current
        channel.pay(from_a=True, amount=20_000)
        channel.broadcast_state(stale)
        for _ in range(5):
            chain.mine_block()  # justice censored past the window
        assert channel.theft_succeeded(stale)

    def test_lightning_justice_in_time(self):
        """With synchrony intact, LN is safe — the contrast baseline."""
        chain = Blockchain()
        alice = KeyPair.from_seed(b"sync-a")
        bob = KeyPair.from_seed(b"sync-b")
        coinbase = chain.mint(LockingScript.pay_to_address(alice.address()),
                              100_000)
        chain.mine_block()
        channel = LightningChannel(chain, alice, bob, 60_000, 0,
                                   justice_window_blocks=3)
        channel.open([(coinbase.outpoint(0), 100_000)], alice)
        for _ in range(6):
            chain.mine_block()
        stale = channel.current
        channel.pay(from_a=True, amount=20_000)
        channel.broadcast_state(stale)
        chain.mine_block()
        justice = channel.justice_transaction(bob, stale)
        chain.submit(justice)
        chain.mine_block()
        assert not channel.theft_succeeded(stale)
        assert chain.balance(bob.address()) == 60_000

    def test_teechain_safe_under_unbounded_write_delay(self, open_channel):
        """The same adversary against Teechain: delay the victim's
        settlement arbitrarily — no deadline exists, funds stay safe."""
        network, alice, bob, channel = open_channel
        alice.pay(channel, 20_000)
        settlement = bob.settle(channel)
        bob.adversary.delay(settlement.txid, extra=86_400.0)  # one day
        for _ in range(20):
            network.mine()  # a day of blocks without bob's settlement
        # No transaction the attacker holds can spend the deposits at
        # stale balances: the only signed settlements are the final one.
        network.run()
        network.mine()
        assert network.chain.contains(settlement.txid)
        bob.assert_balance_correct()
        alice.assert_balance_correct()

    def test_teechain_settlement_survives_eclipse_then_recovery(
            self, open_channel):
        network, alice, bob, channel = open_channel
        alice.pay(channel, 5_000)
        bob.adversary.eclipse()
        settlement = bob.settle(channel)
        network.run()
        network.mine()
        assert not network.chain.contains(settlement.txid)
        # Weeks later the eclipse lifts; the same transaction still works.
        bob.adversary.lift_eclipse()
        bob.client.broadcast(settlement)
        network.run()
        network.mine()
        assert network.chain.contains(settlement.txid)
        bob.assert_balance_correct()
