"""TEE substrate: enclave lifecycle, attestation, monotonic counters,
sealing, and the compromise model."""

import pytest

from repro.crypto import KeyPair
from repro.errors import (
    AttestationError,
    CounterThrottled,
    EnclaveCrashed,
    EnclaveFrozen,
    SealingError,
    TEEError,
)
from repro.tee import (
    AttestationService,
    Enclave,
    EnclaveProgram,
    EnclaveStatus,
    MonotonicCounter,
    MonotonicCounterBank,
    SealingService,
    crash_enclave,
    extract_secrets,
    fork_enclave,
)
from repro.tee.attestation import verify_quote


class EchoProgram(EnclaveProgram):
    PROGRAM_NAME = "echo"
    FREEZE_ALLOWED = ("settle",)

    def __init__(self):
        super().__init__()
        self.counter = 0

    def bump(self):
        self.counter += 1
        return self.counter

    def settle(self):
        return "settled"

    def talk(self, destination):
        self.send(destination, "hello")


class OtherProgram(EnclaveProgram):
    PROGRAM_NAME = "other"


class TestEnclave:
    def test_ecall_dispatch(self):
        enclave = Enclave(EchoProgram())
        assert enclave.ecall("bump") == 1
        assert enclave.ecall("bump") == 2

    def test_unknown_ecall_rejected(self):
        with pytest.raises(TEEError):
            Enclave(EchoProgram()).ecall("nope")

    def test_private_methods_not_callable(self):
        with pytest.raises(TEEError):
            Enclave(EchoProgram()).ecall("_outbox")

    def test_crash_blocks_everything(self):
        enclave = Enclave(EchoProgram())
        crash_enclave(enclave)
        with pytest.raises(EnclaveCrashed):
            enclave.ecall("bump")
        with pytest.raises(EnclaveCrashed):
            enclave.ecall("settle")

    def test_freeze_allows_only_settlement(self):
        enclave = Enclave(EchoProgram())
        enclave.freeze()
        with pytest.raises(EnclaveFrozen):
            enclave.ecall("bump")
        assert enclave.ecall("settle") == "settled"

    def test_freeze_after_crash_rejected(self):
        enclave = Enclave(EchoProgram())
        crash_enclave(enclave)
        with pytest.raises(EnclaveCrashed):
            enclave.freeze()

    def test_measurement_depends_on_program(self):
        assert Enclave(EchoProgram()).measurement != Enclave(
            OtherProgram()).measurement

    def test_measurement_same_for_same_program(self):
        assert Enclave(EchoProgram()).measurement == Enclave(
            EchoProgram()).measurement

    def test_identity_generated_inside(self):
        a = Enclave(EchoProgram())
        b = Enclave(EchoProgram())
        assert a.public_key != b.public_key

    def test_seeded_identity_deterministic(self):
        a = Enclave(EchoProgram(), seed=b"same")
        b = Enclave(EchoProgram(), seed=b"same")
        assert a.public_key == b.public_key

    def test_outbox_drains(self):
        enclave = Enclave(EchoProgram())
        enclave.ecall("talk", "peer")
        messages = enclave.take_outbox()
        assert len(messages) == 1
        assert messages[0].destination == "peer"
        assert enclave.take_outbox() == []


class TestAttestation:
    def test_quote_verifies(self):
        service = AttestationService()
        enclave = Enclave(EchoProgram())
        quote = service.quote(enclave, report_data=b"dh")
        verify_quote(quote, service.root_key, EchoProgram.measurement(),
                     expected_key=enclave.public_key, service=service)

    def test_wrong_measurement_rejected(self):
        service = AttestationService()
        enclave = Enclave(EchoProgram())
        quote = service.quote(enclave)
        with pytest.raises(AttestationError):
            verify_quote(quote, service.root_key, OtherProgram.measurement())

    def test_wrong_key_rejected(self):
        service = AttestationService()
        enclave = Enclave(EchoProgram())
        other = Enclave(EchoProgram())
        quote = service.quote(enclave)
        with pytest.raises(AttestationError):
            verify_quote(quote, service.root_key, EchoProgram.measurement(),
                         expected_key=other.public_key)

    def test_forged_root_rejected(self):
        service = AttestationService()
        rogue = AttestationService(seed=b"rogue")
        enclave = Enclave(EchoProgram())
        quote = rogue.quote(enclave)
        with pytest.raises(AttestationError):
            verify_quote(quote, service.root_key, EchoProgram.measurement())

    def test_revocation(self):
        service = AttestationService()
        enclave = Enclave(EchoProgram())
        quote = service.quote(enclave)
        service.revoke(enclave.public_key)
        with pytest.raises(AttestationError):
            verify_quote(quote, service.root_key, EchoProgram.measurement(),
                         service=service)

    def test_report_data_binds(self):
        service = AttestationService()
        enclave = Enclave(EchoProgram())
        quote = service.quote(enclave, report_data=b"session-1")
        forged = type(quote)(
            measurement=quote.measurement, enclave_key=quote.enclave_key,
            report_data=b"session-2", signature=quote.signature,
        )
        with pytest.raises(AttestationError):
            verify_quote(forged, service.root_key, EchoProgram.measurement())


class TestMonotonicCounters:
    def test_values_only_increase(self):
        counter = MonotonicCounter(0)
        counter.increment(0.0)
        counter.increment(10.0)
        assert counter.value == 2

    def test_throttled_increments_queue(self):
        counter = MonotonicCounter(0, increment_delay=0.1)
        first = counter.increment(0.0)
        second = counter.increment(0.0)
        assert first == 0.1
        assert second == 0.2  # serialised behind the first

    def test_ten_per_second(self):
        counter = MonotonicCounter(0, increment_delay=0.1)
        completion = 0.0
        for _ in range(10):
            completion = counter.increment(0.0)
        assert completion == pytest.approx(1.0)

    def test_try_increment_raises_when_busy(self):
        counter = MonotonicCounter(0, increment_delay=0.1)
        counter.try_increment(0.0)
        with pytest.raises(CounterThrottled):
            counter.try_increment(0.05)
        assert counter.try_increment(0.2) == 2

    def test_reads_unthrottled(self):
        counter = MonotonicCounter(0, increment_delay=0.1)
        counter.increment(0.0)
        assert counter.read() == 1
        assert counter.read() == 1

    def test_bank_quota(self):
        bank = MonotonicCounterBank()
        bank.MAX_COUNTERS = 2
        bank.create()
        bank.create()
        with pytest.raises(TEEError):
            bank.create()

    def test_bank_lookup(self):
        bank = MonotonicCounterBank()
        counter = bank.create()
        assert bank.get(counter.counter_id) is counter
        with pytest.raises(TEEError):
            bank.get(99)


class TestSealing:
    def test_roundtrip(self):
        service = SealingService(b"platform", EchoProgram.measurement())
        blob = service.seal({"balance": 42}, counter_value=1)
        assert service.unseal(blob) == {"balance": 42}

    def test_tampered_blob_rejected(self):
        service = SealingService(b"platform", EchoProgram.measurement())
        blob = service.seal({"balance": 42}, counter_value=1)
        forged = type(blob)(payload=blob.payload + b"x",
                            counter_value=blob.counter_value, mac=blob.mac)
        with pytest.raises(SealingError):
            service.unseal(forged)

    def test_cross_measurement_rejected(self):
        sealer = SealingService(b"platform", EchoProgram.measurement())
        other = SealingService(b"platform", OtherProgram.measurement())
        blob = sealer.seal("state", counter_value=1)
        with pytest.raises(SealingError):
            other.unseal(blob)

    def test_cross_platform_rejected(self):
        sealer = SealingService(b"platform-1", EchoProgram.measurement())
        other = SealingService(b"platform-2", EchoProgram.measurement())
        blob = sealer.seal("state", counter_value=1)
        with pytest.raises(SealingError):
            other.unseal(blob)

    def test_rollback_detected(self):
        service = SealingService(b"platform", EchoProgram.measurement())
        counter = MonotonicCounter(0)
        counter.increment(0.0)
        old_blob = service.seal("old", counter_value=counter.value)
        counter.increment(1.0)
        new_blob = service.seal("new", counter_value=counter.value)
        assert service.unseal(new_blob, counter=counter) == "new"
        with pytest.raises(SealingError):
            service.unseal(old_blob, counter=counter)


class TestCompromise:
    def test_extract_leaks_identity_key(self):
        enclave = Enclave(EchoProgram())
        secrets = extract_secrets(enclave)
        assert secrets.identity_private_key.public_key == enclave.public_key
        assert enclave.status is EnclaveStatus.COMPROMISED

    def test_compromised_enclave_keeps_running(self):
        enclave = Enclave(EchoProgram())
        extract_secrets(enclave)
        assert enclave.ecall("bump") == 1

    def test_fork_clones_state_and_keys(self):
        enclave = Enclave(EchoProgram())
        enclave.ecall("bump")
        fork = fork_enclave(enclave, "fork")
        assert fork.public_key == enclave.public_key
        assert fork.ecall("bump") == 2
        # The fork diverges: the original is unaffected by fork ecalls.
        assert enclave.ecall("bump") == 2
        assert fork.ecall("bump") == 3
