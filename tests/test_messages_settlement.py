"""Message canonicalisation/signing and settlement construction units."""

import pytest

from repro.blockchain.transaction import OutPoint
from repro.core.deposits import DepositRecord, DepositStatus
from repro.core.messages import (
    NewChannelAck,
    Paid,
    PathDescriptor,
    SignedMessage,
    canonical_bytes,
)
from repro.core.settlement import (
    PoPT,
    build_release,
    build_tau_from_components,
    build_unsigned_settlement,
    build_unsigned_tau,
    local_key_provider,
    sign_settlement,
)
from repro.crypto import KeyPair, MultisigSpec
from repro.errors import (
    DepositError,
    MessageAuthenticationError,
    SettlementError,
)

ALICE = KeyPair.from_seed(b"msg-alice")
BOB = KeyPair.from_seed(b"msg-bob")


class TestCanonicalBytes:
    def test_deterministic(self):
        message = Paid(channel_id="c", amount=5, sequence=1)
        assert canonical_bytes(message) == canonical_bytes(message)

    def test_field_sensitivity(self):
        a = Paid(channel_id="c", amount=5, sequence=1)
        b = Paid(channel_id="c", amount=6, sequence=1)
        assert canonical_bytes(a) != canonical_bytes(b)

    def test_type_tag_prevents_cross_type_collisions(self):
        ack = NewChannelAck(channel_id="c", my_address="x",
                            remote_address="y")
        other = NewChannelAck(channel_id="c", my_address="y",
                              remote_address="x")
        assert canonical_bytes(ack) != canonical_bytes(other)

    def test_nested_structures(self):
        path = PathDescriptor(payment_id="p", amount=10,
                              hops=("a", "b", "c"))
        assert b"hops" in canonical_bytes(path)

    def test_unsupported_type_raises(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Bad:
            value: object

        with pytest.raises(TypeError):
            canonical_bytes(Bad(value=object()))


class TestSignedMessage:
    def test_roundtrip(self):
        message = SignedMessage.create(
            Paid(channel_id="c", amount=5, sequence=1), ALICE.private)
        message.verify(expected_sender=ALICE.public)

    def test_wrong_sender_rejected(self):
        message = SignedMessage.create(
            Paid(channel_id="c", amount=5, sequence=1), ALICE.private)
        with pytest.raises(MessageAuthenticationError):
            message.verify(expected_sender=BOB.public)

    def test_body_substitution_rejected(self):
        message = SignedMessage.create(
            Paid(channel_id="c", amount=5, sequence=1), ALICE.private)
        forged = SignedMessage(
            body=Paid(channel_id="c", amount=9_999, sequence=1),
            sender_key=message.sender_key, signature=message.signature)
        with pytest.raises(MessageAuthenticationError):
            forged.verify()


def _deposit(seed: bytes, value: int, index: int = 0) -> DepositRecord:
    key = KeyPair.from_seed(seed)
    return DepositRecord(
        outpoint=OutPoint(seed.hex().ljust(64, "0"), index),
        value=value,
        spec=MultisigSpec(1, (key.public,)),
    )


def _provider_for(*seeds):
    keys = {}
    for seed in seeds:
        pair = KeyPair.from_seed(seed)
        keys[pair.address()] = pair.private
    return local_key_provider(keys)


class TestSettlementConstruction:
    def test_zero_balance_party_omitted(self):
        deposit = _deposit(b"d1", 1_000)
        unsigned = build_unsigned_settlement(
            [deposit], [("btcalice", 1_000), ("btcbob", 0)])
        assert len(unsigned.outputs) == 1

    def test_output_order_canonical(self):
        deposit = _deposit(b"d1", 1_000)
        forward = build_unsigned_settlement(
            [deposit], [("btcalice", 600), ("btcbob", 400)])
        backward = build_unsigned_settlement(
            [deposit], [("btcbob", 400), ("btcalice", 600)])
        assert forward.txid == backward.txid

    def test_overspend_rejected(self):
        deposit = _deposit(b"d1", 1_000)
        with pytest.raises(SettlementError):
            build_unsigned_settlement([deposit], [("btcalice", 1_001)])

    def test_no_deposits_rejected(self):
        with pytest.raises(SettlementError):
            build_unsigned_settlement([], [("btcalice", 1)])

    def test_sign_requires_keys(self):
        deposit = _deposit(b"d1", 1_000)
        unsigned = build_unsigned_settlement([deposit], [("btcalice", 1_000)])
        with pytest.raises(SettlementError):
            sign_settlement(unsigned, [deposit], _provider_for(b"other"))

    def test_sign_with_right_key(self):
        deposit = _deposit(b"d1", 1_000)
        unsigned = build_unsigned_settlement([deposit], [("btcalice", 1_000)])
        signed = sign_settlement(unsigned, [deposit], _provider_for(b"d1"))
        assert signed.inputs[0].witness.signatures

    def test_release_pays_full_value(self):
        deposit = _deposit(b"d1", 7_777)
        release = build_release(deposit, "btcdest", _provider_for(b"d1"))
        assert release.total_output_value() == 7_777

    def test_tau_merges_payouts_per_address(self):
        deposits = [(_deposit(b"d1", 500).outpoint, 500),
                    (_deposit(b"d2", 500, 1).outpoint, 500)]
        tau = build_tau_from_components(
            deposits, [("btcmid", 300), ("btcmid", 200), ("btcend", 500)])
        assert len(tau.outputs) == 2
        by_addr = {o.script.destination(): o.value for o in tau.outputs}
        assert by_addr["btcmid"] == 500

    def test_tau_requires_deposits(self):
        with pytest.raises(SettlementError):
            build_tau_from_components([], [("btcx", 1)])

    def test_tau_overspend_rejected(self):
        deposits = [(_deposit(b"d1", 100).outpoint, 100)]
        with pytest.raises(SettlementError):
            build_tau_from_components(deposits, [("btcx", 101)])


class TestDepositRecord:
    def test_lifecycle(self):
        record = _deposit(b"lc", 100)
        record.mark_associated("chan")
        assert record.status is DepositStatus.ASSOCIATED
        assert record.channel_id == "chan"
        record.mark_free()
        assert record.is_free
        record.mark_released()
        assert record.status is DepositStatus.RELEASED

    def test_invalid_transitions(self):
        record = _deposit(b"lc2", 100)
        record.mark_associated("chan")
        with pytest.raises(DepositError):
            record.mark_associated("other")
        with pytest.raises(DepositError):
            record.mark_released()

    def test_nonpositive_value_rejected(self):
        with pytest.raises(DepositError):
            _deposit(b"bad", 0)

    def test_multisig_address_override(self):
        record = DepositRecord(
            outpoint=OutPoint("aa" * 32, 0), value=10,
            spec=MultisigSpec(1, (KeyPair.from_seed(b"k").public,)),
            multisig_address="msigREAL",
        )
        assert record.address == "msigREAL"
