"""Session-MAC fast path: deferred signatures under checkpoints.

With the fast path enabled, ``Paid`` messages between attested enclaves
are authenticated by the secure channel's session MAC alone; the
identity *signature* over channel state is amortised into a signed
:class:`~repro.core.messages.ChannelCheckpoint` every K payments and
forced before any balance-affecting reconfiguration.  These tests pin
the protocol rules: checkpoint cadence, forced flushes, receiver-side
validation, and the strict no-bare-messages policy for everything that
is not fast-path eligible.
"""

import pickle

import pytest

from repro import obs
from repro.core.channel_base import replication_blob
from repro.core.messages import ChannelCheckpoint, Paid, SettleRequest, \
    SignedMessage
from repro.core.persistence import restore_program_state
from repro.errors import PaymentError, ProtocolError


def enable_fastpath(node, every):
    node._ecall("set_fastpath", True, every)


class TestFastPathPayments:
    def test_payments_update_balances(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 8)
        for _ in range(5):
            alice.pay(channel, 1_000)
        assert alice.program.channels[channel].my_balance == 45_000
        assert bob.program.channels[channel].my_balance == 35_000

    def test_checkpoint_every_k_payments(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 5)
        for _ in range(12):
            alice.pay(channel, 100)
        # 12 payments at K=5 → checkpoints after the 5th and 10th, two
        # payments still awaiting the next one.
        assert alice.program._checkpoint_index_out[channel] == 2
        assert alice.program._fastpath_unsigned[channel] == 2
        assert bob.program._checkpoint_index_in[channel] == 2
        recorded = bob.program._remote_checkpoints[channel]
        assert recorded.sequence_out == 10
        assert recorded.my_balance == 49_000

    def test_disable_flushes_pending(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 50)
        for _ in range(3):
            alice.pay(channel, 100)
        assert alice.program._fastpath_unsigned[channel] == 3
        alice._ecall("set_fastpath", False)
        assert alice.program._fastpath_unsigned[channel] == 0
        assert bob.program._remote_checkpoints[channel].sequence_out == 3

    def test_settle_flushes_and_conserves_exactly(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 100)
        for _ in range(7):
            alice.pay(channel, 1_000)
        assert alice.program._fastpath_unsigned[channel] == 7
        transaction = alice.settle(channel)
        assert transaction is not None
        network.mine()
        # The forced pre-settle checkpoint covered the unsigned tail; the
        # on-chain payouts are exact, not approximate.
        assert network.chain.balance(alice.address) == 100_000 - 50_000 + 43_000
        assert network.chain.balance(bob.address) == 100_000 - 30_000 + 37_000
        assert alice.program._fastpath_unsigned.get(channel, 0) == 0

    def test_bidirectional_fastpath(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 4)
        enable_fastpath(bob, 4)
        for _ in range(6):
            alice.pay(channel, 500)
        for _ in range(3):
            bob.pay(channel, 200)
        assert alice.program.channels[channel].my_balance == 47_600
        assert bob.program.channels[channel].my_balance == 32_400

    def test_sign_count_amortised(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 5)
        with obs.collecting() as (registry, _tracer):
            for _ in range(10):
                alice.pay(channel, 100)
            snapshot = registry.snapshot()["counters"]
        assert snapshot["crypto.mac_fastpath"] == 10
        assert snapshot["crypto.sign_deferred"] == 10
        assert snapshot["crypto.checkpoints_sent"] == 2
        # Only the two checkpoints are signed — far fewer signatures than
        # payments (the entire point of the fast path).
        assert snapshot["crypto.sign"] < 10

    def test_checkpoint_every_must_be_positive(self, open_channel):
        network, alice, bob, channel = open_channel
        with pytest.raises(PaymentError):
            alice._ecall("set_fastpath", True, 0)


class TestFastPathSecurity:
    def _seal_from(self, sender, payload):
        state = None
        for channel in sender.program.channels.values():
            state = channel
            break
        secure = sender.program.secure_channels[state.remote_key.to_bytes()]
        return secure.seal_message(payload)

    def test_bare_non_paid_rejected(self, open_channel):
        """Fast-path leniency is scoped to ``Paid`` alone: any other
        message arriving without a signature is an attack, not a
        configuration."""
        network, alice, bob, channel = open_channel
        envelope = self._seal_from(alice, SettleRequest(channel_id=channel))
        with pytest.raises(ProtocolError):
            bob.program.handle_envelope("alice", envelope)

    def test_bare_checkpoint_rejected(self, open_channel):
        """Checkpoints exist to carry the deferred *signature*; a MAC-only
        checkpoint would defeat their purpose and must be refused."""
        network, alice, bob, channel = open_channel
        bare = ChannelCheckpoint(channel_id=channel, index=1, sequence_out=0,
                                 sequence_in=0, my_balance=50_000,
                                 remote_balance=30_000)
        with pytest.raises(ProtocolError):
            bob.program.handle_envelope("alice", self._seal_from(alice, bare))

    def _signed_checkpoint(self, alice, checkpoint):
        signed = SignedMessage.create(checkpoint,
                                      alice.enclave.identity.private)
        return self._seal_from(alice, signed)

    def test_checkpoint_index_gap_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 100)
        for _ in range(3):
            alice.pay(channel, 100)
        forged = ChannelCheckpoint(channel_id=channel, index=5,
                                   sequence_out=3, sequence_in=0,
                                   my_balance=49_700, remote_balance=30_300)
        with pytest.raises(ProtocolError):
            bob.program.handle_envelope(
                "alice", self._signed_checkpoint(alice, forged))

    def test_checkpoint_sequence_mismatch_rejected(self, open_channel):
        """A checkpoint claiming payments the receiver never saw (a host
        dropping fast-path frames) fails the exact-sequence check."""
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 100)
        for _ in range(3):
            alice.pay(channel, 100)
        forged = ChannelCheckpoint(channel_id=channel, index=1,
                                   sequence_out=99, sequence_in=0,
                                   my_balance=40_100, remote_balance=39_900)
        with pytest.raises(PaymentError):
            bob.program.handle_envelope(
                "alice", self._signed_checkpoint(alice, forged))

    def test_checkpoint_balance_mismatch_rejected(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 100)
        for _ in range(3):
            alice.pay(channel, 100)
        # Quiescent (no reverse traffic), correct sequences, wrong money.
        forged = ChannelCheckpoint(channel_id=channel, index=1,
                                   sequence_out=3, sequence_in=0,
                                   my_balance=50_000, remote_balance=30_000)
        with pytest.raises(PaymentError):
            bob.program.handle_envelope(
                "alice", self._signed_checkpoint(alice, forged))

    def test_replayed_bare_paid_rejected(self, open_channel):
        """The secure channel's freshness counters still guard fast-path
        frames: a captured envelope cannot be delivered twice."""
        from repro.errors import MessageAuthenticationError
        network, alice, bob, channel = open_channel
        envelope = self._seal_from(
            alice, Paid(channel_id=channel, amount=100, sequence=1))
        bob.program.handle_envelope("alice", envelope)
        with pytest.raises(MessageAuthenticationError):
            bob.program.handle_envelope("alice", envelope)


class TestFastPathPersistence:
    def test_fastpath_state_round_trips_through_sealing(self, open_channel):
        network, alice, bob, channel = open_channel
        enable_fastpath(alice, 5)
        for _ in range(7):
            alice.pay(channel, 100)
        state = pickle.loads(replication_blob(alice.program))
        assert state["fastpath"]["enabled"] is True
        assert state["fastpath"]["unsigned"][channel] == 2
        program = alice.program
        program.fastpath_enabled = False
        program.checkpoint_every = 64
        program._fastpath_unsigned = {}
        program._checkpoint_index_out = {}
        restore_program_state(program, state)
        assert program.fastpath_enabled is True
        assert program.checkpoint_every == 5
        assert program._fastpath_unsigned[channel] == 2
        assert program._checkpoint_index_out[channel] == 1

    def test_pre_fastpath_blob_restores_with_defaults(self, open_channel):
        network, alice, bob, channel = open_channel
        state = pickle.loads(replication_blob(alice.program))
        del state["fastpath"]
        restore_program_state(alice.program, state)
        assert alice.program.fastpath_enabled is False
        assert alice.program.checkpoint_every == 64
