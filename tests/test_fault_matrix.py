"""The full crash fault matrix (chaos tier).

Every (role × stage) cell of Algorithm 2's case analysis, plus the
committee-loss cells — slow enough to earn the ``chaos`` marker, which
CI runs in a separate non-blocking job.  A failed cell prints its
violation list, which names the invariant that broke and the balances
that broke it.
"""

import json
from pathlib import Path

import pytest

from repro.faults import (
    ROLE_STAGE_POINTS,
    ROLES,
    STAGES,
    run_committee_member_loss,
    run_committee_primary_loss,
    run_crash_cell,
    run_matrix,
    summarise,
)
from repro.obs import NOOP, MetricsRegistry, set_metrics

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("role", ROLES)
@pytest.mark.parametrize("stage", STAGES)
def test_crash_cell(role, stage):
    result = run_crash_cell(role, stage)
    assert result.crash_fired, (
        f"probe at {result.point} never fired — the cell tested nothing"
    )
    assert result.ok, result.violations


def test_matrix_covers_every_cell():
    assert set(ROLE_STAGE_POINTS) == {(role, stage)
                                      for role in ROLES for stage in STAGES}


def test_committee_member_loss():
    result = run_committee_member_loss()
    assert result["ok"], result["violations"]


def test_committee_primary_loss():
    result = run_committee_primary_loss()
    assert result["ok"], result["violations"]


def test_matrix_summary_sidecar(tmp_path):
    """The sweep under metrics collection, summarised the way the chaos
    CI job archives it (benchmarks/bench_fault_matrix.py does the same
    against the repo's benchmarks directory)."""
    metrics = MetricsRegistry()
    set_metrics(metrics)
    try:
        cells = run_matrix()
        summary = summarise(cells)
        summary["metrics"] = metrics.snapshot()
    finally:
        set_metrics(NOOP)
    assert summary["ok"] == summary["total"] == 18, summary["failed"]
    counters = summary["metrics"]["counters"]
    assert counters.get("faults.injected[crash]", 0) >= 18, counters
    assert counters.get("faults.recovered[restore]", 0) >= 18, counters
    sidecar = Path(tmp_path) / "fault_matrix.json"
    sidecar.write_text(json.dumps(summary, indent=2))
    assert json.loads(sidecar.read_text())["ok"] == 18
