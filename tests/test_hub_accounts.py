"""The account hub's in-enclave ledger: signed requests, nonces, fees,
conservation, withdrawal routes, batches, rollback, and persistence.

Companion to ``tests/test_security_attacks.py::TestHubAccountAttacks``
(adversarial paths) — this file covers the honest protocol and the
state-machine edges.
"""

import pickle

import pytest

from repro.core.channel_base import _replication_blob
from repro.core.persistence import restore_program_state
from repro.core.multihop import TeechainEnclave
from repro.core.messages import SignedMessage
from repro.crypto import KeyPair
from repro.errors import (
    AccountFundsError,
    AccountNonceError,
    HubError,
    NoSuchAccountError,
    ReplicationError,
)
from repro.hub import AccountLedger
from repro.hub.messages import (
    AccountDeposit,
    AccountPay,
    AccountQuery,
    AccountWithdraw,
)
from repro.runtime import codec

CLIENT = KeyPair.from_seed(b"hub-unit-client")
PARTNER = KeyPair.from_seed(b"hub-unit-partner")


def signed(body, keypair=CLIENT):
    return SignedMessage.create(body, keypair.private)


@pytest.fixture
def hub(open_channel):
    """Alice's enclave acting as the hub: 50k of channel backing, with
    CLIENT and PARTNER accounts opened at 10k and 5k."""
    network, alice, bob, channel = open_channel
    alice.enclave.ecall(
        "hub_handle_request",
        signed(AccountDeposit(CLIENT.public, 10_000, 1)))
    alice.enclave.ecall(
        "hub_handle_request",
        signed(AccountDeposit(PARTNER.public, 5_000, 1), PARTNER))
    return network, alice, bob, channel


class TestAccountLedger:
    def test_conservation_arithmetic(self):
        ledger = AccountLedger()
        ledger.balances = {b"a": 70, b"b": 20}
        ledger.fee_bucket = 10
        ledger.deposited_total = 120
        ledger.withdrawn_total = 20
        assert ledger.liabilities() == 100
        assert ledger.conserved()
        ledger.balances[b"a"] += 1  # tamper
        assert not ledger.conserved()

    def test_state_round_trip(self):
        ledger = AccountLedger()
        ledger.balances = {b"a": 7}
        ledger.nonces = {b"a": 3}
        ledger.fee_per_pay = 2
        ledger.fee_bucket = 4
        ledger.deposited_total = 11
        ledger.withdrawn_total = 4
        ledger.pays = 2
        restored = AccountLedger.from_state(ledger.to_state())
        assert restored.to_state() == ledger.to_state()

    def test_state_defaults_for_older_blobs(self):
        """A blob sealed before a field existed restores to defaults."""
        restored = AccountLedger.from_state({"balances": {b"a": 7}})
        assert restored.balances == {b"a": 7}
        assert restored.nonces == {}
        assert restored.fee_per_pay == 0
        assert restored.conserved() is False  # 7 owed, nothing deposited


class TestCodecRegistration:
    @pytest.mark.parametrize("body", [
        AccountDeposit(CLIENT.public, 500, 1),
        AccountPay(CLIENT.public, PARTNER.public, 25, 2),
        AccountWithdraw(CLIENT.public, 40, 3, "chain", "addr-x"),
        AccountQuery(CLIENT.public),
    ], ids=["deposit", "pay", "withdraw", "query"])
    def test_round_trip(self, body):
        assert codec.decode(codec.encode(body)) == body

    @pytest.mark.parametrize("body", [
        AccountDeposit(CLIENT.public, 500, 1),
        AccountWithdraw(CLIENT.public, 40, 3, "channel", "cid"),
    ], ids=["deposit", "withdraw"])
    def test_signed_round_trip(self, body):
        wire = codec.encode(signed(body))
        decoded = codec.decode(wire)
        assert decoded.body == body
        decoded.verify(expected_sender=CLIENT.public)


class TestDepositsAndPays:
    def test_deposit_opens_and_credits(self, hub):
        _, alice, _, _ = hub
        result = alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountDeposit(CLIENT.public, 2_000, 2)))
        assert result["created"] is False
        assert result["balance"] == 12_000
        assert alice.program.hub.deposited_total == 17_000
        assert alice.program.hub.conserved()

    def test_deposit_beyond_backing_rejected(self, hub):
        """Solvency: the hub never owes more than its channels and free
        deposits can pay out (50k backing, 15k already owed)."""
        _, alice, _, _ = hub
        with pytest.raises(AccountFundsError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountDeposit(CLIENT.public, 35_001, 2)))
        assert alice.program.hub.balances[CLIENT.public.to_bytes()] == 10_000

    def test_pay_moves_funds(self, hub):
        _, alice, _, _ = hub
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountPay(CLIENT.public, PARTNER.public, 3_000, 2)))
        ledger = alice.program.hub
        assert ledger.balances[CLIENT.public.to_bytes()] == 7_000
        assert ledger.balances[PARTNER.public.to_bytes()] == 8_000
        assert ledger.pays == 1
        assert ledger.conserved()

    def test_pay_fee_lands_in_bucket(self, hub):
        _, alice, _, _ = hub
        alice.enclave.ecall("hub_set_fee", 25)
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountPay(CLIENT.public, PARTNER.public, 1_000, 2)))
        ledger = alice.program.hub
        assert ledger.balances[PARTNER.public.to_bytes()] == 5_000 + 975
        assert ledger.fee_bucket == 25
        assert ledger.conserved()  # the fee is a liability, not income

    def test_pay_at_or_below_fee_rejected(self, hub):
        _, alice, _, _ = hub
        alice.enclave.ecall("hub_set_fee", 25)
        with pytest.raises(HubError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountPay(CLIENT.public, PARTNER.public, 25, 2)))

    def test_pay_to_unknown_recipient_rejected(self, hub):
        _, alice, _, _ = hub
        ghost = KeyPair.from_seed(b"hub-unit-ghost")
        with pytest.raises(NoSuchAccountError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountPay(CLIENT.public, ghost.public, 1, 2)))

    def test_pay_from_unknown_account_rejected(self, hub):
        _, alice, _, _ = hub
        ghost = KeyPair.from_seed(b"hub-unit-ghost")
        with pytest.raises(NoSuchAccountError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountPay(ghost.public, CLIENT.public, 1, 1),
                       ghost))


class TestNonces:
    def test_nonce_must_strictly_increase(self, hub):
        _, alice, _, _ = hub
        for nonce in (1, 0):
            with pytest.raises(AccountNonceError):
                alice.enclave.ecall(
                    "hub_handle_request",
                    signed(AccountDeposit(CLIENT.public, 1, nonce)))

    def test_nonce_gaps_allowed(self, hub):
        """Clients may burn nonces (e.g. a request lost in transit);
        only monotonicity matters."""
        _, alice, _, _ = hub
        result = alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountDeposit(CLIENT.public, 1, 100)))
        assert result["nonce"] == 100

    def test_failed_request_does_not_consume_nonce(self, hub):
        _, alice, _, _ = hub
        with pytest.raises(AccountFundsError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountWithdraw(CLIENT.public, 99_999, 2)))
        # The same nonce is still fresh for the corrected request.
        result = alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 1_000, 2, "account",
                                   PARTNER.public.to_bytes().hex())))
        assert result["nonce"] == 2

    def test_query_consumes_no_nonce(self, hub):
        _, alice, _, _ = hub
        for _ in range(3):
            result = alice.enclave.ecall(
                "hub_handle_request", signed(AccountQuery(CLIENT.public)))
        assert result == {"account": CLIENT.public.to_bytes().hex(),
                          "exists": True, "balance": 10_000, "nonce": 1}


class TestWithdrawRoutes:
    def test_account_route_is_internal(self, hub):
        _, alice, _, _ = hub
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 4_000, 2, "account",
                                   PARTNER.public.to_bytes().hex())))
        ledger = alice.program.hub
        assert ledger.balances[CLIENT.public.to_bytes()] == 6_000
        assert ledger.balances[PARTNER.public.to_bytes()] == 9_000
        assert ledger.withdrawn_total == 0  # liabilities unchanged
        assert ledger.conserved()

    def test_channel_route_pays_over_real_channel(self, hub):
        network, alice, bob, channel = hub
        before = alice.program.channels[channel].my_balance
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 2_500, 2, "channel",
                                   channel)))
        ledger = alice.program.hub
        assert alice.program.channels[channel].my_balance == before - 2_500
        assert ledger.balances[CLIENT.public.to_bytes()] == 7_500
        assert ledger.withdrawn_total == 2_500
        assert ledger.conserved()
        # The fast-path rule: the fund move stands on a fresh signed
        # checkpoint, never on unsigned MAC frames alone.
        assert not alice.program._fastpath_unsigned.get(channel)

    def test_channel_route_failure_leaves_ledger_untouched(self, hub):
        """A channel that cannot cover the withdrawal rejects before
        any ledger mutation — no partial state, nonce still fresh."""
        network, alice, bob, channel = hub
        # Drain the channel below the client's balance so the pay —
        # not the ledger check — is what refuses.
        alice.pay(channel, 45_000)
        balance = alice.program.channels[channel].my_balance
        assert balance < 10_000
        with pytest.raises(Exception) as excinfo:
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountWithdraw(CLIENT.public, 10_000, 2,
                                       "channel", channel)))
        assert not isinstance(excinfo.value, AccountNonceError)
        ledger = alice.program.hub
        assert ledger.balances[CLIENT.public.to_bytes()] == 10_000
        assert ledger.withdrawn_total == 0
        assert alice.program.channels[channel].my_balance == balance
        assert ledger.nonces[CLIENT.public.to_bytes()] == 1

    def test_channel_route_flush_failure_restores_channel_and_ledger(
            self, hub, monkeypatch):
        """The ecall guard only undoes replication failures; any other
        failure after pay() has moved channel funds must be unwound by
        the handler itself — channel balance, queued frames, ledger,
        and nonce all revert together."""
        network, alice, bob, channel = hub
        before = alice.program.channels[channel].my_balance
        outbox_before = list(alice.program._outbox)

        def boom(channel_id):
            raise RuntimeError("injected after pay()")

        monkeypatch.setattr(alice.program, "_flush_checkpoint", boom)
        with pytest.raises(RuntimeError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountWithdraw(CLIENT.public, 2_500, 2, "channel",
                                       channel)))
        ledger = alice.program.hub
        assert alice.program.channels[channel].my_balance == before
        assert alice.program._outbox == outbox_before
        assert ledger.balances[CLIENT.public.to_bytes()] == 10_000
        assert ledger.withdrawn_total == 0
        assert ledger.nonces[CLIENT.public.to_bytes()] == 1
        assert ledger.conserved()

    def test_chain_route_authorises_host_payout(self, hub):
        _, alice, _, _ = hub
        result = alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 3_000, 2, "chain",
                                   "payout-address")))
        assert result["address"] == "payout-address"
        assert alice.program.hub.withdrawn_total == 3_000
        assert alice.program.hub.conserved()

    def test_chain_payout_refund_restores_balance(self, hub):
        """Authorise-then-execute: when the host cannot execute the
        payout, the compensating ecall re-credits the account.  The
        nonce stays consumed and conservation holds throughout."""
        _, alice, _, _ = hub
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 3_000, 2, "chain",
                                   "payout-address")))
        result = alice.enclave.ecall(
            "hub_refund_payout", CLIENT.public.to_bytes().hex(), 3_000)
        ledger = alice.program.hub
        assert result["balance"] == 10_000
        assert ledger.balances[CLIENT.public.to_bytes()] == 10_000
        assert ledger.withdrawn_total == 0
        assert ledger.conserved()
        assert ledger.nonces[CLIENT.public.to_bytes()] == 2

    def test_refund_cannot_mint_liabilities(self, hub):
        """A refund must reverse a real external debit: with nothing
        withdrawn any amount is refused, and after a withdrawal a
        refund above ``withdrawn_total`` is refused — a host claiming
        phantom payout failures cannot inflate what the hub owes."""
        _, alice, _, _ = hub
        key_hex = CLIENT.public.to_bytes().hex()
        with pytest.raises(HubError):
            alice.enclave.ecall("hub_refund_payout", key_hex, 1)
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountWithdraw(CLIENT.public, 100, 2, "chain", "addr")))
        with pytest.raises(HubError):
            alice.enclave.ecall("hub_refund_payout", key_hex, 101)
        ledger = alice.program.hub
        assert ledger.balances[CLIENT.public.to_bytes()] == 9_900
        assert ledger.withdrawn_total == 100
        assert ledger.conserved()

    def test_chain_route_needs_destination(self, hub):
        _, alice, _, _ = hub
        with pytest.raises(HubError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountWithdraw(CLIENT.public, 1, 2, "chain", "")))

    def test_unknown_route_rejected(self, hub):
        _, alice, _, _ = hub
        with pytest.raises(HubError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountWithdraw(CLIENT.public, 1, 2, "teleport",
                                       "x")))


class TestBatchesAndStats:
    def test_batch_rejects_items_independently(self, hub):
        _, alice, _, _ = hub
        mallory = KeyPair.from_seed(b"hub-unit-mallory")
        batch = [
            signed(AccountDeposit(CLIENT.public, 100, 2)),
            signed(AccountDeposit(CLIENT.public, 100, 2)),      # replay
            signed(AccountPay(CLIENT.public, PARTNER.public, 1, 9),
                   mallory),                                    # forged
            signed(AccountPay(CLIENT.public, PARTNER.public, 50, 3)),
        ]
        results = alice.enclave.ecall("hub_handle_batch", batch)
        assert [row["ok"] for row in results] == [True, False, False, True]
        assert results[1]["code"] == "stale_nonce"
        assert results[2]["code"] == "authentication_failed"
        assert alice.program.hub.conserved()

    def test_stats_snapshot(self, hub):
        _, alice, _, _ = hub
        stats = alice.enclave.ecall("hub_stats")
        assert stats["accounts"] == 2
        assert stats["total_balance"] == 15_000
        assert stats["liabilities"] == 15_000
        assert stats["backing"] == 50_000
        assert stats["conserved"] and stats["solvent"]

    def test_negative_fee_rejected(self, hub):
        _, alice, _, _ = hub
        with pytest.raises(HubError):
            alice.enclave.ecall("hub_set_fee", -1)


class TestRollbackAndPersistence:
    def test_failed_replication_rolls_the_ledger_back(self, hub):
        """Algorithm 3 extends to accounts: if the replication barrier
        fails, the deposit never happened — balance, totals, and nonce
        all restore."""
        _, alice, _, _ = hub

        def hook(description):
            raise ReplicationError(f"injected during {description}")

        alice.program.replication_hook = hook
        with pytest.raises(ReplicationError):
            alice.enclave.ecall(
                "hub_handle_request",
                signed(AccountDeposit(CLIENT.public, 2_000, 2)))
        alice.program.replication_hook = None
        ledger = alice.program.hub
        assert ledger.balances[CLIENT.public.to_bytes()] == 10_000
        assert ledger.deposited_total == 15_000
        assert ledger.nonces[CLIENT.public.to_bytes()] == 1
        # The rolled-back nonce is accepted once replication recovers.
        alice.enclave.ecall(
            "hub_handle_request",
            signed(AccountDeposit(CLIENT.public, 2_000, 2)))
        assert ledger.balances[CLIENT.public.to_bytes()] == 12_000

    def test_batch_aborts_atomically_on_replication_failure(self, hub):
        """A replication failure mid-batch cannot be reported as a
        per-item rejection: by then the item has already mutated the
        ledger, and only the ecall guard can undo that.  The batch
        re-raises instead, the guard rolls every item back, and a
        client retrying the 'failed' batch cannot double-spend."""
        _, alice, _, _ = hub
        calls = {"n": 0}

        def hook(description):
            calls["n"] += 1
            if calls["n"] == 2:
                raise ReplicationError(f"injected during {description}")

        alice.program.replication_hook = hook
        batch = [
            signed(AccountDeposit(CLIENT.public, 100, 2)),
            signed(AccountPay(CLIENT.public, PARTNER.public, 50, 3)),
        ]
        with pytest.raises(ReplicationError):
            alice.enclave.ecall("hub_handle_batch", batch)
        alice.program.replication_hook = None
        ledger = alice.program.hub
        # Item 1 replicated fine but is rolled back with the whole
        # batch: nothing is half-applied and the nonces stay fresh.
        assert ledger.balances[CLIENT.public.to_bytes()] == 10_000
        assert ledger.balances[PARTNER.public.to_bytes()] == 5_000
        assert ledger.deposited_total == 15_000
        assert ledger.nonces[CLIENT.public.to_bytes()] == 1
        assert ledger.conserved()
        # The identical batch replays cleanly once replication recovers.
        results = alice.enclave.ecall("hub_handle_batch", batch)
        assert [row["ok"] for row in results] == [True, True]

    def test_replication_blob_round_trips_the_ledger(self, hub):
        _, alice, _, _ = hub
        blob = _replication_blob(alice.program)
        replica = TeechainEnclave()
        restore_program_state(replica, pickle.loads(blob))
        assert replica.hub.to_state() == alice.program.hub.to_state()

    def test_pre_hub_blob_restores_empty_ledger(self, hub):
        """Blobs sealed before the hub existed carry no 'hub' key; the
        restored enclave starts with a fresh, conserved ledger."""
        _, alice, _, _ = hub
        state = pickle.loads(_replication_blob(alice.program))
        del state["hub"]
        replica = TeechainEnclave()
        restore_program_state(replica, state)
        assert replica.hub.balances == {}
        assert replica.hub.conserved()


class TestShardRouting:
    """Router-side ownership checks for account verbs (no workers are
    spawned — the handles are name-only stubs; only the ring lookups
    and the ``cross_shard`` refusal paths run)."""

    @pytest.fixture
    def router(self):
        from types import SimpleNamespace

        from repro.runtime.workers import ShardedDaemon

        router = ShardedDaemon("hubpool", workers=2)
        router.workers = {name: SimpleNamespace(name=name)
                          for name in router.worker_names}
        return router

    @staticmethod
    def _accounts_on_distinct_shards(router):
        by_owner = {}
        for index in range(64):
            keypair = KeyPair.from_seed(f"shard-route-{index}".encode())
            owner = router.ring.owner(
                "account:" + keypair.public.to_bytes().hex())
            by_owner.setdefault(owner, keypair)
            if len(by_owner) == 2:
                break
        return [by_owner[name] for name in router.worker_names]

    def test_cross_shard_account_withdraw_refused(self, router):
        """An account-route withdraw is an internal move like a pay:
        when the destination lives on another shard it is refused with
        the same stable code, not a misleading ``no_such_account``."""
        from repro.runtime.registry import CommandError

        payer, payee = self._accounts_on_distinct_shards(router)
        body = AccountWithdraw(payer.public, 5, 1, "account",
                               payee.public.to_bytes().hex())
        with pytest.raises(CommandError) as excinfo:
            router._route_account_request("account-withdraw", body)
        assert excinfo.value.code == "cross_shard"

    def test_same_shard_account_withdraw_routes_to_owner(self, router):
        payer, _ = self._accounts_on_distinct_shards(router)
        body = AccountWithdraw(payer.public, 5, 1, "account",
                               payer.public.to_bytes().hex())
        worker = router._route_account_request("account-withdraw", body)
        assert worker.name == router.ring.owner(
            "account:" + payer.public.to_bytes().hex())

    def test_channel_route_withdraw_is_not_shard_checked(self, router):
        """Channel and chain routes leave the shard by construction —
        their destinations are channel ids / addresses, not accounts."""
        payer, _ = self._accounts_on_distinct_shards(router)
        body = AccountWithdraw(payer.public, 5, 1, "channel", "chan-1")
        worker = router._route_account_request("account-withdraw", body)
        assert worker.name == router.ring.owner(
            "account:" + payer.public.to_bytes().hex())
