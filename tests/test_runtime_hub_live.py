"""Live account hub end-to-end: one enclave, a thousand signed clients.

The acceptance shape for ``repro.hub``: a hub daemon holding two real
channels serves ≥1,000 simulated accounts driven through ``repro.load``
— zero protocol drops, every accepted pay reflected exactly in the
enclave ledger, forged and replayed requests rejected with stable
codes, and the conservation invariant holding before *and* after the
hub withdraws over a channel, pays out on-chain, and settles.

A second test runs the account surface against a
:class:`~repro.runtime.workers.ShardedDaemon`: accounts shard by
consistent hash across workers, batches split per owner and merge in
order, cross-shard pays are refused with ``cross_shard``, and
``account-stats`` aggregates one conserved, solvent answer.
"""

import asyncio

import pytest

from repro.crypto.keys import KeyPair
from repro.hub.client import HubClient, sign_request
from repro.hub.messages import AccountPay, AccountWithdraw
from repro.load import AccountFleet, run_closed_loop, transport_drops
from repro.obs import MetricsRegistry
from repro.runtime.control import ControlClient, ControlError
from repro.runtime.launch import HOST, launch_network
from repro.workloads.assignment import HashRing

from tests.test_runtime_sharded_live import RouterThread

GENESIS = 400_000
DEPOSIT = 60_000
ACCOUNTS = 1_000
STREAMS = 4
PAYMENTS = 250          # per stream
HUB_FEE = 1
PAY_AMOUNT = 2


def _poll(predicate, timeout=60.0, interval=0.05, what="condition"):
    import time
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(interval)


@pytest.mark.live(timeout=420)
def test_live_hub_thousand_accounts():
    handles, _ = launch_network(
        {"hub": GENESIS, "alice": GENESIS, "bob": GENESIS})
    hub = handles["hub"].control
    alice = handles["alice"].control
    try:
        channels = {}
        for peer in ("alice", "bob"):
            cid = hub.call("open-channel", peer=peer)["channel_id"]
            deposit = hub.call("deposit", value=DEPOSIT)
            hub.call("approve-associate", peer=peer, channel_id=cid,
                     txid=deposit["txid"])
            channels[peer] = cid
        _poll(lambda: all(
            hub.call("channel", channel_id=cid)["my_balance"] == DEPOSIT
            for cid in channels.values()),
            what="hub deposits to associate")
        backing = 2 * DEPOSIT
        per_account = backing // ACCOUNTS
        hub.call("hub-fee", fee_per_pay=HUB_FEE)

        fleet = AccountFleet(ACCOUNTS, seed_prefix="live-hub")
        for batch in fleet.open_batches(per_account, batch_size=500):
            response = hub.call("account-pay-many", requests=batch)
            assert response["rejected"] == 0

        load = asyncio.run(run_closed_loop(
            fleet.pay_targets(HOST, handles["hub"].control_port,
                              PAY_AMOUNT, streams=STREAMS),
            PAYMENTS, concurrency=4, registry=MetricsRegistry()))
        assert load.errors == 0, load.rejected
        assert load.completed == STREAMS * PAYMENTS

        # Forged and replayed requests die inside the enclave.
        attacker = KeyPair.from_seed(b"live-attacker")
        forged = sign_request(
            AccountPay(fleet.signers[0].account, fleet.signers[1].account,
                       1, 10**6),
            attacker.private)
        with pytest.raises(ControlError) as excinfo:
            hub.call("account-pay", request=forged)
        assert excinfo.value.code == "authentication_failed"
        replay = fleet.pay_request(0, PAY_AMOUNT)
        hub.call("account-pay", request=replay)
        with pytest.raises(ControlError) as excinfo:
            hub.call("account-pay", request=replay)
        assert excinfo.value.code == "stale_nonce"

        expected_pays = STREAMS * PAYMENTS + 1  # + the replay's original
        stats = hub.call("account-stats")["hub"]
        assert stats["accounts"] == ACCOUNTS
        assert stats["pays"] == expected_pays
        assert stats["deposited_total"] == ACCOUNTS * per_account
        assert stats["fee_bucket"] == expected_pays * HUB_FEE
        assert stats["conserved"] and stats["solvent"]
        assert stats["backing"] == backing

        # A chain withdrawal the hub wallet cannot cover is refused
        # *before* the enclave debits: stable code, nonce unconsumed,
        # no burned balance awaiting a payout that can never happen.
        over = sign_request(
            AccountWithdraw(fleet.signers[1].account, 10**9, 10**6,
                            "chain", "nowhere"),
            fleet.signers[1].keypair.private)
        with pytest.raises(ControlError) as excinfo:
            hub.call("account-withdraw", request=over)
        assert excinfo.value.code == "insufficient_funds"

        # A thin HubClient resyncs its nonce from the hub and spends —
        # it shares a keypair with fleet signer 0 but none of its local
        # nonce state, so a successful withdrawal below proves the
        # query-then-count resynchronisation protocol.
        client0 = HubClient(HOST, handles["hub"].control_port,
                            keypair=fleet.signers[0].keypair)
        balance0 = client0.balance()

        # One withdrawal per external route, both exactly accounted.
        w_channel = 20
        w_chain = 10
        assert balance0 >= w_channel + w_chain
        client0.withdraw(w_channel, route="channel",
                         destination=channels["alice"])
        chain_result = client0.withdraw(
            w_chain, route="chain", destination="live-payout-address")
        assert chain_result["txid"]
        _poll(lambda: alice.call(
                  "channel",
                  channel_id=channels["alice"])["my_balance"] == w_channel,
              what="channel withdrawal to reach alice")
        assert client0.balance() == balance0 - w_channel - w_chain

        stats = hub.call("account-stats")["hub"]
        assert stats["withdrawn_total"] == w_channel + w_chain
        assert stats["conserved"] and stats["solvent"]
        client0.close()

        drops = asyncio.run(transport_drops(
            [(HOST, handle.control_port) for handle in handles.values()]))
        counters = hub.call("metrics")["metrics"]["counters"]

        # Alice's channel is unbalanced by the withdrawal, so it settles
        # on-chain; bob's is balanced and settles off-chain, leaving its
        # deposit locked until reclaim spends it back to the hub.
        settled = hub.call("settle", channel_id=channels["alice"])
        assert not settled["offchain"]
        hub.call("reclaim")
        _poll(lambda: alice.call("balance")["onchain"]
              == GENESIS + w_channel,
              what="settlement to credit alice's wallet")
        _poll(lambda: hub.call("balance")["onchain"]
              == GENESIS - w_channel - w_chain,
              what="settlement + reclaim to return the hub's funds")
        hub_onchain = hub.call("balance")["onchain"]
        after = hub.call("account-stats")["hub"]
    finally:
        for handle in handles.values():
            handle.shutdown()

    assert drops["protocol"] == 0
    assert counters.get("hub.accounts") == ACCOUNTS
    assert counters.get("hub.account_pays") == expected_pays
    assert counters.get("hub.rejected_sigs") == 1
    assert counters.get("hub.rejected_nonces") == 1

    # Conservation survives settlement: the ledger invariant still
    # holds, and every token the enclave released is accounted for —
    # the channel withdrawal reached alice, the chain payout left the
    # hub's wallet, and the rest of the channel funds came home.
    assert after["conserved"]
    assert hub_onchain == GENESIS - w_channel - w_chain


WORKERS = 2
SHARD_ACCOUNTS = 120
SHARD_DEPOSIT = 40_000


@pytest.mark.live(timeout=300)
def test_sharded_hub_accounts():
    # RouterThread reuses the sharded-live module's ALLOCATIONS, which
    # already funds hub-w0/hub-w1; the spoke entries are inert here.
    router = RouterThread()
    control = ControlClient(HOST, router.router.control_port, timeout=120)
    worker_names = [f"hub-w{i}" for i in range(WORKERS)]
    ring = HashRing(worker_names)
    try:
        # Backing per worker: a free deposit routed to it via a peer
        # name the ring assigns there (free deposits back the ledger
        # like channel balances do).
        for worker in worker_names:
            peer = next(f"probe{i}" for i in range(1000)
                        if ring.owner(f"probe{i}") == worker)
            control.call("deposit", value=SHARD_DEPOSIT, peer=peer)

        control.call("hub-fee", fee_per_pay=0)
        fleet = AccountFleet(SHARD_ACCOUNTS, seed_prefix="live-shard",
                             worker_names=worker_names)
        per_account = SHARD_DEPOSIT * WORKERS // (2 * SHARD_ACCOUNTS)
        opened = []
        for batch in fleet.open_batches(per_account, batch_size=64):
            response = control.call("account-pay-many", requests=batch)
            assert response["rejected"] == 0
            opened.extend(response["results"])
        assert len(opened) == SHARD_ACCOUNTS

        # Every account landed on its ring owner.
        for signer in fleet.signers:
            result = control.call(
                "account-query", request=signer.query_request())
            assert result["worker"] == ring.owner(
                f"account:{signer.account_hex}")

        # Ring-aware pairing never crosses shards, so a fleet-driven
        # load runs clean through the router.
        load = asyncio.run(run_closed_loop(
            fleet.pay_targets(HOST, router.router.control_port, 1,
                              streams=2),
            50, concurrency=2, registry=MetricsRegistry()))
        assert load.errors == 0, load.rejected
        assert load.completed == 100

        # An explicit cross-shard pay is refused with the stable code.
        by_owner = {}
        for signer in fleet.signers:
            owner = ring.owner(f"account:{signer.account_hex}")
            by_owner.setdefault(owner, signer)
        payer, payee = (by_owner[name] for name in worker_names)
        cross = sign_request(
            AccountPay(payer.account, payee.account, 1, 10**6),
            payer.keypair.private)
        with pytest.raises(ControlError) as excinfo:
            control.call("account-pay", request=cross)
        assert excinfo.value.code == "cross_shard"

        # The account-route withdraw is the same internal move and gets
        # the same refusal (not a misleading no_such_account).
        cross_withdraw = sign_request(
            AccountWithdraw(payer.account, 1, 10**6, "account",
                            payee.account_hex),
            payer.keypair.private)
        with pytest.raises(ControlError) as excinfo:
            control.call("account-withdraw", request=cross_withdraw)
        assert excinfo.value.code == "cross_shard"

        stats = control.call("account-stats")
        assert set(stats["workers"]) == set(worker_names)
        merged = stats["hub"]
        assert merged["accounts"] == SHARD_ACCOUNTS
        assert merged["pays"] == 100
        assert merged["deposited_total"] == SHARD_ACCOUNTS * per_account
        assert merged["conserved"] and merged["solvent"]
    finally:
        try:
            control.close()
        finally:
            router.close()
