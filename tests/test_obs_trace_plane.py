"""The distributed tracing plane, tested without sockets.

Covers the pieces the live e2e (test_runtime_trace_live.py) exercises
end-to-end, but in isolation and with synthetic clocks: the causal
context/tracer semantics, the per-daemon :class:`TelemetryCollector`,
NTP-style skew estimation and the multi-node merge, the Perfetto and
Prometheus exporters, the checked-in trace schema, and the
``python -m repro.obs.merge`` CLI.  Also the DES-mode analogue of the
live acceptance test: one multihop payment through the simulator emits
all six pipeline stage spans per hop under a single trace id.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro import obs
from repro.bench.harness import ExperimentResult
from repro.obs import (
    Histogram,
    MetricsRegistry,
    TraceContext,
    Tracer,
    chrome_trace,
    exponential_buckets,
    linear_buckets,
    load_json,
    op_span,
    prometheus_text,
)
from repro.obs.collector import TelemetryCollector
from repro.obs.merge import (
    estimate_offset,
    main as merge_main,
    merge_dumps,
    validate_perfetto,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SCHEMA_PATH = REPO_ROOT / "benchmarks" / "perfetto_trace.schema.json"

STAGES = ["lock", "sign", "preUpdate", "update", "postUpdate", "release"]


class FakeClock:
    """A settable clock for driving tracers and collectors."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_root_is_parentless_with_fresh_ids(self):
        root = TraceContext.root()
        assert root.parent_id == ""
        assert root.trace_id and root.span_id
        other = TraceContext.root()
        assert other.trace_id != root.trace_id

    def test_child_keeps_trace_and_chains_parent(self):
        root = TraceContext.root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_fields_round_trip(self):
        context = TraceContext.root().child()
        fields = context.fields()
        assert set(fields) == {"trace", "span", "parent"}
        rebuilt = TraceContext.from_fields(
            fields["trace"], fields["span"], fields["parent"])
        assert rebuilt == context

    def test_empty_trace_id_is_the_untraced_sentinel(self):
        assert TraceContext.from_fields("", "abc", "def") is None


# ---------------------------------------------------------------------------
# Tracer causal semantics
# ---------------------------------------------------------------------------

class TestTracerCausality:
    def test_emit_without_context_stays_untagged(self):
        tracer = Tracer()
        tracer.emit("plain", detail=1)
        [event] = tracer.events()
        assert "trace" not in event and "span" not in event

    def test_activate_stamps_and_restores(self):
        tracer = Tracer()
        context = TraceContext.root()
        with tracer.activate(context):
            tracer.emit("inside")
        tracer.emit("outside")
        inside, outside = tracer.events()
        assert inside["trace"] == context.trace_id
        assert inside["span"] == context.span_id
        assert "trace" not in outside
        assert tracer.context is None

    def test_activate_none_keeps_current_context(self):
        tracer = Tracer()
        context = TraceContext.root()
        with tracer.activate(context):
            with tracer.activate(None):
                assert tracer.context is context

    def test_span_derives_child_and_events_nest_under_it(self):
        clock = FakeClock()
        tracer = Tracer(now=clock)
        root = TraceContext.root()
        with tracer.activate(root):
            with tracer.span("work") as child:
                clock.advance(1.5)
                tracer.emit("step")
        step, work = tracer.events()
        assert child.parent_id == root.span_id
        # The event inside the span belongs to the span's own context.
        assert step["span"] == child.span_id
        assert work["span"] == child.span_id
        assert work["parent"] == root.span_id
        assert work["duration"] == pytest.approx(1.5)

    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer()
        with tracer.root_span("op") as context:
            tracer.emit("inner")
        inner, op = tracer.events()
        assert op["trace"] == context.trace_id
        assert op["parent"] == ""
        assert inner["trace"] == context.trace_id
        assert tracer.context is None

    def test_op_span_roots_then_nests(self):
        with obs.collecting() as (_registry, tracer):
            with op_span("outer") as outer:
                with op_span("inner") as inner:
                    pass
        assert outer.parent_id == ""
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id


# ---------------------------------------------------------------------------
# Metrics satellites: quantile edge cases and bucket validation
# ---------------------------------------------------------------------------

class TestMetricsSatellites:
    def test_quantile_zero_is_the_minimum(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        # First bucket stays empty: q=0 must not report its bound.
        histogram.record(1.7)
        histogram.record(3.0)
        assert histogram.quantile(0.0) == 1.7
        assert histogram.quantile(1.0) == 4.0

    def test_quantile_rejects_nan_and_out_of_range(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.record(0.5)
        for bad in (float("nan"), -0.1, 1.1):
            with pytest.raises(ValueError):
                histogram.quantile(bad)
        assert Histogram("empty").quantile(0.0) is None

    def test_linear_buckets_reject_nonpositive_width(self):
        for width in (0, -1.0):
            with pytest.raises(ValueError):
                linear_buckets(1.0, width, 4)
        assert linear_buckets(1.0, 0.5, 3) == (1.0, 1.5, 2.0)

    def test_exponential_buckets_reject_bad_factor_and_start(self):
        for factor in (1.0, 0.5, -2.0):
            with pytest.raises(ValueError):
                exponential_buckets(1.0, factor, 4)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)


# ---------------------------------------------------------------------------
# TelemetryCollector
# ---------------------------------------------------------------------------

class TestTelemetryCollector:
    def _collector(self):
        clock = FakeClock(10.0)
        wall = FakeClock(1_000.0)
        tracer = Tracer(now=clock)
        metrics = MetricsRegistry()
        collector = TelemetryCollector("alice", tracer, metrics,
                                       now=clock, wall=wall)
        return collector, tracer, metrics, clock, wall

    def test_trace_dump_shape(self):
        collector, tracer, _metrics, clock, wall = self._collector()
        tracer.emit("evt", detail=1)
        clock.advance(2.0)
        wall.advance(2.0)
        dump = collector.trace_dump(peer_offsets={"bob": 0.25})
        assert dump["node"] == "alice"
        assert dump["now"] == 12.0 and dump["wall"] == 1_002.0
        assert dump["started"] == 10.0
        assert dump["events"] == [{"t": 10.0, "event": "evt", "detail": 1}]
        assert dump["emitted"] == 1 and dump["dropped"] == 0
        assert dump["peer_offsets"] == {"bob": 0.25}

    def test_metrics_delta_cursors(self):
        collector, _tracer, metrics, _clock, _wall = self._collector()
        metrics.inc("sent", 3)
        metrics.observe("lat", 0.5)
        first = collector.metrics_delta()
        assert first["seq"] == 1
        assert first["counters"] == {"sent": 3}
        assert first["histograms"]["lat"] == {"count": 1, "sum": 0.5}
        # Nothing changed: the next delta is empty, not a repeat.
        second = collector.metrics_delta()
        assert second["seq"] == 2
        assert second["counters"] == {} and second["histograms"] == {}
        metrics.inc("sent")
        third = collector.metrics_delta()
        assert third["counters"] == {"sent": 1}

    def test_health_carries_extras(self):
        collector, tracer, _metrics, clock, _wall = self._collector()
        tracer.emit("evt")
        clock.advance(5.0)
        health = collector.health(peers=2, tracing=True)
        assert health["status"] == "ok"
        assert health["uptime"] == 5.0
        assert health["trace_events"] == 1
        assert health["peers"] == 2 and health["tracing"] is True


# ---------------------------------------------------------------------------
# Skew estimation and the merge
# ---------------------------------------------------------------------------

class TestMerge:
    def test_estimate_offset_recovers_known_skew(self):
        # Responder's clock reads 5 s ahead; symmetric 0.2 s paths.
        offset = estimate_offset(t_sent=10.0, t_echo=10.0, t_received=15.2,
                                 t_ack_sent=15.3, t_ack_received=10.5)
        assert offset == pytest.approx(5.0)
        # Reverse direction: responder behind.
        offset = estimate_offset(t_sent=15.0, t_echo=15.0, t_received=10.2,
                                 t_ack_sent=10.3, t_ack_received=15.5)
        assert offset == pytest.approx(-5.0)

    def _dump(self, node, events, peer_offsets=None, now=0.0, wall=0.0):
        return {"node": node, "now": now, "wall": wall, "started": 0.0,
                "events": events, "emitted": len(events), "dropped": 0,
                "capacity": 8192, "peer_offsets": peer_offsets or {}}

    def test_merge_corrects_skew_via_offset_chain(self):
        # bob's clock reads 5 s ahead of alice's; carol 2 s ahead of
        # bob's (alice never talked to carol — BFS must chain).
        dumps = [
            self._dump("alice", [{"t": 1.0, "event": "a.send"}],
                       peer_offsets={"bob": 5.0}),
            self._dump("bob", [{"t": 6.2, "event": "b.relay"}],
                       peer_offsets={"carol": 2.0}),
            self._dump("carol", [{"t": 8.4, "event": "c.recv"}]),
        ]
        merged = merge_dumps(dumps, reference="alice")
        assert merged["offsets"] == {"alice": 0.0, "bob": -5.0, "carol": -7.0}
        names = [event["event"] for event in merged["events"]]
        assert names == ["a.send", "b.relay", "c.recv"]
        times = [event["t"] for event in merged["events"]]
        assert times == pytest.approx([1.0, 1.2, 1.4])

    def test_merge_falls_back_to_wall_clock(self):
        # No handshake offsets at all: align on each dump's wall/local
        # clock pair.  dave's local clock started 5 s after alice's.
        dumps = [
            self._dump("alice", [{"t": 7.0, "event": "a"}],
                       now=7.0, wall=100.0),
            self._dump("dave", [{"t": 2.0, "event": "d"}],
                       now=2.0, wall=100.0),
        ]
        merged = merge_dumps(dumps, reference="alice")
        assert merged["offsets"]["dave"] == pytest.approx(5.0)
        dave = [e for e in merged["events"] if e["node"] == "dave"][0]
        assert dave["t"] == pytest.approx(7.0)

    def test_merge_clamps_child_before_parent(self):
        # Residual estimation error: the child's corrected start lands
        # 50 ms before its parent's.  The clamp floors it.
        dumps = [
            self._dump("alice", [
                {"t": 2.0, "event": "parent", "duration": 1.0,
                 "trace": "T", "span": "P", "parent": ""},
            ]),
            self._dump("bob", [
                {"t": 1.2, "event": "child", "duration": 0.25,
                 "trace": "T", "span": "C", "parent": "P"},
            ]),
        ]
        merged = merge_dumps(dumps, reference="alice")
        assert merged["clamped"] == 1
        child = [e for e in merged["events"] if e["event"] == "child"][0]
        parent = [e for e in merged["events"] if e["event"] == "parent"][0]
        assert child["start"] == parent["start"] == 1.0

    def test_merge_prefers_explicit_start(self):
        # An emitter-recorded start wins over t − duration (clock reads
        # inside emit() drift by microseconds; see multihop._mark_stages).
        dumps = [self._dump("alice", [
            {"t": 2.000004, "event": "stage", "duration": 1.0, "start": 1.0},
        ])]
        [event] = merge_dumps(dumps)["events"]
        assert event["start"] == 1.0

    def test_merge_empty_and_dropped_accounting(self):
        assert merge_dumps([]) == {
            "reference": None, "offsets": {}, "nodes": [],
            "clamped": 0, "dropped": 0, "events": [],
        }
        dump = self._dump("alice", [])
        dump["dropped"] = 7
        assert merge_dumps([dump])["dropped"] == 7


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def test_duration_and_instant_events(self):
        payload = chrome_trace([
            {"t": 2.0, "event": "multihop.stage.lock", "duration": 0.5,
             "start": 1.5, "node": "alice", "trace": "T", "span": "S",
             "parent": "P", "payment": "pay-1"},
            {"t": 3.0, "event": "note", "node": "bob"},
        ])
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        # One process-name metadata row per node, in first-seen order.
        meta = [e for e in events if e["ph"] == "M"]
        assert [(e["pid"], e["args"]["name"]) for e in meta] == [
            (1, "alice"), (2, "bob")]
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["name"] == "multihop.stage.lock"
        assert span["cat"] == "multihop"
        assert span["ts"] == pytest.approx(1.5e6)
        assert span["dur"] == pytest.approx(0.5e6)
        # Non-meta fields land in args; the causal triple is kept.
        assert span["args"] == {"payment": "pay-1", "trace": "T",
                                "span": "S", "parent": "P"}
        instant = [e for e in events if e["ph"] == "i"][0]
        assert instant["s"] == "t" and instant["ts"] == pytest.approx(3.0e6)

    def test_output_matches_checked_in_schema(self):
        schema = load_json(str(SCHEMA_PATH))
        payload = chrome_trace([
            {"t": 1.0, "event": "a.b", "duration": 0.5, "node": "alice"},
            {"t": 2.0, "event": "c", "node": "bob"},
        ])
        assert validate_perfetto(payload, schema) == []


class TestPrometheusText:
    def test_counters_gauges_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("messages_sent", 4)
        registry.inc("multihop.stage[lock]", 2)
        registry.set_gauge("queue_depth", 3.5)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_messages_sent_total counter" in text
        assert "repro_messages_sent_total 4" in text
        # bracket-label names become one key= label; dots sanitised.
        assert 'repro_multihop_stage_total{key="lock"} 2' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3.5" in text
        assert text.endswith("\n")

    def test_histogram_is_cumulative_with_inf_bucket(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 9.0):
            registry.observe("lat[hop]", value, buckets=(1.0, 2.0))
        text = prometheus_text(registry.snapshot())
        assert 'repro_lat_bucket{key="hop",le="1.0"} 1' in text
        assert 'repro_lat_bucket{key="hop",le="2.0"} 2' in text
        assert 'repro_lat_bucket{key="hop",le="+Inf"} 3' in text
        assert 'repro_lat_sum{key="hop"} 11.0' in text
        assert 'repro_lat_count{key="hop"} 3' in text


# ---------------------------------------------------------------------------
# Schema validation + merge CLI
# ---------------------------------------------------------------------------

class TestValidatePerfetto:
    def test_reports_type_required_and_enum_violations(self):
        schema = load_json(str(SCHEMA_PATH))
        assert any("traceEvents" in error
                   for error in validate_perfetto({}, schema))
        errors = validate_perfetto(
            {"traceEvents": [{"name": 1, "ph": "Q", "pid": 1, "tid": 0}],
             "displayTimeUnit": "ms"},
            schema)
        assert any("expected string" in error for error in errors)
        assert any("'Q' not in" in error for error in errors)
        assert validate_perfetto(
            {"traceEvents": "nope", "displayTimeUnit": "ms"}, schema)

    def test_nested_paths_name_the_offender(self):
        errors = validate_perfetto(
            {"traceEvents": [{}], "displayTimeUnit": "ms"},
            load_json(str(SCHEMA_PATH)))
        assert any(error.startswith("$.traceEvents[0]:") for error in errors)


class TestMergeCli:
    def _write_dumps(self, tmp_path):
        dumps = [
            {"node": "alice", "now": 5.0, "wall": 50.0,
             "events": [{"t": 1.0, "event": "a.send", "duration": 0.5}],
             "peer_offsets": {"bob": 2.0}},
            {"node": "bob", "now": 7.0, "wall": 50.0,
             "events": [{"t": 3.4, "event": "b.recv"}],
             "peer_offsets": {}},
        ]
        paths = []
        for dump in dumps:
            path = tmp_path / f"{dump['node']}.json"
            path.write_text(json.dumps(dump))
            paths.append(str(path))
        return paths

    def test_merge_writes_timeline_and_perfetto(self, tmp_path, capsys):
        merged_path = tmp_path / "merged.json"
        trace_path = tmp_path / "trace.json"
        code = merge_main(self._write_dumps(tmp_path)
                          + ["-o", str(merged_path),
                             "--perfetto", str(trace_path),
                             "--reference", "alice"])
        assert code == 0
        assert "merged 2 events from 2 nodes" in capsys.readouterr().out
        merged = json.loads(merged_path.read_text())
        assert merged["nodes"] == ["alice", "bob"]
        assert [e["event"] for e in merged["events"]] == ["a.send", "b.recv"]
        perfetto = json.loads(trace_path.read_text())
        assert validate_perfetto(perfetto, load_json(str(SCHEMA_PATH))) == []

    def test_validate_mode_gates_on_schema(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(
            chrome_trace([{"t": 1.0, "event": "x", "duration": 0.5}])))
        assert merge_main(["--validate-perfetto", str(good),
                           "--schema", str(SCHEMA_PATH)]) == 0
        assert "valid" in capsys.readouterr().out
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"displayTimeUnit": "ms"}))
        assert merge_main(["--validate-perfetto", str(bad),
                           "--schema", str(SCHEMA_PATH)]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.out
        assert "schema violation" in captured.err


# ---------------------------------------------------------------------------
# Sidecar round-trip through the benchmark harness
# ---------------------------------------------------------------------------

class TestSidecarRoundTrip:
    def test_report_writes_trace_bearing_sidecar(self, tmp_path, monkeypatch,
                                                 capsys):
        # Load benchmarks/conftest.py the way pytest would, then point its
        # BENCH_DIR at a temp dir so the round-trip never dirties the repo.
        spec = importlib.util.spec_from_file_location(
            "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py")
        bench_conftest = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_conftest)
        monkeypatch.setattr(bench_conftest, "BENCH_DIR", str(tmp_path))

        registry = MetricsRegistry()
        tracer = Tracer()
        with tracer.root_span("multihop.pay", payment="p-1"):
            registry.observe("multihop.stage_seconds[lock]", 0.002)
        rows = [ExperimentResult("fig4", "3 hops", "latency",
                                 measured=1.2, paper=1.0, unit="ms")]
        bench_conftest.report("unit test", rows, sidecar="unit_trace",
                              metrics=registry, tracer=tracer)
        out = capsys.readouterr().out
        assert "unit test" in out and "metrics sidecar:" in out

        payload = load_json(str(tmp_path / "BENCH_unit_trace.json"))
        assert payload["benchmark"] == "unit_trace"
        assert payload["results"][0]["configuration"] == "3 hops"
        histograms = payload["metrics"]["histograms"]
        assert "multihop.stage_seconds[lock]" in histograms
        [event] = payload["trace"]["events"]
        assert event["event"] == "multihop.pay"
        assert event["trace"] and event["parent"] == ""


# ---------------------------------------------------------------------------
# DES-mode acceptance: one multihop payment, six stage spans per hop
# ---------------------------------------------------------------------------

class TestDesMultihopTrace:
    def test_six_stage_spans_per_hop_under_one_trace(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with obs.collecting() as (_registry, tracer):
            alice.pay_multihop([alice, bob, carol], 1_000)
        events = tracer.events()
        stage_events = [event for event in events
                        if event["event"].startswith("multihop.stage.")]
        by_position = {}
        for event in stage_events:
            by_position.setdefault(event["position"], []).append(
                event["event"].rsplit(".", 1)[1])
        assert len(by_position) == 3  # one participant per path position
        for position, stages in sorted(by_position.items()):
            assert stages == STAGES, f"hop {position}: {stages}"
        # One trace spans every hop, rooted at the paying node's op span.
        trace_ids = {event.get("trace") for event in stage_events}
        assert len(trace_ids) == 1 and None not in trace_ids
        roots = [event for event in events
                 if event["event"] == "multihop.pay"
                 and event.get("trace") in trace_ids]
        assert roots and roots[0]["parent"] == ""
        # Stage events carry the explicit start the merge tool prefers.
        for event in stage_events:
            assert "start" in event and event["start"] <= event["t"]
        # The whole timeline renders as schema-valid Perfetto JSON.
        payload = chrome_trace(events)
        assert validate_perfetto(payload,
                                 load_json(str(SCHEMA_PATH))) == []
