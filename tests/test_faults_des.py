"""Fault-schedule semantics and DES-injector determinism.

The contract under test: a :class:`FaultSchedule` is a value (immutable,
serialisable), and replaying one on the discrete-event simulator is
bit-deterministic — same seed, same schedule, same workload ⇒ an
identical event trace.  That property is what makes a chaos-test failure
reproducible from its seed alone.
"""

import pytest

from repro.core.node import TeechainNetwork
from repro.faults import (
    DES_KINDS,
    LIVE_KINDS,
    DesFaultInjector,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    run_crash_cell,
)
from repro.network.topology import fig3_topology


# ---------------------------------------------------------------------------
# Schedule-as-value semantics
# ---------------------------------------------------------------------------

class TestFaultSchedule:
    def test_builders_compose_immutably(self):
        base = FaultSchedule(seed=3)
        derived = base.crash("alice", point="mh_lock").partition("a", "b")
        assert len(base.faults) == 0
        assert len(derived.faults) == 2
        assert derived.seed == 3

    def test_json_round_trip(self):
        schedule = (FaultSchedule(seed=11)
                    .crash("alice", point="mh_lock", note="cell")
                    .loss("alice", "bob", 0.25)
                    .delay("bob", "alice", 0.010)
                    .reorder("alice", "bob", window=4)
                    .stall_chain("carol", at=2.5)
                    .kill("bob", at=1.0)
                    .corrupt_control("alice"))
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_mode_filters_split_kinds(self):
        schedule = (FaultSchedule()
                    .crash("a")
                    .loss("a", "b", 0.5)
                    .kill("a")
                    .sever("a", "b"))
        des = {spec.kind for spec in schedule.des_faults()}
        live = {spec.kind for spec in schedule.live_faults()}
        assert des == {FaultKind.CRASH, FaultKind.LOSS}
        assert live == {FaultKind.CRASH, FaultKind.KILL, FaultKind.SEVER}
        # CRASH is the one kind both modes deliver.
        assert FaultKind.CRASH in DES_KINDS & LIVE_KINDS

    def test_loss_probability_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule().loss("a", "b", 1.5)

    def test_reorder_window_validated(self):
        with pytest.raises(ValueError):
            FaultSchedule().reorder("a", "b", window=1)

    def test_link_target_parsing(self):
        spec = FaultSpec(FaultKind.PARTITION, "alice->bob")
        assert spec.link() == ("alice", "bob")
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.PARTITION, "alice").link()

    def test_point_matching_is_prefix_safe(self):
        bare = FaultSpec(FaultKind.CRASH, "a", point="mh_lock")
        assert bare.matches_point("mh_lock:mh-1")
        assert bare.matches_point("mh_lock")
        # The bare name must never bleed into a longer point name.
        assert not bare.matches_point("mh_lock_last:mh-1")
        pinned = FaultSpec(FaultKind.CRASH, "a", point="mh_lock:mh-7")
        assert pinned.matches_point("mh_lock:mh-7")
        assert not pinned.matches_point("mh_lock:mh-8")


# ---------------------------------------------------------------------------
# DES replay determinism
# ---------------------------------------------------------------------------

def _payment_trace(schedule_seed: int, payments: int = 12):
    """A two-node DES workload under delay+duplicate+reorder+loss chaos;
    returns the injector's event trace."""
    network = TeechainNetwork(transport="simulated",
                              topology=fig3_topology())
    alice = network.create_node("US", funds=100_000)
    bob = network.create_node("UK1", funds=100_000)
    # Clean setup, then chaos: the schedule arms after the channel is
    # funded, so every run enters the chaotic phase from the same state.
    channel = alice.open_channel(bob)
    network.run()
    record = alice.create_deposit(50_000)
    alice.approve_deposit(bob, record)
    network.run()
    alice.associate_deposit(channel, record)
    network.run()

    schedule = (FaultSchedule(seed=schedule_seed)
                .loss("US", "UK1", 0.3)
                .delay("UK1", "US", 0.020)
                .duplicate("UK1", "US")
                .reorder("US", "UK1", window=3))
    injector = DesFaultInjector(network, schedule)
    injector.arm()
    for _ in range(payments):
        alice.pay(channel, 100)
        network.run()
    trace = list(injector.trace)
    injector.detach()
    return trace


def test_same_seed_same_trace():
    first = _payment_trace(schedule_seed=7)
    second = _payment_trace(schedule_seed=7)
    assert first, "chaos workload produced no traffic"
    assert first == second


def test_different_seed_different_trace():
    # 12 payments × 30% loss × window-3 shuffles: two seeds agreeing on
    # every draw would be astronomically unlikely.
    assert _payment_trace(schedule_seed=1) != _payment_trace(schedule_seed=2)


def test_trace_records_suppressed_sends_too():
    """The trace tap sits before the adversary, so even a fully
    partitioned link still shows the send attempts."""
    network = TeechainNetwork(transport="simulated",
                              topology=fig3_topology())
    alice = network.create_node("US", funds=100_000)
    network.create_node("UK1", funds=100_000)
    injector = DesFaultInjector(
        network,
        FaultSchedule().partition("US", "UK1", bidirectional=True))
    injector.arm()
    channel = alice.open_channel(network.nodes["UK1"])
    network.run()
    assert any(sender == "US" and destination == "UK1"
               for _, sender, destination, _ in injector.trace)
    # ...but the handshake never completed across the dead link.
    assert not alice.program.channels[channel].is_open
    injector.detach()


def test_stall_chain_eclipses_writer():
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=10_000)
    network.create_node("bob", funds=10_000)
    injector = DesFaultInjector(
        network, FaultSchedule().stall_chain("alice"))
    injector.arm()
    assert "*" in alice.adversary.censored
    DesFaultInjector(network, FaultSchedule().resume_chain("alice")).arm()
    assert "*" not in alice.adversary.censored


def test_timed_fault_fires_on_simulated_clock():
    network = TeechainNetwork(transport="simulated",
                              topology=fig3_topology())
    network.create_node("US", funds=10_000)
    network.create_node("UK1", funds=10_000)
    injector = DesFaultInjector(
        network, FaultSchedule().partition("US", "UK1", at=5.0))
    injector.arm()
    assert injector.injected == []
    network.run(until=10.0)
    assert ("partition", "US->UK1", "") in injector.injected


def test_crash_cell_smoke():
    """One representative matrix cell runs in the default suite; the full
    18-cell sweep lives behind the chaos marker."""
    result = run_crash_cell("hop", "update")
    assert result.crash_fired
    assert result.ok, result.violations
