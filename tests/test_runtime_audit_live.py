"""``audit-snapshot`` atomicity against live daemons.

The audit plane's conservation argument (DESIGN.md §14) leans on one
property: a snapshot is taken inside the ecall boundary in a single
event-loop slice, so it can never observe a payment half-applied.  These
tests attack exactly that — a thread hammers ``pay`` while the main
thread snapshots as fast as it can, and *every* snapshot must show the
channel total and the fleet sum intact.  The same is then demanded of a
:class:`~repro.runtime.workers.ShardedDaemon` aggregate, where the
merged snapshot spans worker processes.
"""

import asyncio
import threading

import pytest

from repro.runtime.control import ControlClient, wait_for_control
from repro.runtime.launch import HOST, free_port, launch_network, spawn_daemon
from repro.runtime.workers import ShardedDaemon

GENESIS = 200_000
DEPOSIT = 60_000
PAYS = 400


def _hammer(client, channel_id, errors, amount=3, pays=PAYS):
    try:
        for _ in range(pays):
            client.call("pay", channel_id=channel_id, amount=amount)
    except Exception as exc:  # noqa: BLE001 — surfaced by the test body
        errors.append(exc)


@pytest.mark.live
def test_audit_snapshot_atomic_under_concurrent_pays():
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    payer = None
    try:
        alice = handles["alice"].control
        bob = handles["bob"].control
        cid = alice.call("open-channel", peer="bob")["channel_id"]
        deposit = alice.call("deposit", value=DEPOSIT)
        alice.call("approve-associate", peer="bob", channel_id=cid,
                   txid=deposit["txid"])
        deposit = bob.call("deposit", value=DEPOSIT)
        bob.call("approve-associate", peer="alice", channel_id=cid,
                 txid=deposit["txid"])

        payer = ControlClient(HOST, handles["alice"].control_port,
                              timeout=60)
        errors = []
        thread = threading.Thread(target=_hammer,
                                  args=(payer, cid, errors))
        thread.start()
        seqs = []
        while thread.is_alive():
            snaps = {"alice": alice.call("audit-snapshot"),
                     "bob": bob.call("audit-snapshot")}
            seqs.append(snaps["alice"]["seq"])
            totals = []
            for name, snapshot in snaps.items():
                channel = snapshot["channels"][cid]
                # The pay ecall debits one leg and credits the other in
                # the same slice: a snapshot must never catch the gap.
                assert channel["total"] == 2 * DEPOSIT, (name, channel)
                assert channel["my_balance"] >= 0
                assert channel["remote_balance"] >= 0
                totals.append(channel["total"])
            observed = sum(
                s["onchain"] + s["free_deposit_value"]
                for s in snaps.values()) + min(totals)
            assert observed == 2 * GENESIS
        thread.join()
        assert errors == []
        # The snapshot stream genuinely overlapped the payment stream,
        # and each snapshot consumed a fresh enclave sequence number.
        assert len(seqs) >= 3
        assert all(b > a for a, b in zip(seqs, seqs[1:]))
    finally:
        if payer is not None:
            payer.close()
        for handle in handles.values():
            handle.shutdown()


WORKERS = 2
SPOKES = ("spoke1", "spoke2")
ALLOCATIONS = {f"hub-w{i}": GENESIS for i in range(WORKERS)}
ALLOCATIONS.update({name: GENESIS for name in SPOKES})


class RouterThread:
    """ShardedDaemon on its own loop so blocking clients can drive it."""

    def __init__(self) -> None:
        self.router = ShardedDaemon("hub", allocations=ALLOCATIONS,
                                    workers=WORKERS)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=90):
            raise TimeoutError("sharded router failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.router.start()
            self._started.set()
            await self.router.run_until_shutdown()

        self.loop.run_until_complete(main())
        self.loop.run_until_complete(asyncio.sleep(0.25))
        self.loop.close()

    def close(self) -> None:
        try:
            ControlClient(HOST, self.router.control_port,
                          timeout=30).call("shutdown")
        except Exception:  # noqa: BLE001 — teardown best effort
            pass
        self._thread.join(timeout=30)


@pytest.mark.live(timeout=300)
def test_audit_snapshot_aggregate_across_sharded_workers():
    processes, clients = [], []
    router = None
    payer = None
    try:
        spokes = {}
        for name in SPOKES:
            port, control_port = free_port(), free_port()
            processes.append(spawn_daemon(name, port, control_port,
                                          ALLOCATIONS))
            spokes[name] = (port, control_port)
        for name, (port, control_port) in spokes.items():
            clients.append(wait_for_control(HOST, control_port))
        router = RouterThread()
        control = ControlClient(HOST, router.router.control_port,
                                timeout=120)
        clients.append(control)

        channels = {}
        for name in SPOKES:
            control.call("connect", peer=name, host=HOST,
                         port=spokes[name][0])
            channels[name] = control.call("open-channel",
                                          peer=name)["channel_id"]
        for name in SPOKES:
            deposit = control.call("deposit", value=DEPOSIT, peer=name)
            control.call("approve-associate", peer=name,
                         channel_id=channels[name], txid=deposit["txid"])

        payer = ControlClient(HOST, router.router.control_port,
                              timeout=120)
        errors = []
        thread = threading.Thread(
            target=_hammer, args=(payer, channels[SPOKES[0]], errors),
            kwargs={"pays": 200})
        thread.start()
        polls = 0
        while thread.is_alive():
            snapshot = control.call("audit-snapshot")
            polls += 1
            assert len(snapshot["workers"]) == WORKERS
            # The merged channel map is a disjoint union over owners: a
            # payment lives entirely inside one worker's slice, so every
            # channel shows its full funded total on every poll.
            for name, cid in channels.items():
                assert snapshot["channels"][cid]["total"] == DEPOSIT, name
            observed = (snapshot["onchain"]
                        + snapshot["free_deposit_value"]
                        + sum(channel["total"] for channel in
                              snapshot["channels"].values()))
            assert observed == WORKERS * GENESIS
        thread.join()
        assert errors == []
        assert polls >= 3
    finally:
        if payer is not None:
            payer.close()
        if router is not None:
            router.close()
        for client in clients:
            try:
                client.call("shutdown")
            except Exception:  # noqa: BLE001
                pass
            client.close()
        for process in processes:
            try:
                process.wait(timeout=10)
            except Exception:  # noqa: BLE001
                process.kill()
