"""Live stress: a hub serving concurrent bidirectional load from 3 spokes.

The acceptance test for the backpressured payment pipeline and the
``repro.load`` generators: four real daemon processes, one channel per
spoke, closed-loop payment streams driven concurrently in *both*
directions on every channel — with §7.2 client-side batching enabled on
the hub, so hub→spoke payments cross as batches carrying
``batch_count``.

Three properties must survive the concurrency:

* **no loss** — zero protocol-plane frames dropped by the flow-controlled
  transport (the old send path silently dropped on queue overflow);
* **exact accounting** — every logical payment lands in the program
  counters (batched payments via their ``batch_count``), on both ends;
* **conservation** — after settling every channel, on-chain balances are
  exactly genesis ± net flow, and their sum is unchanged.
"""

import asyncio
import time

import pytest

from repro.load import LoadTarget, run_closed_loop, transport_drops
from repro.runtime.launch import HOST, launch_network

SPOKES = 3
GENESIS = 200_000
DEPOSIT = 30_000
PAYMENTS = 40        # per direction per channel
CONCURRENCY = 2      # closed-loop users per stream
HUB_TO_SPOKE, SPOKE_TO_HUB = 2, 1
BATCH_WINDOW_MS = 20

NET = PAYMENTS * (HUB_TO_SPOKE - SPOKE_TO_HUB)  # hub→spoke per channel


def _poll(predicate, timeout=30.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        time.sleep(interval)


@pytest.mark.live
def test_hub_under_concurrent_bidirectional_load():
    names = ["hub"] + [f"spoke{i}" for i in range(SPOKES)]
    handles, _ = launch_network({name: GENESIS for name in names})
    hub = handles["hub"].control
    spokes = {name: handles[name].control for name in names[1:]}
    try:
        channels = {}
        for name, spoke in spokes.items():
            cid = hub.call("open-channel", peer=name)["channel_id"]
            channels[name] = cid
            deposit = hub.call("deposit", value=DEPOSIT)
            hub.call("approve-associate", peer=name, channel_id=cid,
                     txid=deposit["txid"])
            deposit = spoke.call("deposit", value=DEPOSIT)
            spoke.call("approve-associate", peer="hub", channel_id=cid,
                       txid=deposit["txid"])

        # Batch on the hub: its outgoing payments get merged per window
        # and cross as single protocol payments with batch_count.
        assert hub.call("batch-window",
                        window_ms=BATCH_WINDOW_MS)["enabled"]

        targets = []
        for name, cid in channels.items():
            targets.append(LoadTarget(
                HOST, handles["hub"].control_port, cid,
                amount=HUB_TO_SPOKE, label=f"hub->{name}"))
            targets.append(LoadTarget(
                HOST, handles[name].control_port, cid,
                amount=SPOKE_TO_HUB, label=f"{name}->hub"))
        load = asyncio.run(run_closed_loop(targets, PAYMENTS,
                                           concurrency=CONCURRENCY))
        assert load.errors == 0
        assert load.completed == 2 * SPOKES * PAYMENTS
        for row in load.targets:
            assert row["completed"] == PAYMENTS, row["target"]
            assert row["latency"]["count"] == PAYMENTS

        # Disabling the window flushes whatever the last timer had not
        # fired for, so the ledgers can fully converge.
        hub.call("batch-window", window_ms=0)

        def converged(client, cid, mine, theirs):
            snapshot = client.call("channel", channel_id=cid)
            return (snapshot["my_balance"] == mine
                    and snapshot["remote_balance"] == theirs)

        for name, cid in channels.items():
            _poll(lambda: converged(hub, cid, DEPOSIT - NET, DEPOSIT + NET)
                  and converged(spokes[name], cid,
                                DEPOSIT + NET, DEPOSIT - NET),
                  what=f"channel {cid} to converge")

        # Batching accounted for every logical payment: each hub-driven
        # payment passed through the batcher, and batch_count expanded
        # back to per-payment program counters on both ends.
        stats = hub.call("stats")
        assert stats["batching"]["payments_batched"] == SPOKES * PAYMENTS
        assert stats["batching"]["pending"] == 0
        assert 1 <= stats["batching"]["batches_flushed"] <= SPOKES * PAYMENTS
        assert stats["payments"]["sent"] == SPOKES * PAYMENTS
        assert stats["payments"]["received"] == SPOKES * PAYMENTS
        for name, spoke in spokes.items():
            payments = spoke.call("stats")["payments"]
            assert payments["sent"] == PAYMENTS, name
            assert payments["received"] == PAYMENTS, name

        # The flow-controlled transport lost nothing on either plane.
        drops = asyncio.run(transport_drops(
            [(HOST, handle.control_port) for handle in handles.values()]))
        assert drops["protocol"] == 0, drops
        assert drops["control"] == 0, drops

        for cid in channels.values():
            settlement = hub.call("settle", channel_id=cid)
            assert settlement["txid"] is not None  # asymmetric → on-chain

        balances = {name: handles[name].control.call("balance")["onchain"]
                    for name in names}
    finally:
        for handle in handles.values():
            handle.shutdown()

    assert balances["hub"] == GENESIS - SPOKES * NET
    for name in names[1:]:
        assert balances[name] == GENESIS + NET
    assert sum(balances.values()) == len(names) * GENESIS
