"""Discrete-event simulator: clock monotonicity, event ordering,
cancellation, and run bounds."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Clock, Scheduler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            Clock(-1.0)

    def test_advance(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_backwards_rejected(self):
        clock = Clock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_advance_to_same_time_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0


class TestScheduler:
    def test_events_run_in_time_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.call_after(2.0, lambda: order.append("late"))
        scheduler.call_after(1.0, lambda: order.append("early"))
        scheduler.run()
        assert order == ["early", "late"]

    def test_fifo_at_equal_times(self):
        scheduler = Scheduler()
        order = []
        for index in range(5):
            scheduler.call_at(1.0, lambda i=index: order.append(i))
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_follows_events(self):
        scheduler = Scheduler()
        times = []
        scheduler.call_after(0.5, lambda: times.append(scheduler.now))
        scheduler.call_after(1.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [0.5, 1.5]

    def test_cancel(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.call_after(1.0, lambda: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        scheduler = Scheduler()
        event = scheduler.call_after(1.0, lambda: None)
        event.cancel()
        event.cancel()
        scheduler.run()

    def test_scheduling_in_the_past_rejected(self):
        scheduler = Scheduler()
        scheduler.call_after(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().call_after(-0.1, lambda: None)

    def test_run_until(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(1.0, lambda: fired.append("a"))
        scheduler.call_after(3.0, lambda: fired.append("b"))
        scheduler.run(until=2.0)
        assert fired == ["a"]
        assert scheduler.now == 2.0
        scheduler.run()
        assert fired == ["a", "b"]

    def test_run_until_inclusive(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_at(2.0, lambda: fired.append("edge"))
        scheduler.run(until=2.0)
        assert fired == ["edge"]

    def test_events_scheduled_during_run(self):
        scheduler = Scheduler()
        order = []

        def first():
            order.append("first")
            scheduler.call_after(1.0, lambda: order.append("chained"))

        scheduler.call_after(1.0, first)
        scheduler.run()
        assert order == ["first", "chained"]
        assert scheduler.now == 2.0

    def test_max_events_guard(self):
        scheduler = Scheduler()

        def forever():
            scheduler.call_after(0.001, forever)

        scheduler.call_after(0.001, forever)
        with pytest.raises(SimulationError):
            scheduler.run_until_idle(max_events=100)

    def test_run_until_with_max_events_reaches_until(self):
        # max_events stops the loop after draining everything ≤ until:
        # the documented "clock left at until" contract must still hold.
        scheduler = Scheduler()
        fired = []
        for time in (1.0, 2.0, 3.0):
            scheduler.call_at(time, lambda t=time: fired.append(t))
        scheduler.run(until=5.0, max_events=3)
        assert fired == [1.0, 2.0, 3.0]
        assert scheduler.now == 5.0

    def test_run_max_events_with_pending_event_keeps_clock(self):
        # An event at 3.0 ≤ until is still pending when max_events stops
        # the loop; the clock must not jump past it (that would poison
        # the next step() with a backwards clock move).
        scheduler = Scheduler()
        fired = []
        for time in (1.0, 2.0, 3.0):
            scheduler.call_at(time, lambda t=time: fired.append(t))
        scheduler.run(until=5.0, max_events=2)
        assert fired == [1.0, 2.0]
        assert scheduler.now == 2.0
        scheduler.run(until=5.0)  # resumes cleanly, no SimulationError
        assert fired == [1.0, 2.0, 3.0]
        assert scheduler.now == 5.0

    def test_run_until_past_queue_with_max_events(self):
        # Pending events beyond until don't block the clock contract.
        scheduler = Scheduler()
        scheduler.call_at(1.0, lambda: None)
        scheduler.call_at(9.0, lambda: None)
        scheduler.run(until=5.0, max_events=10)
        assert scheduler.now == 5.0
        assert scheduler.pending == 1

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_events_processed_counter(self):
        scheduler = Scheduler()
        for _ in range(3):
            scheduler.call_after(1.0, lambda: None)
        scheduler.run()
        assert scheduler.events_processed == 3
