"""RoutePlanner unit tests: determinism, caching, cost models, capacity.

The planner is the single route-selection implementation shared by the
DES (`repro.bench.netsim`), the live daemons (`pay-multihop dest=`), and
the in-memory `TeechainNode.pay_to` — so its contract is pinned here,
independent of any one consumer.
"""

import pytest

from repro.errors import RoutingError
from repro.network.topology import hub_and_spoke_overlay
from repro.obs import MetricsRegistry
from repro.routing import RoutePlanner, TopologyView
from repro.workloads import scale_free_overlay


def _bidirectional(view, a, b, capacity, *, fee_base=0, fee_rate_ppm=0,
                   seq=0):
    cid = f"{min(a, b)}--{max(a, b)}"
    for origin, peer in ((a, b), (b, a)):
        view.upsert(origin=origin, peer=peer, channel_id=cid,
                    capacity=capacity, seq=seq, fee_base=fee_base,
                    fee_rate_ppm=fee_rate_ppm)


def _line_view(names, capacity=100):
    view = TopologyView()
    for a, b in zip(names, names[1:]):
        _bidirectional(view, a, b, capacity)
    return view


class TestDeterminism:
    def test_same_topology_same_seed_same_routes(self):
        overlay = scale_free_overlay(200, attach=2, seed=7)
        pairs = [(f"n{i}", f"n{199 - i}") for i in range(0, 60, 3)]
        first = RoutePlanner.from_overlay(overlay, seed=3)
        second = RoutePlanner.from_overlay(overlay, seed=3)
        for source, target in pairs:
            assert (first.find_route(source, target)
                    == second.find_route(source, target))
            # k-shortest enumeration is deterministic too.
            assert (list(first.iter_routes(source, target, limit=3))
                    == list(second.iter_routes(source, target, limit=3)))

    def test_attempt_sequence_is_reproducible(self):
        overlay = hub_and_spoke_overlay()
        first = RoutePlanner.from_overlay(overlay, seed=5)
        second = RoutePlanner.from_overlay(overlay, seed=5)
        spokes = [n for n in overlay.nodes if overlay.tier_of[n] == 3]
        for attempt in range(4):
            assert (first.route_for_attempt(spokes[0], spokes[-1], attempt)
                    == second.route_for_attempt(spokes[0], spokes[-1],
                                                attempt))

    def test_routes_are_valid_paths(self):
        overlay = scale_free_overlay(100, attach=2, seed=1)
        planner = RoutePlanner.from_overlay(overlay, seed=1)
        channels = {frozenset(c) for c in overlay.channels}
        route = planner.find_route("n3", "n97")
        assert route[0] == "n3" and route[-1] == "n97"
        for a, b in zip(route, route[1:]):
            assert frozenset((a, b)) in channels


class TestCache:
    def test_repeat_queries_hit_the_cache(self):
        metrics = MetricsRegistry()
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay(),
                                            metrics=metrics)
        planner.find_route("Nleaf1", "Nleaf18")
        info = planner.cache_info()
        assert info["misses"] >= 1
        before_hits = info["hits"]
        planner.find_route("Nleaf1", "Nleaf18")
        assert planner.cache_info()["hits"] == before_hits + 1
        snap = metrics.snapshot()["counters"]
        assert snap["routing.cache_hits"] == planner.cache_info()["hits"]
        assert snap["routing.cache_misses"] == planner.cache_info()["misses"]

    def test_view_change_invalidates_cached_routes(self):
        view = _line_view(["a", "b", "c"])
        planner = RoutePlanner(view)
        assert planner.find_route("a", "c") == ["a", "b", "c"]
        # A new channel a--c makes a shorter route; the planner must see
        # it on the next query, not serve the stale cached path.
        _bidirectional(view, "a", "c", 100)
        assert planner.find_route("a", "c") == ["a", "c"]
        assert planner.cache_info()["routes"] <= 1  # caches were flushed

    def test_amount_folding_shares_cache_entries(self):
        # Amounts at or below every edge capacity can't change the
        # route, so they fold to one cache entry.
        view = _line_view(["a", "b", "c"], capacity=1_000)
        planner = RoutePlanner(view)
        planner.find_route("a", "c", amount=1)
        before = planner.cache_info()["misses"]
        planner.find_route("a", "c", amount=999)
        assert planner.cache_info()["misses"] == before


class TestCostModels:
    def _fee_topology(self):
        # a--b--d charges fees; a--x--y--d is longer but free.
        view = TopologyView()
        _bidirectional(view, "a", "b", 100, fee_base=50)
        _bidirectional(view, "b", "d", 100, fee_base=50)
        _bidirectional(view, "a", "x", 100)
        _bidirectional(view, "x", "y", 100)
        _bidirectional(view, "y", "d", 100)
        return view

    def test_hop_cost_prefers_short(self):
        planner = RoutePlanner(self._fee_topology(), cost="hops")
        assert planner.find_route("a", "d") == ["a", "b", "d"]

    def test_fee_cost_prefers_cheap(self):
        planner = RoutePlanner(self._fee_topology(), cost="fees")
        assert planner.find_route("a", "d", amount=10) == ["a", "x", "y",
                                                           "d"]

    def test_custom_cost_callable(self):
        # A cost that loathes node b routes around it.
        def avoid_b(edge, amount):
            return 1_000.0 if "b" in (edge.source, edge.target) else 1.0

        planner = RoutePlanner(self._fee_topology(), cost=avoid_b)
        assert "b" not in planner.find_route("a", "d")


class TestCapacity:
    def test_underfunded_edges_are_excluded(self):
        view = TopologyView()
        _bidirectional(view, "a", "b", 5)     # too small for amount=10
        _bidirectional(view, "b", "d", 100)
        _bidirectional(view, "a", "x", 100)
        _bidirectional(view, "x", "d", 100)
        planner = RoutePlanner(view)
        assert planner.find_route("a", "d", amount=10) == ["a", "x", "d"]
        # Below the bottleneck the short route comes back.
        assert planner.find_route("a", "d", amount=5) == ["a", "b", "d"]

    def test_no_route_when_amount_exceeds_all_cuts(self):
        view = _line_view(["a", "b", "c"], capacity=10)
        planner = RoutePlanner(view)
        with pytest.raises(RoutingError):
            planner.find_route("a", "c", amount=11)
        assert planner.try_route("a", "c", amount=11) is None

    def test_directional_capacity(self):
        # Teechain funds each direction separately: a→b can afford 100
        # while b→a only 1.
        view = TopologyView()
        view.upsert(origin="a", peer="b", channel_id="ab", capacity=100,
                    seq=0)
        view.upsert(origin="b", peer="a", channel_id="ab", capacity=1,
                    seq=0)
        planner = RoutePlanner(view)
        assert planner.find_route("a", "b", amount=100) == ["a", "b"]
        with pytest.raises(RoutingError):
            planner.find_route("b", "a", amount=2)


class TestAttempts:
    def test_attempt_zero_is_shortest(self):
        planner = RoutePlanner.from_overlay(hub_and_spoke_overlay())
        assert (planner.route_for_attempt("Nleaf1", "Nleaf18", 0)
                == planner.find_route("Nleaf1", "Nleaf18"))

    def test_later_attempts_walk_the_k_shortest_list(self):
        view = TopologyView()
        _bidirectional(view, "a", "b", 100)
        _bidirectional(view, "b", "d", 100)
        _bidirectional(view, "a", "x", 100)
        _bidirectional(view, "x", "y", 100)
        _bidirectional(view, "y", "d", 100)
        planner = RoutePlanner(view)
        assert planner.route_for_attempt("a", "d", 0) == ["a", "b", "d"]
        assert planner.route_for_attempt("a", "d", 1) == ["a", "x", "y",
                                                          "d"]
        # Attempts beyond the number of distinct paths reuse the last.
        assert planner.route_for_attempt("a", "d", 9) == ["a", "x", "y",
                                                          "d"]

    def test_unreachable_returns_none(self):
        planner = RoutePlanner(_line_view(["a", "b"]))
        assert planner.route_for_attempt("a", "ghost", 0) is None
        assert planner.route_for_attempt("a", "ghost", 2) is None
