"""Fleet audit plane: auditor invariants, exposition format, collector.

Three suites, none touching sockets:

* :class:`TestInvariantAuditor` drives :class:`repro.obs.audit.
  InvariantAuditor` with synthetic ``audit-snapshot`` dicts — the same
  shapes the daemon emits — and checks the alert lifecycle: severity,
  persistence thresholds, escalation, clears, last-good caching.
* :class:`TestPrometheusExposition` validates the text exposition
  against the 0.0.4 format rules with an in-test parser: one ``# TYPE``
  per family, every sample contiguous under its family header, label
  values escaped.
* :class:`TestTelemetryCollector` pins the ``metrics_delta`` cursor
  contract under overlapping pollers and the ``health`` field contract.
"""

import re

from repro.obs import MetricsRegistry, Tracer
from repro.obs.audit import CRITICAL, WARN, InvariantAuditor
from repro.obs.collector import TelemetryCollector
from repro.obs.export import fleet_prometheus_text, prometheus_text

# ---------------------------------------------------------------------------
# Synthetic audit-snapshot builders
# ---------------------------------------------------------------------------


def chan(mine, theirs, unsigned=0, terminated=False):
    return {
        "is_open": not terminated, "terminated": terminated,
        "my_balance": mine, "remote_balance": theirs,
        "total": mine + theirs, "locked_amount": 0,
        "fastpath_unsigned": unsigned,
    }


def snap(onchain=0, free=0, channels=None, hub=None, fastpath=None,
         outbox=0, transport=None):
    return {
        "seq": 1, "onchain": onchain, "free_deposit_value": free,
        "channels": dict(channels or {}),
        "payments_sent": 0, "payments_received": 0,
        "outbox_pending": outbox,
        "fastpath": fastpath or {"enabled": False, "checkpoint_every": 0,
                                 "unsigned_total": 0},
        "transport": dict(transport or {}),
        **({"hub": hub} if hub is not None else {}),
    }


def hub_block(liabilities=0, backing=0, conserved=True, solvent=True,
              payout_pending=0):
    return {
        "accounts": 1, "total_balance": liabilities,
        "liabilities": liabilities, "backing": backing,
        "deposited_total": liabilities, "withdrawn_total": 0,
        "withdrawn_onchain": 0, "payout_pending": payout_pending,
        "conserved": conserved, "solvent": solvent,
    }


def codes(alerts):
    return {alert.code for alert in alerts}


class TestInvariantAuditor:
    def test_quiescent_fleet_raises_nothing(self):
        auditor = InvariantAuditor()
        cid = "alice:bob:1"
        sweep = {
            "alice": snap(onchain=60, channels={cid: chan(25, 15)}),
            "bob": snap(onchain=60, channels={cid: chan(15, 25)}),
        }
        for t in (1.0, 2.0, 3.0):
            assert auditor.audit(sweep, t) == []
        # First sweep's observed total became the baseline.
        assert auditor.expected_total == 160
        assert auditor.last_components == {
            "onchain": 120, "free_deposits": 0, "channels": 40}

    def test_payment_inside_a_channel_conserves(self):
        auditor = InvariantAuditor()
        cid = "a:b:1"
        auditor.audit({"a": snap(channels={cid: chan(30, 10)}),
                       "b": snap(channels={cid: chan(10, 30)})}, 1.0)
        # A payment moved 7 within the channel: totals unchanged.
        alerts = auditor.audit(
            {"a": snap(channels={cid: chan(23, 17)}),
             "b": snap(channels={cid: chan(17, 23)})}, 2.0)
        assert alerts == []

    def test_surplus_is_critical_immediately_and_stays_on_record(self):
        auditor = InvariantAuditor(expected_total=100)
        alerts = auditor.audit({"a": snap(onchain=130)}, 1.0)
        assert codes(alerts) == {"CONSERVATION_SURPLUS"}
        assert alerts[0].severity == CRITICAL
        # Healing clears the alert but the CRITICAL stays on record.
        assert auditor.audit({"a": snap(onchain=100)}, 2.0) == []
        assert len(auditor.critical_alerts()) == 1
        assert auditor.critical_alerts()[0].cleared_at == 2.0

    def test_deficit_warns_only_after_persisting(self):
        auditor = InvariantAuditor(expected_total=100, deficit_sweeps=3)
        deficit = {"a": snap(onchain=90)}
        assert auditor.audit(deficit, 1.0) == []
        assert auditor.audit(deficit, 2.0) == []
        alerts = auditor.audit(deficit, 3.0)
        assert codes(alerts) == {"CONSERVATION_DEFICIT"}
        assert alerts[0].severity == WARN
        assert auditor.audit({"a": snap(onchain=100)}, 4.0) == []
        assert auditor.critical_alerts() == []
        assert auditor.log[0].cleared_at == 4.0
        # A fresh transient must re-accumulate the full streak.
        assert auditor.audit(deficit, 5.0) == []

    def test_min_endpoint_rule_retires_settling_channel(self):
        auditor = InvariantAuditor(expected_total=100)
        cid = "a:b:1"
        live = {"a": snap(onchain=30, channels={cid: chan(25, 15)}),
                "b": snap(onchain=30, channels={cid: chan(15, 25)})}
        assert auditor.audit(live, 1.0) == []
        # a settled: its side zeroed synchronously, b still stale, the
        # settlement is in the mempool.  min() must retire the channel
        # without the stale side minting a surplus.
        settling = {"a": snap(onchain=30,
                              channels={cid: chan(0, 0, terminated=True)}),
                    "b": snap(onchain=30, channels={cid: chan(15, 25)})}
        assert codes(auditor.audit(settling, 2.0)) <= set()
        # Mined: settled funds land on-chain, conservation exact again.
        settled = {"a": snap(onchain=55,
                             channels={cid: chan(0, 0, terminated=True)}),
                   "b": snap(onchain=45,
                             channels={cid: chan(0, 0, terminated=True)})}
        assert auditor.audit(settled, 3.0) == []
        assert auditor.critical_alerts() == []

    def test_mirror_divergence_warns_when_persistent(self):
        auditor = InvariantAuditor(expected_total=40, deficit_sweeps=2)
        cid = "a:b:1"
        diverged = {"a": snap(channels={cid: chan(25, 15)}),
                    "b": snap(channels={cid: chan(15, 21)})}
        first = auditor.audit(diverged, 1.0)
        assert "CHANNEL_MIRROR_DIVERGED" not in codes(first)
        second = auditor.audit(diverged, 2.0)
        assert "CHANNEL_MIRROR_DIVERGED" in codes(second)
        alert = next(a for a in second
                     if a.code == "CHANNEL_MIRROR_DIVERGED")
        assert alert.subject == cid

    def test_hub_flags_are_critical(self):
        auditor = InvariantAuditor(expected_total=0)
        alerts = auditor.audit({
            "hub": snap(hub=hub_block(liabilities=50, backing=40,
                                      conserved=False, solvent=False)),
        }, 1.0)
        assert {"HUB_NOT_CONSERVED", "HUB_INSOLVENT"} <= codes(alerts)
        assert all(a.severity == CRITICAL for a in alerts)

    def test_negative_balance_is_critical(self):
        auditor = InvariantAuditor(expected_total=0)
        alerts = auditor.audit(
            {"a": snap(channels={"a:b:1": chan(-5, 5)})}, 1.0)
        assert "NEGATIVE_BALANCE" in codes(alerts)

    def test_fastpath_lag_warns_at_k_and_escalates_past_2k(self):
        auditor = InvariantAuditor(expected_total=40)
        fast = {"enabled": True, "checkpoint_every": 4,
                "unsigned_total": 0}

        def at(unsigned):
            return {"a": snap(channels={"a:b:1": chan(20, 20, unsigned)},
                              fastpath=dict(fast))}

        assert auditor.audit(at(3), 1.0) == []
        alerts = auditor.audit(at(4), 2.0)
        assert codes(alerts) == {"FASTPATH_LAG"}
        assert alerts[0].severity == WARN
        # Past 2K the same alert escalates in place — never a second row.
        alerts = auditor.audit(at(9), 3.0)
        assert alerts[0].severity == CRITICAL
        assert len(auditor.log) == 1
        assert auditor.audit(at(0), 4.0) == []
        assert len(auditor.critical_alerts()) == 1

    def test_outbox_and_payout_stuck_need_consecutive_sweeps(self):
        auditor = InvariantAuditor(expected_total=0, stuck_sweeps=2)
        stuck = {"hub": snap(outbox=3,
                             hub=hub_block(payout_pending=10))}
        assert auditor.audit(stuck, 1.0) == []
        assert codes(auditor.audit(stuck, 2.0)) == {"OUTBOX_STUCK",
                                                    "PAYOUT_STUCK"}
        clean = {"hub": snap(hub=hub_block())}
        assert auditor.audit(clean, 3.0) == []

    def test_scrape_failure_keeps_last_good_snapshot_in_the_sum(self):
        auditor = InvariantAuditor(deficit_sweeps=1)
        cid = "a:b:1"
        live = {"a": snap(onchain=30, channels={cid: chan(25, 15)}),
                "b": snap(onchain=30, channels={cid: chan(15, 25)})}
        assert auditor.audit(live, 1.0) == []
        # b stops answering: WARN, but its wallet and channel must not
        # vanish from the observed sum and fake a deficit.
        down = {"a": live["a"], "b": None}
        alerts = auditor.audit(down, 2.0)
        assert codes(alerts) == {"SCRAPE_FAILED"}
        assert auditor.last_observed == 100
        assert auditor.audit(live, 3.0) == []
        assert auditor.log[0].cleared_at == 3.0

    def test_transport_deltas_baseline_then_fire_then_clear(self):
        auditor = InvariantAuditor(expected_total=0)

        def at(reconnects, waits):
            return {"a": snap(transport={
                "peers": 2, "disconnected": 0,
                "reconnects": reconnects, "backpressure_waits": waits,
                "drops_protocol": 0, "drops_control": 0, "queued": 0,
            })}

        # First observation is the baseline — prior history never alerts.
        assert auditor.audit(at(5, 7), 1.0) == []
        alerts = auditor.audit(at(7, 9), 2.0)
        assert codes(alerts) == {"RECONNECT", "BACKPRESSURE"}
        assert all(a.severity == WARN for a in alerts)
        # Counters flat again: both clear on the next sweep.
        assert auditor.audit(at(7, 9), 3.0) == []
        assert all(a.cleared_at == 3.0 for a in auditor.log)

    def test_peer_disconnected_only_from_live_snapshots(self):
        auditor = InvariantAuditor(expected_total=0)
        down_link = {"a": snap(transport={"peers": 1, "disconnected": 1})}
        assert codes(auditor.audit(down_link, 1.0)) == {"PEER_DISCONNECTED"}
        # Once the scrape itself fails, the cached snapshot's stale
        # transport state must not keep the link alert alive.
        alerts = auditor.audit({"a": None}, 2.0)
        assert codes(alerts) == {"SCRAPE_FAILED"}

    def test_alert_metrics_counters(self):
        registry = MetricsRegistry()
        auditor = InvariantAuditor(expected_total=100, metrics=registry)
        auditor.audit({"a": snap(onchain=130)}, 1.0)
        auditor.audit({"a": snap(onchain=100)}, 2.0)
        counters = registry.snapshot()["counters"]
        assert counters["alerts.raised[CONSERVATION_SURPLUS]"] == 1
        assert counters["alerts.critical"] == 1
        assert counters["alerts.cleared"] == 1

    def test_summary_is_json_shaped(self):
        auditor = InvariantAuditor(expected_total=100)
        auditor.audit({"a": snap(onchain=130)}, 1.0)
        summary = auditor.summary()
        assert summary["observed_total"] == 130
        assert summary["expected_total"] == 100
        assert summary["criticals"][0]["code"] == "CONSERVATION_SURPLUS"
        assert summary["log"] == summary["criticals"]


# ---------------------------------------------------------------------------
# Prometheus exposition (text format 0.0.4)
# ---------------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                    r'"(?P<value>(?:[^"\\]|\\.)*)"')


def parse_exposition(text):
    """Minimal 0.0.4 parser that *enforces* the format rules: a unique
    ``# TYPE`` per family, every sample contiguous under its family's
    header (histogram ``_bucket``/``_sum``/``_count`` included), label
    values well-escaped.  Returns ``(families, samples)`` where samples
    are ``(family, name, labels-dict, value)``."""
    families = {}
    samples = []
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert name not in families, f"duplicate # TYPE for {name}"
            families[name] = kind
            current = name
            continue
        assert not line.startswith("#"), line
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        assert current is not None, f"sample {name} before any # TYPE"
        base = name
        if families[current] == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if name == current + suffix:
                    base = current
        assert base == current, (
            f"sample {name} not contiguous with its family "
            f"(current block: {current})")
        labels = {}
        raw = match.group("labels")
        if raw:
            spans = list(_LABEL.finditer(raw))
            joined = ",".join(span.group(0) for span in spans)
            assert joined == raw, f"malformed label set: {raw!r}"
            for span in spans:
                value = (span.group("value")
                         .replace("\\n", "\n")
                         .replace('\\"', '"')
                         .replace("\\\\", "\\"))
                labels[span.group("key")] = value
        value = match.group("value")
        samples.append((base, name, labels,
                        float(value) if value != "+Inf" else value))
    return families, samples


class TestPrometheusExposition:
    def test_interleaved_bracket_families_are_regrouped(self):
        registry = MetricsRegistry()
        # Snapshot key order interleaves the pay family with another —
        # the exposition must still emit each family contiguously.
        registry.inc("pay[alice]")
        registry.inc("other")
        registry.inc("pay[bob]", 2)
        families, samples = parse_exposition(
            prometheus_text(registry.snapshot()))
        assert families == {"repro_pay_total": "counter",
                            "repro_other_total": "counter"}
        pay = {labels["key"]: value for family, _, labels, value in samples
               if family == "repro_pay_total"}
        assert pay == {"alice": 1.0, "bob": 2.0}

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        weird = 'a\\b"c\nd'
        registry.inc(f"drops[{weird}]")
        text = prometheus_text(registry.snapshot())
        families, samples = parse_exposition(text)
        # The value round-trips exactly through escape + parse.
        assert samples[0][2]["key"] == weird

    def test_histogram_block_is_contiguous_and_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.002)
        registry.observe("latency", 0.004)
        registry.inc("pays")
        families, samples = parse_exposition(
            prometheus_text(registry.snapshot()))
        assert families["repro_latency"] == "histogram"
        buckets = [value for family, name, _, value in samples
                   if name == "repro_latency_bucket"]
        assert buckets == sorted(buckets)  # cumulative, never decreasing
        count = next(value for _, name, _, value in samples
                     if name == "repro_latency_count")
        assert count == 2.0

    def test_cross_kind_name_clash_never_duplicates_type(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue", 3)
        registry.observe("queue", 1.0)
        families, _ = parse_exposition(prometheus_text(registry.snapshot()))
        assert families["repro_queue"] == "gauge"
        assert families["repro_queue_histogram"] == "histogram"

    def test_fleet_merge_one_type_per_family_with_node_labels(self):
        alice, bob = MetricsRegistry(), MetricsRegistry()
        alice.inc("pays", 3)
        alice.set_gauge("height", 7)
        bob.inc("pays", 5)
        bob.inc("drops[proto]")
        text = fleet_prometheus_text({"alice": alice.snapshot(),
                                      "bob": bob.snapshot()})
        families, samples = parse_exposition(text)
        assert families["repro_pays_total"] == "counter"
        pays = {labels["node"]: value for family, _, labels, value in samples
                if family == "repro_pays_total"}
        assert pays == {"alice": 3.0, "bob": 5.0}
        dropped = next(labels for family, _, labels, _ in samples
                       if family == "repro_drops_total")
        assert dropped == {"node": "bob", "key": "proto"}


# ---------------------------------------------------------------------------
# TelemetryCollector: delta cursor + health contract
# ---------------------------------------------------------------------------


class TestTelemetryCollector:
    def _collector(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        clock = {"t": 100.0}
        collector = TelemetryCollector(
            "alice", tracer, registry,
            now=lambda: clock["t"], wall=lambda: 1_000.0)
        return collector, registry, tracer, clock

    def test_overlapping_pollers_share_one_cursor_without_loss(self):
        collector, registry, _, _ = self._collector()
        # Two pollers interleave against the single-cursor stream; the
        # contract is that *across all calls* every increment is
        # reported exactly once — no double counting, nothing lost.
        seen = {"pays": 0.0, "drops": 0.0}
        seqs = []
        for round_number in range(1, 6):
            registry.inc("pays", round_number)
            for _poller in ("top", "fleet"):
                delta = collector.metrics_delta()
                seqs.append(delta["seq"])
                for name, value in delta["counters"].items():
                    seen[name] += value
                registry.inc("drops")  # lands mid-overlap
        final = collector.metrics_delta()
        for name, value in final["counters"].items():
            seen[name] += value
        totals = registry.snapshot()["counters"]
        assert seen == {"pays": totals["pays"], "drops": totals["drops"]}
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_delta_omits_unchanged_and_reports_gauges_absolute(self):
        collector, registry, _, _ = self._collector()
        registry.inc("pays", 4)
        registry.set_gauge("height", 9)
        first = collector.metrics_delta()
        assert first["counters"] == {"pays": 4}
        assert first["gauges"]["height"]["value"] == 9
        registry.set_gauge("height", 12)
        second = collector.metrics_delta()
        assert second["counters"] == {}  # unchanged counters drop out
        assert second["gauges"]["height"]["value"] == 12

    def test_histogram_deltas_carry_count_and_sum_since_last_call(self):
        collector, registry, _, _ = self._collector()
        registry.observe("latency", 0.5)
        registry.observe("latency", 1.5)
        first = collector.metrics_delta()
        assert first["histograms"]["latency"] == {"count": 2, "sum": 2.0}
        registry.observe("latency", 0.25)
        second = collector.metrics_delta()
        assert second["histograms"]["latency"] == {"count": 1, "sum": 0.25}
        assert "latency" not in collector.metrics_delta()["histograms"]

    def test_health_field_contract(self):
        collector, _, tracer, clock = self._collector()
        tracer.emit("pay.start")
        clock["t"] = 107.5
        health = collector.health(peers=3, channels=2,
                                  chain_height=11, tracing=True)
        # The stable core every poller may rely on...
        assert health["node"] == "alice"
        assert health["status"] == "ok"
        assert health["uptime"] == 7.5
        assert health["trace_events"] == 1
        assert health["trace_emitted"] == 1
        assert health["trace_dropped"] == 0
        # ...plus whatever the daemon layered on top, verbatim.
        assert health["peers"] == 3
        assert health["channels"] == 2
        assert health["chain_height"] == 11
        assert health["tracing"] is True
