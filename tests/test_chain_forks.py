"""Fork choice, reorgs, and the fee market (chain realism)."""

import pytest

from repro.blockchain import (
    Blockchain,
    LockingScript,
    build_p2pkh_transfer,
)
from repro.blockchain.chain import Block
from repro.crypto import KeyPair
from repro.errors import BlockchainError, InvalidTransaction
from repro.faults import run_all_chain_cells

ALICE = KeyPair.from_seed(b"fork-alice")
BOB = KeyPair.from_seed(b"fork-bob")
MINER = "miner-address"


def _funded_chain(value=100_000):
    chain = Blockchain()
    coinbase = chain.mint(LockingScript.pay_to_address(ALICE.address()), value)
    chain.mine_block()
    return chain, coinbase


def _transfer(coinbase, value, pay, fee=0):
    return build_p2pkh_transfer(
        [(coinbase.outpoint(0), value)], ALICE.private,
        [(BOB.address(), pay), (ALICE.address(), value - pay - fee)],
    )


class TestBlockIdentity:
    def test_sibling_blocks_do_not_collide(self):
        # Regression: without miner/nonce in the header preimage, two
        # sibling blocks with the same parent, transactions, and
        # timestamp hashed identically, corrupting fork bookkeeping.
        chain, _ = _funded_chain()
        parent = chain.tip_hash
        first = chain.mine_block(timestamp=5.0, transactions=())
        second = chain.mine_block(timestamp=5.0, parent=parent,
                                  transactions=())
        assert first.previous_hash == second.previous_hash == parent
        assert first.transactions == second.transactions
        assert first.timestamp == second.timestamp
        assert first.block_hash != second.block_hash

    def test_miner_address_is_part_of_identity(self):
        block_a = Block(height=1, previous_hash="0" * 64, transactions=(),
                        timestamp=0.0, miner="a", nonce=1)
        block_b = Block(height=1, previous_hash="0" * 64, transactions=(),
                        timestamp=0.0, miner="b", nonce=1)
        assert block_a.block_hash != block_b.block_hash


class TestMintGossip:
    def test_mint_fires_submit_listeners(self):
        # Regression: mint() used to bypass the submit listeners, so a
        # live daemon's minted endowment never gossiped to its peers.
        chain = Blockchain()
        seen = []
        chain.subscribe_submit(lambda tx: seen.append(tx.txid))
        coinbase = chain.mint(
            LockingScript.pay_to_address(ALICE.address()), 1_000)
        assert seen == [coinbase.txid]


class TestForkChoice:
    def test_deeper_branch_wins_and_confirmations_reset(self):
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=40_000)
        chain.submit(transfer)
        fork_parent = chain.tip_hash
        chain.mine_block(timestamp=1.0)
        assert chain.confirmations(transfer.txid) == 1

        rival = chain.mine_block(timestamp=1.0, parent=fork_parent,
                                 transactions=())
        # Height tie: the first-seen branch stays active.
        assert chain.confirmations(transfer.txid) == 1
        chain.mine_block(timestamp=2.0, parent=rival.block_hash,
                         transactions=())
        # The two-block branch outweighs; the transfer is unconfirmed.
        assert chain.confirmations(transfer.txid) == 0
        assert chain.in_mempool(transfer.txid)
        assert chain.reorg_count == 1

    def test_evicted_transaction_reconfirms_with_same_txid(self):
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=40_000)
        chain.submit(transfer)
        fork_parent = chain.tip_hash
        chain.mine_block(timestamp=1.0)
        rival = chain.mine_block(timestamp=1.0, parent=fork_parent,
                                 transactions=())
        chain.mine_block(timestamp=2.0, parent=rival.block_hash,
                         transactions=())
        chain.mine_block(timestamp=3.0)  # mines the returned mempool
        assert chain.confirmations(transfer.txid) == 1
        assert chain.balance(BOB.address()) == 40_000

    def test_resubmit_after_reorg_is_idempotent(self):
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=40_000)
        chain.submit(transfer)
        fork_parent = chain.tip_hash
        chain.mine_block(timestamp=1.0)
        rival = chain.mine_block(timestamp=1.0, parent=fork_parent,
                                 transactions=())
        chain.mine_block(timestamp=2.0, parent=rival.block_hash,
                         transactions=())
        assert chain.in_mempool(transfer.txid)
        # A peer re-gossiping the evicted transaction must be a no-op.
        assert chain.submit(transfer) == transfer.txid
        assert chain.mempool_size() == 1

    def test_reorg_event_reports_depth_and_evictions(self):
        chain, coinbase = _funded_chain()
        events = []
        chain.subscribe_reorg(events.append)
        transfer = _transfer(coinbase, 100_000, pay=10_000)
        chain.submit(transfer)
        fork_parent = chain.tip_hash
        chain.mine_block(timestamp=1.0)
        rival = chain.mine_block(timestamp=1.0, parent=fork_parent,
                                 transactions=())
        chain.mine_block(timestamp=2.0, parent=rival.block_hash,
                         transactions=())
        assert len(events) == 1
        event = events[0]
        assert event.depth == 1
        assert [tx.txid for tx in event.evicted] == [transfer.txid]
        assert event.new_tip == chain.tip_hash

    def test_receive_block_orphan_then_connect(self):
        sender, _ = _funded_chain()
        child = sender.mine_block(timestamp=1.0, transactions=())
        grandchild = sender.mine_block(timestamp=2.0, transactions=())

        receiver, _ = _funded_chain()  # identical genesis by construction
        assert receiver.receive_block(grandchild) == "orphan"
        assert receiver.height == 1
        assert receiver.receive_block(child) == "connected"
        # Connecting the parent flushes the waiting orphan too.
        assert receiver.tip_hash == grandchild.block_hash
        assert receiver.receive_block(grandchild) == "known"

    def test_total_minted_conserved_across_reorg(self):
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=25_000, fee=1_000)
        chain.submit(transfer)
        fork_parent = chain.tip_hash
        chain.mine_block(timestamp=1.0, miner=MINER)
        assert chain.utxos.total_value() == chain.total_minted() == 100_000

        rival = chain.mine_block(timestamp=1.0, parent=fork_parent,
                                 transactions=())
        chain.mine_block(timestamp=2.0, parent=rival.block_hash,
                         transactions=())
        # Fees un-claim with the eviction; value never leaks either way.
        assert chain.utxos.total_value() == chain.total_minted() == 100_000
        assert chain.fees_collected() == 0
        chain.mine_block(timestamp=3.0, miner=MINER)
        assert chain.utxos.total_value() == chain.total_minted() == 100_000
        assert chain.fees_collected() == 1_000
        assert chain.balance(MINER) == 1_000


class TestFeeMarket:
    def test_block_limit_selects_by_feerate_with_interleaved_mint(self):
        chain = Blockchain()
        sources = []
        for index in range(3):
            coinbase = chain.mint(
                LockingScript.pay_to_address(ALICE.address()), 10_000)
            sources.append(coinbase)
        chain.mine_block()
        fees = (10, 500, 100)
        transfers = [
            _transfer(source, 10_000, pay=1_000, fee=fee)
            for source, fee in zip(sources, fees)
        ]
        for transfer in transfers:
            chain.submit(transfer)
        # A mint interleaves with the queue: endowment coinbases are
        # limit-exempt and must not displace fee-paying transactions.
        endowment = chain.mint(
            LockingScript.pay_to_address(BOB.address()), 7_777)

        block = chain.mine_block(timestamp=1.0, limit=2, miner=MINER)
        mined = {tx.txid for tx in block.transactions}
        assert endowment.txid in mined
        assert transfers[1].txid in mined and transfers[2].txid in mined
        assert transfers[0].txid not in mined  # lowest feerate defers
        assert chain.in_mempool(transfers[0].txid)
        assert chain.fees_collected() == 600

        chain.mine_block(timestamp=2.0, limit=2, miner=MINER)
        assert chain.fees_collected() == 610
        assert chain.balance(MINER) == 610
        assert chain.utxos.total_value() == chain.total_minted() == 37_777

    def test_fee_coinbase_claims_only_paid_fees(self):
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=10_000, fee=250)
        chain.submit(transfer)
        block = chain.mine_block(timestamp=1.0, miner=MINER)
        fee_coinbase = block.transactions[0]
        assert fee_coinbase.is_coinbase
        assert fee_coinbase.fee_claim == 250
        assert fee_coinbase.total_output_value() == 250

    def test_overclaiming_block_is_rejected(self):
        from repro.blockchain.transaction import make_coinbase
        chain, coinbase = _funded_chain()
        transfer = _transfer(coinbase, 100_000, pay=10_000, fee=250)
        greedy = Block(
            height=2, previous_hash=chain.tip_hash,
            transactions=(
                # Claims 500 while the block's transactions paid 250.
                make_coinbase(LockingScript.pay_to_address("thief"), 500,
                              nonce=99, fee_claim=500),
                transfer,
            ),
            timestamp=1.0, miner="thief", nonce=7,
        )
        with pytest.raises(BlockchainError):
            chain._connect_block(greedy)
        # The rollback left no trace: the UTXO set still balances.
        assert chain.utxos.total_value() == chain.total_minted() == 100_000
        assert chain.height == 1

    def test_submitted_fee_claim_coinbase_rejected(self):
        from repro.blockchain.transaction import make_coinbase
        chain, _ = _funded_chain()
        claim = make_coinbase(LockingScript.pay_to_address(MINER), 10,
                              nonce=3, fee_claim=10)
        with pytest.raises(InvalidTransaction):
            chain.submit(claim)

    def test_feerate_estimate_reflects_congestion(self):
        chain = Blockchain()
        sources = []
        for _ in range(3):
            sources.append(chain.mint(
                LockingScript.pay_to_address(ALICE.address()), 10_000))
        chain.mine_block()
        assert chain.feerate_estimate(limit=1) == 0.0
        for source, fee in zip(sources, (10, 500, 100)):
            chain.submit(_transfer(source, 10_000, pay=1_000, fee=fee))
        assert chain.feerate_estimate(limit=4) == 0.0  # room for everyone
        marginal = chain.feerate_estimate(limit=2)
        assert marginal > 0.0
        best = chain.feerate_estimate(limit=1)
        assert best >= marginal


class TestChainCells:
    def test_chain_realism_cells_all_hold(self):
        for cell in run_all_chain_cells():
            assert cell.ok, (cell.name, cell.violations)
