"""Live causal tracing: three daemons, one multihop payment, one trace.

The acceptance test for the distributed tracing plane: three ``python -m
repro.runtime serve --trace`` subprocesses form a path alice→bob→carol,
alice pays carol through bob, and each daemon's ``trace_dump`` is merged
(:func:`repro.obs.merge.merge_dumps`) into a single timeline.  Asserted:

* every hop shows all six multihop pipeline stage spans
  (lock→sign→preUpdate→update→postUpdate→release), all parented under a
  single ``trace`` id that crossed the sockets in the codec's v2 header;
* the merged (skew-corrected) timeline is causally monotone — no span
  starts before its parent — even though the daemons' local clocks have
  different epochs (each ``WallClockScheduler`` starts at process birth);
* the handshake NTP estimates measured real skew (the daemons were
  started seconds apart, so the raw clocks genuinely disagree).
"""

import pytest

from repro.obs.merge import merge_dumps
from repro.runtime.launch import launch_network

GENESIS = 200_000
DEPOSIT = 50_000
AMOUNT = 500

STAGES = ["lock", "sign", "preUpdate", "update", "postUpdate", "release"]


@pytest.mark.live
def test_three_daemons_multihop_single_merged_trace():
    handles, _ = launch_network(
        {"alice": GENESIS, "bob": GENESIS, "carol": GENESIS}, trace=True
    )
    alice = handles["alice"].control
    bob = handles["bob"].control
    try:
        # Path channels: alice—bob and bob—carol, funded on the paying side.
        chan_ab = alice.call("open-channel", peer="bob")["channel_id"]
        chan_bc = bob.call("open-channel", peer="carol")["channel_id"]
        deposit = alice.call("deposit", value=DEPOSIT)
        alice.call("approve-associate", peer="bob", channel_id=chan_ab,
                   txid=deposit["txid"])
        deposit = bob.call("deposit", value=DEPOSIT)
        bob.call("approve-associate", peer="carol", channel_id=chan_bc,
                 txid=deposit["txid"])

        result = alice.call("pay-multihop", amount=AMOUNT,
                            path="alice,bob,carol")
        assert result["completed"] and result["hops"] == 2

        dumps = [handles[name].control.call("trace_dump")
                 for name in ("alice", "bob", "carol")]
        for dump in dumps:
            assert dump["dropped"] == 0, f"{dump['node']} overflowed its ring"
            assert dump["peer_offsets"], f"{dump['node']} measured no skew"
        merged = merge_dumps(dumps, reference="alice")
        events = merged["events"]

        # Every hop participated in all six pipeline stages, in order.
        stage_events = [event for event in events
                        if event["event"].startswith("multihop.stage.")]
        per_node = {}
        for event in stage_events:
            per_node.setdefault(event["node"], []).append(
                event["event"].rsplit(".", 1)[1])
        assert set(per_node) == {"alice", "bob", "carol"}
        for node, stages in sorted(per_node.items()):
            assert stages == STAGES, f"{node}: {stages}"

        # One trace id spans all three processes.
        trace_ids = {event.get("trace") for event in stage_events}
        assert len(trace_ids) == 1 and None not in trace_ids
        trace_id = trace_ids.pop()

        # Skew-corrected timestamps are monotone along the causal chain.
        in_trace = [event for event in events
                    if event.get("trace") == trace_id]
        assert len(in_trace) >= 18  # ≥ 6 stages × 3 hops
        by_span = {event["span"]: event for event in in_trace
                   if event.get("span")}
        assert "multihop.pay" in {event["event"] for event in in_trace}
        for event in in_trace:
            parent = by_span.get(event.get("parent"))
            if parent is not None:
                assert event["start"] >= parent["start"] - 1e-9, (
                    f"{event['event']}@{event['node']} starts before its "
                    f"parent {parent['event']}@{parent['node']}"
                )

        # The corrected deltas are real: the daemons were spawned one
        # after another, so their scheduler epochs differ by far more
        # than loopback RTT noise.
        offsets = merged["offsets"]
        assert offsets["alice"] == 0.0  # the reference clock
        assert any(abs(delta) > 1e-3 for name, delta in offsets.items()
                   if name != "alice")
    finally:
        for handle in handles.values():
            handle.shutdown()
