"""Algorithm 2: multi-hop payments — stage machine, τ, aborts, ejections
at every stage, and PoPT classification."""

import pytest

from repro.core.state import MultihopStage
from repro.errors import MultihopError, SettlementError
from repro.network import NetworkAdversary


class TestHappyPath:
    def test_two_hop_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert alice.multihop_completed(payment)
        assert alice.channel_balance(ab) == (35_000, 5_000)
        assert bob.channel_balance(ab) == (5_000, 35_000)
        assert bob.channel_balance(bc) == (35_000, 5_000)
        assert carol.channel_balance(bc) == (5_000, 35_000)

    def test_intermediary_balance_conserved(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        before = (bob.channel_balance(ab)[0] + bob.channel_balance(bc)[0])
        alice.pay_multihop([alice, bob, carol], 5_000)
        after = (bob.channel_balance(ab)[0] + bob.channel_balance(bc)[0])
        assert before == after

    def test_channels_unlocked_after_completion(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        alice.pay_multihop([alice, bob, carol], 5_000)
        for node, cid in ((alice, ab), (bob, ab), (bob, bc), (carol, bc)):
            assert node.program.channels[cid].stage is MultihopStage.IDLE

    def test_sequential_payments_same_path(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        for _ in range(5):
            alice.pay_multihop([alice, bob, carol], 1_000)
        assert carol.channel_balance(bc) == (5_000, 35_000)

    def test_longer_path(self, network):
        nodes = [network.create_node(f"n{i}", funds=100_000)
                 for i in range(5)]
        channels = []
        for left, right in zip(nodes, nodes[1:]):
            cid = left.open_channel(right)
            record = left.create_deposit(40_000)
            left.approve_and_associate(right, record, cid)
            channels.append(cid)
        payment = nodes[0].pay_multihop(nodes, 2_000)
        assert nodes[0].multihop_completed(payment)
        assert nodes[-1].channel_balance(channels[-1]) == (2_000, 38_000)

    def test_reverse_direction_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        alice.pay_multihop([alice, bob, carol], 10_000)
        payment = carol.pay_multihop([carol, bob, alice], 4_000)
        assert carol.multihop_completed(payment)
        assert alice.channel_balance(ab) == (34_000, 6_000)


class TestValidation:
    def test_insufficient_balance_on_first_hop(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.pay_multihop([alice, bob, carol], 40_001)

    def test_insufficient_balance_mid_path_aborts_cleanly(self, network):
        alice = network.create_node("alice", funds=100_000)
        bob = network.create_node("bob", funds=100_000)
        carol = network.create_node("carol", funds=100_000)
        ab = alice.open_channel(bob)
        bc = bob.open_channel(carol)
        deposit = alice.create_deposit(40_000)
        alice.approve_and_associate(bob, deposit, ab)
        small = bob.create_deposit(1_000)
        bob.approve_and_associate(carol, small, bc)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        # The abort propagates back: alice's lock is released, nothing paid.
        assert not alice.multihop_completed(payment)
        assert payment in alice.program.multihop_aborted
        assert alice.program.channels[ab].stage is MultihopStage.IDLE
        assert alice.channel_balance(ab) == (40_000, 0)

    def test_path_with_repeated_node_rejected(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.pay_multihop([alice, bob, alice], 100)

    def test_single_node_path_rejected(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.pay_multihop([alice], 100)

    def test_zero_amount_rejected(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.pay_multihop([alice, bob, carol], 0)

    def test_locked_channel_blocks_plain_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        adversary = NetworkAdversary(network.transport)
        adversary.partition("bob", "carol")
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        from repro.errors import ChannelStateError
        with pytest.raises(ChannelStateError):
            alice.pay(ab, 100)

    def test_locked_channel_blocks_settle(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        adversary = NetworkAdversary(network.transport)
        adversary.partition("bob", "carol")
        alice.pay_multihop([alice, bob, carol], 5_000)
        from repro.errors import ChannelStateError
        with pytest.raises(ChannelStateError):
            alice.settle(ab)


def stall(network, sender, receiver, after):
    adversary = NetworkAdversary(network.transport)
    adversary.drop_after(sender, receiver, after)
    return adversary


class TestEject:
    def test_eject_at_lock_returns_pre_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "carol", 0)  # lock never reaches carol
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        transactions = bob.eject(payment)
        assert len(transactions) == 2  # both adjacent channels
        network.mine()
        transactions_a = alice.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        # Pre-payment: carol gained nothing.
        assert network.chain.balance(carol.address) == 60_000 + 40_000

    def test_eject_at_sign_returns_pre_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 0)  # sign never reaches alice
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert bob.program.multihop_sessions[payment].stage is MultihopStage.SIGN
        transactions = bob.eject(payment)
        network.mine()
        alice.eject(payment)
        carol.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()

    def test_eject_at_preupdate_returns_tau(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        # alice→bob messages: lock (1), preUpdate (2).  Dropping from the
        # second leaves alice in PRE_UPDATE holding the fully signed τ
        # while bob and carol are still in SIGN.
        stall(network, "alice", "bob", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        session = alice.program.multihop_sessions[payment]
        assert session.stage is MultihopStage.PRE_UPDATE
        transactions = alice.eject(payment)
        assert len(transactions) == 1
        tau = transactions[0]
        # τ spends every deposit in the path.
        assert len(tau.inputs) == 2
        network.mine()
        assert network.chain.contains(tau.txid)
        # bob and carol eject at SIGN (pre-payment candidates); those
        # conflict with the already-confirmed τ, so the chain keeps the
        # post-payment outcome and their broadcasts are simply rejected.
        for node in (bob, carol):
            node.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        # τ settles post-payment: carol's address gains the amount.
        assert network.chain.balance(carol.address) == 105_000

    def test_eject_at_update_returns_tau(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 1)  # update to alice dropped
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert (bob.program.multihop_sessions[payment].stage
                is MultihopStage.UPDATE)
        transactions = bob.eject(payment)
        assert len(transactions) == 1  # τ

    def test_eject_at_postupdate_returns_post_payment(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "carol", "bob", 2)  # release dropped
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        assert (bob.program.multihop_sessions[payment].stage
                is MultihopStage.POST_UPDATE)
        transactions = bob.eject(payment)
        assert len(transactions) == 2  # per-channel post settlements
        network.mine()
        alice.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        assert network.chain.balance(carol.address) == 105_000

    def test_eject_unknown_payment_rejected(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with pytest.raises(MultihopError):
            alice.eject("ghost")


class TestPoPT:
    def test_popt_pre_payment_classification(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 0)  # alice stuck in LOCK; bob in SIGN
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        transactions = bob.eject(payment)  # pre-payment settlements
        network.mine()
        # carol (stage SIGN) recognises bob's settlement of their shared
        # channel as a pre-payment PoPT and settles consistently.
        bc_deposits = carol.program.channels[bc].all_deposits()
        bc_settlement = next(
            tx for tx in transactions
            if set(tx.spent_outpoints()) == bc_deposits
        )
        carol_transactions = carol.eject_with_popt(payment, bc_settlement)
        assert carol_transactions[0].txid == bc_settlement.txid
        network.mine()
        alice.eject(payment)
        network.mine()
        for node in (alice, bob, carol):
            node.assert_balance_correct()
        # Pre-payment state: carol gained nothing.
        assert network.chain.balance(carol.address) == 100_000

    def test_popt_post_payment_classification(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        # carol completed update; her post settlement is a valid PoPT.
        session_c = carol.program.multihop_sessions[payment]
        post_bc = session_c.local_post_settlements[bc]
        transactions = alice.eject_with_popt(payment, post_bc)
        assert len(transactions) == 1
        # alice settles post-payment: her output is 35,000.
        payout = {output.script.destination(): output.value
                  for output in transactions[0].outputs}
        assert payout[alice.address] == 35_000

    def test_unrelated_transaction_rejected_as_popt(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        from repro.blockchain import build_p2pkh_transfer
        entry = network.chain.outputs_for(carol.address)[0]
        unrelated = build_p2pkh_transfer(
            [(entry.outpoint, entry.value)], carol.wallet.private,
            [(alice.address, entry.value)])
        with pytest.raises(SettlementError):
            alice.eject_with_popt(payment, unrelated)

    def test_conflicting_settlements_cannot_both_confirm(self, three_hop_path):
        """The blockchain-level invariant PoPTs rely on: pre- and
        post-payment settlements of the same channel conflict."""
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "bob", "alice", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        session_c = carol.program.multihop_sessions[payment]
        pre = session_c.local_pre_settlements[bc]
        post = session_c.local_post_settlements[bc]
        assert pre.conflicts_with(post)
        network.chain.submit(post)
        from repro.errors import DoubleSpend
        with pytest.raises(DoubleSpend):
            network.chain.submit(pre)

    def test_tau_conflicts_with_individual_settlements(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        stall(network, "alice", "bob", 1)
        payment = alice.pay_multihop([alice, bob, carol], 5_000)
        tau = alice.program.multihop_sessions[payment].tau
        session_c = carol.program.multihop_sessions[payment]
        for candidate in list(session_c.local_pre_settlements.values()) + \
                list(session_c.local_post_settlements.values()):
            assert tau.conflicts_with(candidate)
