"""Retry safety on the control plane.

``call_with_retry`` may only replay a command after a transport failure
when doing so cannot double-apply it: either the command is declared
idempotent in the daemon registry, or the request provably never
reached the wire (``ControlError.request_sent`` is False).  A
non-idempotent verb (``pay``, ``settle``) that failed *after* the
request was sent — applied server-side, reply lost — must surface
``retry_unsafe`` instead of silently paying twice.

The fault injection here is a real TCP server that applies each request
it reads and then drops the connection without replying — the exact
mid-response failure that used to trigger a blind replay.
"""

import json
import socket
import threading

import pytest

from repro.runtime.control import ControlClient, ControlError, \
    _command_is_idempotent, call_with_retry


class DroppyControlServer:
    """A control server that applies requests but drops the connection
    before replying for the first ``failures`` requests."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.applied = []  # every request the server *executed*
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                self._listener.settimeout(0.2)
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with connection:
                reader = connection.makefile("rb")
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    request = json.loads(line)
                    self.applied.append(request["cmd"])
                    if len(self.applied) <= self.failures:
                        # Applied, but the reply is lost: close mid-response.
                        break
                    connection.sendall(
                        json.dumps({"ok": True, "echo": request}).encode()
                        + b"\n")

    def close(self) -> None:
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5)


@pytest.fixture
def droppy_server():
    server = DroppyControlServer(failures=1)
    yield server
    server.close()


class TestRetrySafety:
    def test_idempotent_verb_is_retried(self, droppy_server):
        client = ControlClient("127.0.0.1", droppy_server.port, timeout=5)
        try:
            response = call_with_retry(client, "ping", backoff=0.01)
        finally:
            client.close()
        assert response["echo"]["cmd"] == "ping"
        # Applied twice — harmless for an idempotent verb, and exactly
        # why non-idempotent ones must not take this path.
        assert droppy_server.applied == ["ping", "ping"]

    def test_non_idempotent_verb_refuses_replay(self, droppy_server):
        client = ControlClient("127.0.0.1", droppy_server.port, timeout=5)
        try:
            with pytest.raises(ControlError) as excinfo:
                call_with_retry(client, "pay", backoff=0.01,
                                channel_id="chan-1", amount=100)
        finally:
            client.close()
        assert excinfo.value.code == "retry_unsafe"
        # The payment was applied exactly once; the retry helper did not
        # replay it after the ambiguous failure.
        assert droppy_server.applied == ["pay"]

    def test_explicit_override_beats_registry(self, droppy_server):
        """A caller who knows its ``pay`` is deduplicated server-side can
        opt in to replay explicitly."""
        client = ControlClient("127.0.0.1", droppy_server.port, timeout=5)
        try:
            response = call_with_retry(client, "pay", idempotent=True,
                                       backoff=0.01, channel_id="c",
                                       amount=1)
        finally:
            client.close()
        assert response["echo"]["cmd"] == "pay"
        assert droppy_server.applied == ["pay", "pay"]


class _UnsentFailureClient:
    """Duck-typed client whose first call fails before the request ever
    reaches the transport (``request_sent=False``)."""

    def __init__(self) -> None:
        self.calls = 0
        self.reconnects = 0

    def call(self, cmd, **kwargs):
        self.calls += 1
        if self.calls == 1:
            raise ControlError("dial failed", code="connection_closed",
                               request_sent=False)
        return {"cmd": cmd}

    def reconnect(self) -> None:
        self.reconnects += 1


class TestRequestSentFlag:
    def test_unsent_request_is_safe_to_retry_even_if_not_idempotent(self):
        client = _UnsentFailureClient()
        response = call_with_retry(client, "pay", backoff=0.01,
                                   channel_id="c", amount=1)
        assert response["cmd"] == "pay"
        assert client.calls == 2
        assert client.reconnects == 1

    def test_command_error_is_never_retried(self):
        class Rejecting:
            calls = 0

            def call(self, cmd, **kwargs):
                self.calls += 1
                raise ControlError("no such channel",
                                   code="no_such_channel")

            def reconnect(self):
                pass

        client = Rejecting()
        with pytest.raises(ControlError) as excinfo:
            call_with_retry(client, "pay", channel_id="c", amount=1)
        assert excinfo.value.code == "no_such_channel"
        assert client.calls == 1


class TestRegistryFlags:
    def test_read_only_verbs_are_idempotent(self):
        for cmd in ("ping", "balance", "channel", "stats", "metrics",
                    "health", "connect", "fastpath", "batch-window"):
            assert _command_is_idempotent(cmd), cmd

    def test_value_moving_verbs_are_not(self):
        for cmd in ("pay", "settle", "deposit", "pay-multihop",
                    "open-channel", "approve-associate", "mine"):
            assert not _command_is_idempotent(cmd), cmd

    def test_unknown_command_defaults_to_non_idempotent(self):
        assert not _command_is_idempotent("no-such-verb")
