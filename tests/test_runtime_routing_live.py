"""Live gossip route discovery: five daemons, zero static route config.

The acceptance test for the routing plane: five daemons form a chain of
channels n1—n2—n3—n4—n5 (the TCP mesh is complete, but *channels* only
exist along the chain), no node is told any path, and ``pay-multihop
amount=... dest=n5`` on n1 must discover the 4-hop route purely from
flooded ChannelAnnounce/ChannelUpdate gossip and complete end to end.
"""

import time

import pytest

from repro.runtime.control import ControlError
from repro.runtime.launch import launch_network

GENESIS = 200_000
DEPOSIT = 50_000
AMOUNT = 500

CHAIN = ["n1", "n2", "n3", "n4", "n5"]


def _await_route(control, dest, hops, amount=0, deadline=20.0):
    """Poll the ``route`` verb until gossip has converged on a path able
    to carry ``amount`` (capacity updates flood separately from the
    announces, so amount-aware convergence lags plain reachability)."""
    end = time.monotonic() + deadline
    last = None
    while time.monotonic() < end:
        try:
            result = control.call("route", dest=dest, amount=amount)
            if result["hops"] == hops:
                return result
            last = result
        except ControlError as exc:
            if exc.code != "no_route":
                raise
            last = exc
        time.sleep(0.2)
    raise AssertionError(f"gossip never converged on {dest}: {last!r}")


@pytest.mark.live
def test_five_daemons_discover_route_via_gossip():
    handles, _ = launch_network({name: GENESIS for name in CHAIN})
    controls = {name: handles[name].control for name in CHAIN}
    try:
        # Channels along the chain only; the payer side of every forward
        # hop funds its direction.
        channels = {}
        for left, right in zip(CHAIN, CHAIN[1:]):
            channel = controls[left].call("open-channel",
                                          peer=right)["channel_id"]
            channels[left, right] = channel
            deposit = controls[left].call("deposit", value=DEPOSIT)
            controls[left].call("approve-associate", peer=right,
                                channel_id=channel, txid=deposit["txid"])

        # n1 learns the far end of the chain from gossip alone.
        route = _await_route(controls["n1"], "n5", hops=4, amount=AMOUNT)
        assert route["route"] == CHAIN

        result = controls["n1"].call("pay-multihop", amount=AMOUNT,
                                     dest="n5")
        assert result["completed"]
        assert result["hops"] == 4
        assert result["routed"] is True
        assert result["route"] == CHAIN

        # The balance actually moved end to end: n5's side of the last
        # channel (which it never funded) now holds the payment.
        def landed():
            snapshot = controls["n5"].call(
                "channel", channel_id=channels["n4", "n5"])
            return snapshot["my_balance"] == AMOUNT

        end = time.monotonic() + 10.0
        while not landed():
            assert time.monotonic() < end, "payment never landed on n5"
            time.sleep(0.1)

        # Observability: gossip and planner counters are live.
        n1_stats = controls["n1"].call("stats")
        gossip = n1_stats["gossip"]
        assert gossip["announces_applied"] + gossip["updates_applied"] > 0
        topology = n1_stats["routing"]["topology"]
        assert topology["nodes"] == len(CHAIN)
        cache = n1_stats["routing"]["cache"]
        assert cache["hits"] + cache["misses"] >= 1

        # Unknown destination: the stable no_route error code.
        with pytest.raises(ControlError) as excinfo:
            controls["n1"].call("pay-multihop", amount=AMOUNT,
                                dest="ghost")
        assert excinfo.value.code == "no_route"
        assert controls["n1"].call("stats")["transport"][
            "no_route_drops"] >= 0
    finally:
        for handle in handles.values():
            handle.shutdown()
