"""§6.2 stable storage and §3 TEE outsourcing."""

import pytest

from repro.core.multihop import TeechainEnclave
from repro.core.outsourcing import OutsourcedUser, OutsourcingGateway
from repro.core.persistence import PersistentStore
from repro.errors import (
    AttestationError,
    MessageAuthenticationError,
    SealingError,
)
from repro.tee import AttestationService, Enclave


@pytest.fixture
def persistent_pair(funded_pair):
    network, alice, bob = funded_pair
    store = PersistentStore(alice.enclave, network.scheduler)
    store.attach()
    channel = alice.open_channel(bob)
    deposit = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit, channel)
    return network, alice, bob, channel, store


class TestPersistence:
    def test_every_mutation_seals(self, persistent_pair):
        network, alice, bob, channel, store = persistent_pair
        seals = store.seals_written
        alice.pay(channel, 100)
        assert store.seals_written == seals + 1

    def test_restore_recovers_state(self, persistent_pair):
        network, alice, bob, channel, store = persistent_pair
        alice.pay(channel, 7_000)
        fresh = Enclave(TeechainEnclave(), name="alice-restored",
                        seed=b"enclave:alice")
        store.restore(fresh)
        assert fresh.program.channels[channel].my_balance == 33_000
        assert fresh.program.payments_sent == alice.program.payments_sent

    def test_restored_state_can_settle(self, persistent_pair):
        network, alice, bob, channel, store = persistent_pair
        alice.pay(channel, 7_000)
        fresh = Enclave(TeechainEnclave(), name="alice-restored2",
                        seed=b"enclave:alice")
        store.restore(fresh)
        transaction = fresh.ecall("unilateral_settlement", channel)
        network.chain.submit(transaction)
        network.mine()
        assert network.chain.balance(alice.address) >= 93_000 - 60_000

    def test_rollback_blob_refused(self, persistent_pair):
        network, alice, bob, channel, store = persistent_pair
        alice.pay(channel, 1_000)
        alice.pay(channel, 1_000)
        fresh = Enclave(TeechainEnclave(), seed=b"enclave:alice")
        with pytest.raises(SealingError):
            store.restore(fresh, blob=store.history[-1])

    def test_counter_throttle_serialises(self, persistent_pair):
        network, alice, bob, channel, store = persistent_pair
        start_completion = store.last_seal_completion
        for _ in range(5):
            alice.pay(channel, 10)
        # Five seals queued behind each other at 100 ms each.
        assert store.last_seal_completion == pytest.approx(
            start_completion + 0.5)

    def test_restore_without_state_rejected(self, network):
        node = network.create_node("lonely", funds=0)
        store = PersistentStore(node.enclave, network.scheduler)
        fresh = Enclave(TeechainEnclave(), seed=b"f")
        with pytest.raises(SealingError):
            store.restore(fresh)


class TestOutsourcing:
    def _gateway(self, network):
        gateway = Enclave(OutsourcingGateway(), name="gateway", seed=b"gw")
        user = OutsourcedUser("dave")
        user.attest(gateway, network.attestation)
        return gateway, user

    def test_attest_and_command(self, network):
        gateway, user = self._gateway(network)
        address, public = user.command("new_deposit_address")
        assert address.startswith("btc")
        assert address in gateway.program.deposit_keys

    def test_wrong_program_fails_attestation(self, network):
        plain = Enclave(TeechainEnclave(), name="not-a-gateway")
        user = OutsourcedUser("dave")
        with pytest.raises(AttestationError):
            user.attest(plain, network.attestation)

    def test_command_before_attestation_rejected(self, network):
        user = OutsourcedUser("dave")
        with pytest.raises(AttestationError):
            user.command("new_deposit_address")

    def test_replayed_command_rejected(self, network):
        gateway, user = self._gateway(network)
        envelope = user.make_envelope("list_channels")
        gateway.ecall("outsourced_command", envelope)
        with pytest.raises(MessageAuthenticationError):
            gateway.ecall("outsourced_command", envelope)

    def test_tampered_command_rejected(self, network):
        gateway, user = self._gateway(network)
        envelope = bytearray(user.make_envelope("list_channels"))
        envelope[40] ^= 1  # flip a body byte past the key prefix
        with pytest.raises(MessageAuthenticationError):
            gateway.ecall("outsourced_command", bytes(envelope))

    def test_unknown_user_rejected(self, network):
        gateway, _ = self._gateway(network)
        stranger = OutsourcedUser("mallory")
        stranger._secret = b"\x00" * 32  # self-provisioned garbage
        stranger._enclave = gateway
        with pytest.raises(MessageAuthenticationError):
            stranger.command("list_channels")

    def test_forbidden_command_rejected(self, network):
        gateway, user = self._gateway(network)
        with pytest.raises(MessageAuthenticationError):
            user.command("provision_user", user.keys.public)

    def test_operator_cannot_forge_for_user(self, network):
        """The untrusted operator relays envelopes but cannot mint them."""
        import hashlib
        import hmac as hmac_mod
        import pickle
        gateway, user = self._gateway(network)
        prefix = user.keys.public.to_bytes()
        body = pickle.dumps((99, "new_deposit_address", ()))
        forged_tag = hmac_mod.new(b"operator-guess", prefix + body,
                                  hashlib.sha256).digest()
        with pytest.raises(MessageAuthenticationError):
            gateway.ecall("outsourced_command", prefix + body + forged_tag)

    def test_full_channel_lifecycle_outsourced(self, network):
        """Dave (no TEE) runs a channel on the operator's enclave against
        a regular node, settling to his *own* address."""
        operator_host = network.create_node("operator", funds=0)
        bob = network.create_node("bob", funds=100_000)
        gateway = Enclave(OutsourcingGateway(), name="dave-gateway",
                          seed=b"dave-gw")
        user = OutsourcedUser("dave")
        user.attest(gateway, network.attestation)

        # Host-side wiring for the gateway enclave (the operator's job).
        from repro.network.secure_channel import establish_secure_channel
        ours, theirs = establish_secure_channel(
            gateway, bob.enclave, network.attestation,
            # The gateway expects a Teechain peer; bob expects a gateway.
            expected_measurement_a=TeechainEnclave.measurement(),
            expected_measurement_b=OutsourcingGateway.measurement(),
        )
        network.transport.register(
            "dave-gateway",
            lambda m: (gateway.ecall("handle_envelope", m.sender, m.payload),
                       _pump(network, gateway, "dave-gateway")))
        gateway.ecall("install_secure_channel", ours, "bob")
        bob._ecall("install_secure_channel", theirs, "dave-gateway")
        # The operator's host wires the gateway's blockchain validator.
        gateway.program.deposit_validator = (
            lambda outpoint, depth:
            network.chain.confirmations(outpoint.txid) >= depth)

        # Both sides create the channel before either acknowledgement is
        # pumped (same ordering the node layer uses).
        user.command("new_pay_channel", "dave-bob",
                     bob.enclave.public_key, bob.address, user.address)
        bob.enclave.ecall("new_pay_channel", "dave-bob",
                          gateway.public_key, user.address, bob.address)
        bob._pump()
        _pump(network, gateway, "dave-gateway")

        # Fund via bob's side for brevity: bob deposits and pays dave.
        record = bob.create_deposit(20_000)
        bob.approve_deposit_gateway = None
        bob._ecall("approve_my_deposit", gateway.public_key, record.outpoint)
        _pump(network, gateway, "dave-gateway")
        bob._ecall("associate_deposit", "dave-bob", record.outpoint)
        _pump(network, gateway, "dave-gateway")
        bob._ecall("pay", "dave-bob", 6_000)
        _pump(network, gateway, "dave-gateway")

        transaction = user.command("unilateral_settlement", "dave-bob")
        network.chain.submit(transaction)
        network.mine()
        # Dave's 6,000 landed at DAVE's address, not the operator's.
        assert network.chain.balance(user.address) == 6_000


def _pump(network, enclave, name):
    for outbound in enclave.take_outbox():
        network.transport.send(name, outbound.destination, outbound.payload)
