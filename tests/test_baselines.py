"""Baseline systems: LN channel mechanics and the Table 4 cost models."""

import pytest

from repro.baselines import (
    LightningChannel,
    LightningTiming,
    dmc_costs,
    lightning_costs,
    sfmc_costs,
    table4_rows,
    teechain_costs,
)
from repro.baselines.costmodel import measure_teechain_lifecycle
from repro.baselines.dmc import dmc_cost, dmc_transactions
from repro.baselines.sfmc import sfmc_cost, sfmc_transactions
from repro.blockchain import Blockchain, LockingScript
from repro.blockchain.cost import blockchain_cost
from repro.crypto import KeyPair
from repro.errors import PaymentError, ReproError


def _open_ln_channel(window=144):
    chain = Blockchain()
    alice = KeyPair.from_seed(b"ln-a")
    bob = KeyPair.from_seed(b"ln-b")
    coinbase = chain.mint(LockingScript.pay_to_address(alice.address()),
                          100_000)
    chain.mine_block()
    channel = LightningChannel(chain, alice, bob, 60_000, 0,
                               justice_window_blocks=window)
    channel.open([(coinbase.outpoint(0), 100_000)], alice)
    return chain, alice, bob, channel


class TestLightningChannel:
    def test_needs_six_confirmations(self):
        chain, _, _, channel = _open_ln_channel()
        for _ in range(5):
            chain.mine_block()
        assert not channel.is_open()
        chain.mine_block()
        assert channel.is_open()

    def test_payments_advance_and_revoke(self):
        chain, _, _, channel = _open_ln_channel()
        first = channel.current
        channel.pay(from_a=True, amount=10_000)
        assert channel.current.balance_a == 50_000
        assert first.transaction.txid in channel.revoked_txids

    def test_overdraft_rejected(self):
        chain, _, _, channel = _open_ln_channel()
        with pytest.raises(PaymentError):
            channel.pay(from_a=True, amount=60_001)

    def test_cooperative_close_pays_final_state(self):
        chain, alice, bob, channel = _open_ln_channel()
        for _ in range(6):
            chain.mine_block()
        channel.pay(from_a=True, amount=25_000)
        channel.cooperative_close()
        chain.mine_block()
        assert chain.balance(bob.address()) == 25_000
        # 35k channel share + 40k funding change.
        assert chain.balance(alice.address()) == 75_000

    def test_revoked_broadcast_detected(self):
        chain, _, _, channel = _open_ln_channel()
        for _ in range(6):
            chain.mine_block()
        stale = channel.current
        channel.pay(from_a=True, amount=10_000)
        assert channel.detect_revoked_onchain() is None
        channel.broadcast_state(stale)
        chain.mine_block()
        assert channel.detect_revoked_onchain() is stale

    def test_justice_deadline_tracks_window(self):
        chain, _, _, channel = _open_ln_channel(window=10)
        for _ in range(6):
            chain.mine_block()
        stale = channel.current
        channel.pay(from_a=True, amount=1_000)
        channel.broadcast_state(stale)
        chain.mine_block()
        confirmed_at = chain.height
        assert channel.justice_deadline(stale) == confirmed_at + 10

    def test_theft_undecided_inside_window(self):
        chain, _, _, channel = _open_ln_channel(window=10)
        for _ in range(6):
            chain.mine_block()
        stale = channel.current
        channel.pay(from_a=True, amount=1_000)
        channel.broadcast_state(stale)
        chain.mine_block()
        assert not channel.theft_succeeded(stale)  # window still open


class TestTimingModel:
    def test_multihop_scales_linearly(self):
        timing = LightningTiming()
        per_message = 0.2
        assert timing.multihop_latency(4, per_message) == pytest.approx(
            2 * timing.multihop_latency(2, per_message))

    def test_throughput_inverse_in_hops(self):
        timing = LightningTiming()
        t2 = timing.multihop_throughput(2, 0.2, batch_size=1_000)
        t4 = timing.multihop_throughput(4, 0.2, batch_size=1_000)
        assert t2 == pytest.approx(2 * t4)


class TestCostModels:
    def test_ln_row(self):
        assert lightning_costs() == (4, 6.0, 4, 6.0)

    def test_dmc_bilateral(self):
        assert dmc_transactions(True) == 2
        assert dmc_cost(True) == 4.0

    def test_dmc_unilateral_grows_with_depth(self):
        assert dmc_transactions(False, chain_depth=1) == 4
        assert dmc_transactions(False, chain_depth=3) == 6
        assert dmc_cost(False, chain_depth=3) == 12.0

    def test_dmc_invalid_depth(self):
        with pytest.raises(ReproError):
            dmc_transactions(True, chain_depth=0)

    def test_sfmc_bilateral_amortises_over_channels(self):
        assert sfmc_transactions(True, parties=3, channels=2) == 1.0
        assert sfmc_cost(True, parties=3, channels=2) == 3.0
        assert sfmc_cost(True, parties=3, channels=6) == 1.0

    def test_sfmc_unilateral(self):
        assert sfmc_transactions(False, parties=3, channels=2) == 1.0 + 4
        assert sfmc_cost(False, parties=3, channels=2) == pytest.approx(
            2 * 1.5 + 8)

    def test_sfmc_requires_group(self):
        with pytest.raises(ReproError):
            sfmc_costs(parties=2)

    def test_teechain_formulas(self):
        bilateral_txs, bilateral_cost, unilateral_txs, unilateral_cost = (
            teechain_costs(committee_n1=3, committee_m1=2,
                           committee_n2=3, committee_m2=2))
        assert (bilateral_txs, bilateral_cost) == (1, 2.5)
        assert (unilateral_txs, unilateral_cost) == (3, 7.0)

    def test_teechain_1of1(self):
        bilateral_txs, bilateral_cost, _, _ = teechain_costs(
            committee_n1=1, committee_m1=1, committee_n2=1, committee_m2=1)
        assert bilateral_cost == 1.5

    def test_measured_matches_formula_bilateral(self):
        measured = measure_teechain_lifecycle(committee_backups=2,
                                              threshold=2, bilateral=True)
        assert measured == (1, 2.5)

    def test_measured_matches_formula_unilateral(self):
        measured = measure_teechain_lifecycle(committee_backups=2,
                                              threshold=2, bilateral=False)
        assert measured == (3, 7.0)

    def test_measured_1of1_unilateral(self):
        measured = measure_teechain_lifecycle(committee_backups=0,
                                              threshold=1, bilateral=False)
        # two 1-of-1 fundings at 1.5 each + settlement (2 sigs) at 1.0.
        assert measured == (3, 4.0)

    def test_table4_ordering(self):
        rows = table4_rows()
        by_system = {row.system.split(" ")[0]: row for row in rows}
        assert by_system["Teechain"].bilateral_cost < min(
            by_system["LN"].bilateral_cost, by_system["DMC"].bilateral_cost)
        assert by_system["Teechain"].unilateral_cost > by_system[
            "LN"].unilateral_cost
