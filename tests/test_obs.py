"""Observability subsystem: metrics math, trace ring, no-op defaults,
and the JSON sidecar round-trip."""

import json

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_BUCKETS,
    NO_TRACE,
    NOOP,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Tracer,
    exponential_buckets,
    linear_buckets,
)
from repro.simulation import Clock, Scheduler


class TestCounterGauge:
    def test_counter_math(self):
        registry = MetricsRegistry()
        registry.inc("payments")
        registry.inc("payments", 4)
        assert registry.counter("payments").value == 5

    def test_counter_identity_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_tracks_peak(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3)
        registry.set_gauge("depth", 10)
        registry.set_gauge("depth", 2)
        gauge = registry.gauge("depth")
        assert gauge.value == 2
        assert gauge.peak == 10

    def test_gauge_add(self):
        registry = MetricsRegistry()
        registry.gauge("w").add(5)
        registry.gauge("w").add(-2)
        assert registry.gauge("w").value == 3


class TestHistogram:
    def test_bucket_counts(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.record(value)
        # bounds are inclusive upper bounds; 100 lands in overflow.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(106.0)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 100.0
        assert histogram.mean == pytest.approx(106.0 / 5)

    def test_quantile_approximation(self):
        histogram = Histogram("h", bounds=tuple(float(i) for i in range(1, 11)))
        for value in range(1, 101):
            histogram.record(value / 10.0)
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)
        assert Histogram("empty").quantile(0.5) is None

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_bucket_helpers(self):
        assert linear_buckets(0.1, 0.1, 3) == (0.1, pytest.approx(0.2),
                                               pytest.approx(0.3))
        assert exponential_buckets(1, 2, 4) == (1, 2, 4, 8)

    def test_observe_creates_with_custom_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.15, buckets=(0.1, 0.2))
        assert registry.histogram("lat").bounds == (0.1, 0.2)


class TestNoOpDefault:
    def test_module_default_is_noop(self):
        assert obs.get_metrics() is NOOP
        assert obs.get_tracer() is NO_TRACE
        assert NOOP.enabled is False
        assert NO_TRACE.enabled is False

    def test_noop_records_nothing(self):
        NOOP.inc("x", 100)
        NOOP.set_gauge("g", 1.0)
        NOOP.observe("h", 5.0)
        NOOP.counter("x").inc()
        snapshot = NOOP.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_noop_instruments_are_shared_singletons(self):
        assert NOOP.counter("a") is NOOP.counter("b")
        assert NOOP.histogram("a") is NOOP.histogram("b")

    def test_noop_span_and_emit_are_safe(self):
        obs.emit("anything", key=1)
        with obs.span("anything"):
            pass

    def test_collecting_installs_and_restores(self):
        with obs.collecting() as (registry, tracer):
            assert obs.get_metrics() is registry
            assert obs.get_tracer() is tracer
            obs.get_metrics().inc("seen")
        assert obs.get_metrics() is NOOP
        assert obs.get_tracer() is NO_TRACE
        assert registry.counter("seen").value == 1

    def test_collecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.collecting():
                raise RuntimeError("boom")
        assert obs.get_metrics() is NOOP

    def test_scheduler_with_noop_collects_nothing(self):
        scheduler = Scheduler()
        scheduler.call_after(1.0, lambda: None)
        scheduler.run()
        assert obs.get_metrics().snapshot()["counters"] == {}


class TestTracer:
    def test_events_stamped_with_bound_clock(self):
        clock = Clock()
        tracer = Tracer(now=lambda: clock.now)
        tracer.emit("start")
        clock.advance_to(2.5)
        tracer.emit("later", detail="x")
        events = tracer.events()
        assert events[0] == {"t": 0.0, "event": "start"}
        assert events[1] == {"t": 2.5, "event": "later", "detail": "x"}

    def test_span_measures_simulated_duration(self):
        clock = Clock()
        tracer = Tracer(now=lambda: clock.now)
        with tracer.span("work", tag="a"):
            clock.advance_to(3.0)
        (event,) = tracer.events()
        assert event["event"] == "work"
        assert event["duration"] == pytest.approx(3.0)
        assert event["tag"] == "a"

    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.emit(f"e{index}")
        assert len(tracer) == 3
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        assert [event["event"] for event in tracer.events()] == \
            ["e2", "e3", "e4"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_scheduler_driven_simulation_traces_sim_time(self):
        with obs.collecting() as (_registry, tracer):
            scheduler = Scheduler()
            tracer.bind_clock(lambda: scheduler.now)
            scheduler.call_after(1.5, lambda: obs.emit("fired"))
            scheduler.run()
        (event,) = tracer.events()
        assert event["t"] == pytest.approx(1.5)


class TestSchedulerMetrics:
    def test_events_and_cancellations_counted(self):
        registry = MetricsRegistry()
        scheduler = Scheduler(metrics=registry)
        event = scheduler.call_after(0.5, lambda: None)
        event.cancel()
        scheduler.call_after(1.0, lambda: None)
        scheduler.call_after(2.0, lambda: None)
        scheduler.run()
        counters = registry.snapshot()["counters"]
        assert counters["scheduler.events_processed"] == 2
        assert counters["scheduler.cancelled_skipped"] == 1
        assert scheduler.cancelled_skipped == 1


class TestJsonExport:
    def test_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("count", 3)
        registry.set_gauge("depth", 7)
        registry.observe("lat", 0.03)
        tracer = Tracer()
        tracer.emit("evt", detail=1)
        path = tmp_path / "BENCH_test.json"
        payload = obs.export_json(str(path), metrics=registry, tracer=tracer,
                                  extra={"experiment": "unit"})
        loaded = obs.load_json(str(path))
        assert loaded == json.loads(obs.dump_json(payload))
        assert loaded["experiment"] == "unit"
        assert loaded["metrics"]["counters"]["count"] == 3
        assert loaded["metrics"]["gauges"]["depth"]["value"] == 7
        histogram = loaded["metrics"]["histograms"]["lat"]
        assert histogram["count"] == 1
        assert histogram["bounds"] == list(DEFAULT_BUCKETS)
        assert loaded["trace"]["events"] == [
            {"t": 0.0, "event": "evt", "detail": 1}]

    def test_sets_serialised_as_sorted_lists(self, tmp_path):
        path = tmp_path / "s.json"
        obs.export_json(str(path), extra={"values": {"b", "a"}})
        assert obs.load_json(str(path))["values"] == ["a", "b"]

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        json.dumps(registry.snapshot())


class TestInstrumentedProtocols:
    def test_multihop_stage_metrics(self, three_hop_path):
        network, alice, bob, carol, ab, bc = three_hop_path
        with obs.collecting() as (registry, _tracer):
            alice.pay_multihop([alice, bob, carol], 1_000)
        counters = registry.snapshot()["counters"]
        # Each of the three participants finishes its session.
        assert counters["multihop.completed"] == 3
        assert any(name.startswith("multihop.stage[")
                   for name in counters)
        histograms = registry.snapshot()["histograms"]
        assert any(name.startswith("multihop.stage_seconds[")
                   for name in histograms)

    def test_replication_metrics(self, network):
        alice = network.create_node("alice", funds=100_000)
        bob = network.create_node("bob", funds=100_000)
        with obs.collecting() as (registry, _tracer):
            alice.attach_committee(backups=2, threshold=2)
            channel = alice.open_channel(bob)
            deposit = alice.create_deposit(50_000)
            alice.approve_and_associate(bob, deposit, channel)
            alice.pay(channel, 1_000)
        counters = registry.snapshot()["counters"]
        assert counters["replication.chain_updates"] >= 3
        assert counters["replication.member_updates"] == \
            2 * counters["replication.chain_updates"]
        blob = registry.snapshot()["histograms"]["replication.blob_bytes"]
        assert blob["count"] == counters["replication.chain_updates"]
        assert blob["sum"] > 0


class TestHarnessSidecar:
    def test_write_sidecar_has_metrics_key(self, tmp_path):
        from repro.bench.harness import ExperimentResult, write_sidecar

        registry = MetricsRegistry()
        registry.inc("netsim.retries", 9)
        path = write_sidecar(
            "unit", [ExperimentResult("t", "cfg", "tp", 10.0, 20.0, "tx/s")],
            metrics=registry, directory=str(tmp_path),
        )
        assert path.endswith("BENCH_unit.json")
        loaded = obs.load_json(path)
        assert loaded["benchmark"] == "unit"
        assert loaded["results"][0]["measured"] == 10.0
        assert loaded["results"][0]["ratio"] == pytest.approx(0.5)
        assert loaded["metrics"]["counters"]["netsim.retries"] == 9


class TestQuantileHelper:
    """Nearest-rank quantiles: the shared helper behind the daemon's
    latency probes and the repro.load reports."""

    def test_quantile_is_order_statistic_exact(self):
        from repro.obs import nearest_rank
        # rank = ceil(q·n), 1-based: p95 of 1..100 is the 95th value.
        # The naive ordered[int(n*q)] indexing this replaced is 0-based,
        # off by one rank — it returned the 96th.
        samples = list(range(1, 101))
        assert nearest_rank(samples, 0.95) == 95
        assert samples[int(len(samples) * 0.95)] == 96  # the old bug
        # Small n: naive p90 of ten samples indexed ordered[9] — the max.
        samples = list(range(1, 11))
        assert nearest_rank(samples, 0.9) == 9
        assert samples[int(len(samples) * 0.9)] == 10  # the old bug

    def test_median_of_even_sample_is_lower_middle(self):
        from repro.obs import nearest_rank
        # Nearest rank is order-statistic exact: ceil(0.5*4) = 2nd value,
        # not the upper middle the naive n//2 indexing produced.
        assert nearest_rank([1, 2, 3, 4], 0.5) == 2
        assert nearest_rank([1, 2, 3], 0.5) == 2

    def test_edge_quantiles_and_unsorted_input(self):
        from repro.obs import nearest_rank
        samples = [5.0, 1.0, 3.0]
        assert nearest_rank(samples, 0.0) == 1.0
        assert nearest_rank(samples, 1.0) == 5.0
        assert nearest_rank([42.0], 0.5) == 42.0

    def test_invalid_inputs_rejected(self):
        from repro.obs import nearest_rank
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)
        with pytest.raises(ValueError):
            nearest_rank([1.0], -0.1)

    def test_summarize_samples(self):
        from repro.obs import summarize_samples
        summary = summarize_samples([4.0, 2.0, 1.0, 3.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0
        assert summary["p95"] == 4.0

    def test_summarize_samples_custom_quantiles(self):
        from repro.obs import summarize_samples
        summary = summarize_samples(list(range(1, 101)),
                                    quantiles=(0.25, 0.99))
        assert summary["p25"] == 25
        assert summary["p99"] == 99
        assert "p50" not in summary
