"""Property-based balance correctness (paper Appendix A).

Hypothesis drives random interleavings of channel operations — deposits,
associations, payments in both directions, dissociations, settlements —
and asserts the paper's two central invariants after every run:

* **Balance correctness** (Definition A.1): every party can unilaterally
  reclaim at least its perceived balance on the blockchain.
* **Proposition 2**: a channel's capacity never exceeds the value of its
  associated deposits.
* **Conservation**: no operation sequence mints or destroys on-chain
  value.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.node import TeechainNetwork
from repro.core.state import MultihopStage
from repro.errors import ProtocolError, ReproError


class Operations:
    """Vocabulary of random operations over a two-party network."""

    def __init__(self):
        self.network = TeechainNetwork()
        self.alice = self.network.create_node("alice", funds=100_000)
        self.bob = self.network.create_node("bob", funds=100_000)
        self.channel = self.alice.open_channel(self.bob)

    def nodes(self):
        return self.alice, self.bob

    def apply(self, op):
        kind = op[0]
        try:
            if kind == "deposit":
                _, who, value = op
                node, peer = self._pair(who)
                record = node.create_deposit(value)
                node.approve_and_associate(peer, record, self.channel)
            elif kind == "pay":
                _, who, amount = op
                node, _ = self._pair(who)
                node.pay(self.channel, amount)
            elif kind == "dissociate":
                _, who = op
                node, _ = self._pair(who)
                for record in list(node.program.deposits.values()):
                    if (record.channel_id == self.channel
                            and not record.is_free):
                        node.dissociate_deposit(self.channel, record)
                        break
            elif kind == "release":
                _, who = op
                node, _ = self._pair(who)
                for record in list(node.program.deposits.values()):
                    if record.is_free:
                        node.release_deposit(record)
                        break
        except (ProtocolError, ReproError):
            # Guards firing on invalid random operations is the protocol
            # working as intended; invariants must still hold afterwards.
            pass

    def _pair(self, who):
        if who == "alice":
            return self.alice, self.bob
        return self.bob, self.alice

    def check_proposition_2(self):
        for node in self.nodes():
            for channel in node.program.channels.values():
                if channel.terminated or not channel.is_open:
                    continue
                deposit_value = sum(
                    node.program.deposits[outpoint].value
                    for outpoint in channel.all_deposits()
                    if outpoint in node.program.deposits
                )
                assert channel.capacity <= deposit_value

    def check_conservation(self):
        chain = self.network.chain
        mempool_value = 0  # settled after mining below
        assert chain.utxos.total_value() == chain.total_minted()

    def check_balance_correctness(self):
        for node in self.nodes():
            node.assert_balance_correct()


operation = st.one_of(
    st.tuples(st.just("deposit"),
              st.sampled_from(["alice", "bob"]),
              st.integers(min_value=1_000, max_value=30_000)),
    st.tuples(st.just("pay"),
              st.sampled_from(["alice", "bob"]),
              st.integers(min_value=1, max_value=20_000)),
    st.tuples(st.just("dissociate"), st.sampled_from(["alice", "bob"])),
    st.tuples(st.just("release"), st.sampled_from(["alice", "bob"])),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, min_size=1, max_size=12))
def test_property_balance_correctness_random_operations(ops):
    world = Operations()
    for op in ops:
        world.apply(op)
        world.check_proposition_2()
    world.network.mine()
    world.check_conservation()
    world.check_balance_correctness()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=1, max_value=5_000), min_size=1,
                max_size=20),
       st.integers(min_value=0, max_value=19))
def test_property_multihop_eject_any_time(amounts, eject_after):
    """Run a stream of multi-hop payments and eject at a random point;
    everyone still reclaims their perceived balance."""
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    carol = network.create_node("carol", funds=100_000)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(50_000)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(50_000)
    bob.approve_and_associate(carol, deposit_bc, bc)

    for index, amount in enumerate(amounts):
        try:
            payment = alice.pay_multihop([alice, bob, carol], amount)
        except ProtocolError:
            continue
        if index == eject_after and payment in alice.program.multihop_sessions:
            alice.eject(payment)
            break
    network.mine()
    for node in (alice, bob, carol):
        node.assert_balance_correct()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.sampled_from(["alice", "bob"]),
                          st.integers(min_value=1, max_value=10_000)),
                min_size=0, max_size=15))
def test_property_unilateral_settle_after_any_payment_history(payments):
    """After any payment history, a *unilateral* settlement (peer offline)
    pays each side exactly its channel balance."""
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    channel = alice.open_channel(bob)
    record = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, record, channel)
    record_b = bob.create_deposit(40_000)
    bob.approve_and_associate(alice, record_b, channel)

    for who, amount in payments:
        node = alice if who == "alice" else bob
        try:
            node.pay(channel, amount)
        except ProtocolError:
            pass

    expected_alice, expected_bob = alice.channel_balance(channel)
    network.transport.unregister("bob")
    transaction = alice._ecall("unilateral_settlement", channel)
    alice.client.broadcast(transaction)
    network.mine()
    assert network.chain.balance(alice.address) == 60_000 + expected_alice
    assert network.chain.balance(bob.address) == 60_000 + expected_bob
