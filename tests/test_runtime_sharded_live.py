"""Live multi-core sharding: a worker pool behind one control port.

A :class:`~repro.runtime.workers.ShardedDaemon` hub with two worker
processes serves two spoke daemons.  The test drives everything through
the router's single control port and asserts the ownership rules: each
peer's channel lands on its consistent-hash owner, channel-scoped verbs
reach the owning worker, pool-wide verbs fan out, and settlement
conserves money exactly — including with the session-MAC fast path
enabled across the pool.
"""

import asyncio
import threading

import pytest

from repro.runtime.control import ControlClient, wait_for_control
from repro.runtime.launch import HOST, free_port, spawn_daemon
from repro.runtime.workers import ShardedDaemon
from repro.workloads.assignment import HashRing

GENESIS = 200_000
DEPOSIT = 50_000
WORKERS = 2
SPOKES = ("spoke1", "spoke2")
ALLOCATIONS = {f"hub-w{i}": GENESIS for i in range(WORKERS)}
ALLOCATIONS.update({name: GENESIS for name in SPOKES})


class RouterThread:
    """Run a ShardedDaemon on its own event loop in a daemon thread so
    the test can drive it with the blocking ControlClient."""

    def __init__(self) -> None:
        self.router = ShardedDaemon("hub", allocations=ALLOCATIONS,
                                    workers=WORKERS)
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=90):
            raise TimeoutError("sharded router failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.router.start()
            self._started.set()
            await self.router.run_until_shutdown()

        self.loop.run_until_complete(main())
        # Let closing transports run their callbacks before the loop
        # dies, else their finalizers warn about a closed loop.
        self.loop.run_until_complete(asyncio.sleep(0.25))
        self.loop.close()

    def close(self) -> None:
        try:
            ControlClient(HOST, self.router.control_port,
                          timeout=30).call("shutdown")
        except Exception:  # noqa: BLE001 — teardown best effort
            pass
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def sharded_hub():
    spokes = {}
    processes = []
    clients = []
    router = None
    try:
        for name in SPOKES:
            port, control_port = free_port(), free_port()
            processes.append(spawn_daemon(name, port, control_port,
                                          ALLOCATIONS))
            spokes[name] = (port, control_port)
        for name, (port, control_port) in spokes.items():
            clients.append(wait_for_control(HOST, control_port))
        router = RouterThread()
        control = ControlClient(HOST, router.router.control_port,
                                timeout=120)
        clients.append(control)
        yield control, spokes
    finally:
        if router is not None:
            router.close()
        for client in clients:
            try:
                client.call("shutdown")
            except Exception:  # noqa: BLE001
                pass
            client.close()
        for process in processes:
            try:
                process.wait(timeout=10)
            except Exception:  # noqa: BLE001
                process.kill()


@pytest.mark.live(timeout=300)
class TestShardedDaemon:
    def test_full_lifecycle_across_workers(self, sharded_hub):
        control, spokes = sharded_hub
        assert control.call("ping")["workers"] == WORKERS

        ring = HashRing([f"hub-w{i}" for i in range(WORKERS)])
        channels = {}
        for name in SPOKES:
            port = spokes[name][0]
            connected = control.call("connect", peer=name, host=HOST,
                                     port=port)
            # The router must agree with an independently computed ring —
            # ownership is a pure function of the names.
            assert connected["worker"] == ring.owner(name)
            opened = control.call("open-channel", peer=name)
            assert opened["worker"] == ring.owner(name)
            channels[name] = opened["channel_id"]

        shard_map = control.call("shard-map")
        assert shard_map["peers"] == {name: ring.owner(name)
                                      for name in SPOKES}
        assert set(shard_map["channels"]) == set(channels.values())

        for name in SPOKES:
            deposit = control.call("deposit", value=DEPOSIT, peer=name)
            associated = control.call(
                "approve-associate", peer=name,
                channel_id=channels[name], txid=deposit["txid"])
            assert associated["my_balance"] == DEPOSIT

        # Pool-wide fast path: broadcast hits every worker.
        enabled = control.call("fastpath", enabled=1, checkpoint_every=4)
        assert set(enabled["workers"]) == set(f"hub-w{i}"
                                              for i in range(WORKERS))

        for name in SPOKES:
            for _ in range(10):
                control.call("pay", channel_id=channels[name], amount=100)
            snapshot = control.call("channel", channel_id=channels[name])
            assert snapshot["my_balance"] == DEPOSIT - 1_000
            assert snapshot["worker"] == ring.owner(name)

        stats = control.call("stats")
        assert stats["payments"]["sent"] == 20
        assert stats["channels"] == len(SPOKES)

        metrics = control.call("metrics")["metrics"]["counters"]
        assert metrics.get("crypto.mac_fastpath", 0) == 20

        # Settle both channels; each routes to its owner and conserves
        # money exactly (the pre-settle checkpoint flush covered the
        # unsigned fast-path tail).
        for name in SPOKES:
            settled = control.call("settle", channel_id=channels[name])
            assert settled["worker"] == ring.owner(name)
            assert not settled["offchain"]

    def test_unrouted_channel_is_rejected(self, sharded_hub):
        control, _spokes = sharded_hub
        with pytest.raises(Exception) as excinfo:
            control.call("pay", channel_id="chan-nowhere-1", amount=1)
        assert "no worker owns" in str(excinfo.value)

    def test_unknown_command_names_itself(self, sharded_hub):
        control, _spokes = sharded_hub
        with pytest.raises(Exception) as excinfo:
            control.call("frobnicate")
        assert "unknown command" in str(excinfo.value)

    def test_deposit_requires_routing_hint(self, sharded_hub):
        control, _spokes = sharded_hub
        with pytest.raises(Exception) as excinfo:
            control.call("deposit", value=1_000)
        assert "owning worker" in str(excinfo.value)
