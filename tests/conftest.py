"""Shared fixtures: funded nodes, channels, and multi-hop paths.

Also enforces per-test timeouts on ``live``-marked tests (real sockets
and subprocesses): a wedged daemon must fail the test, not hang CI.
SIGALRM keeps this dependency-free; on platforms without it (Windows)
live tests simply run un-timed.
"""

import signal

import pytest

from repro.core.node import TeechainNetwork

LIVE_TEST_TIMEOUT_S = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("live")
    use_alarm = marker is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        timeout = int(marker.kwargs.get("timeout", LIVE_TEST_TIMEOUT_S))

        def on_timeout(signum, frame):
            raise TimeoutError(
                f"live test exceeded {timeout}s (wedged daemon/socket?)"
            )

        previous = signal.signal(signal.SIGALRM, on_timeout)
        signal.alarm(timeout)
    yield
    if use_alarm:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def network():
    return TeechainNetwork()


@pytest.fixture
def funded_pair(network):
    """Alice and Bob, each with 100k on-chain."""
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    return network, alice, bob


@pytest.fixture
def open_channel(funded_pair):
    """An open channel with a 50k deposit from alice and 30k from bob."""
    network, alice, bob = funded_pair
    channel = alice.open_channel(bob)
    deposit_a = alice.create_deposit(50_000)
    alice.approve_and_associate(bob, deposit_a, channel)
    deposit_b = bob.create_deposit(30_000)
    bob.approve_and_associate(alice, deposit_b, channel)
    return network, alice, bob, channel


@pytest.fixture
def three_hop_path(network):
    """alice → bob → carol with 40k deposits on both channels."""
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    carol = network.create_node("carol", funds=100_000)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(40_000)
    bob.approve_and_associate(carol, deposit_bc, bc)
    return network, alice, bob, carol, ab, bc
