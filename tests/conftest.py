"""Shared fixtures: funded nodes, channels, and multi-hop paths."""

import pytest

from repro.core.node import TeechainNetwork


@pytest.fixture
def network():
    return TeechainNetwork()


@pytest.fixture
def funded_pair(network):
    """Alice and Bob, each with 100k on-chain."""
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    return network, alice, bob


@pytest.fixture
def open_channel(funded_pair):
    """An open channel with a 50k deposit from alice and 30k from bob."""
    network, alice, bob = funded_pair
    channel = alice.open_channel(bob)
    deposit_a = alice.create_deposit(50_000)
    alice.approve_and_associate(bob, deposit_a, channel)
    deposit_b = bob.create_deposit(30_000)
    bob.approve_and_associate(alice, deposit_b, channel)
    return network, alice, bob, channel


@pytest.fixture
def three_hop_path(network):
    """alice → bob → carol with 40k deposits on both channels."""
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    carol = network.create_node("carol", funds=100_000)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(40_000)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(40_000)
    bob.approve_and_associate(carol, deposit_bc, bc)
    return network, alice, bob, carol, ab, bc
