"""Teechain reproduction: a secure payment network with asynchronous
blockchain access (Lind et al., SOSP 2019).

Quickstart::

    from repro import TeechainNetwork

    network = TeechainNetwork()
    alice = network.create_node("alice", funds=100_000)
    bob = network.create_node("bob", funds=100_000)
    channel = alice.open_channel(bob)
    deposit = alice.create_deposit(50_000)
    alice.approve_and_associate(bob, deposit, channel)
    alice.pay(channel, 1_000)
    alice.settle(channel)

Package layout:

* :mod:`repro.core` — the Teechain protocols (channels, multi-hop
  payments, force-freeze replication, committee chains) and the
  :class:`TeechainNode` public API.
* :mod:`repro.tee` — the simulated trusted-execution substrate.
* :mod:`repro.blockchain` — the simulated Bitcoin-like ledger with
  asynchronous write access.
* :mod:`repro.network` — transport, topologies, attested secure channels.
* :mod:`repro.crypto` — secp256k1 ECDSA, AEAD, Shamir sharing, multisig.
* :mod:`repro.baselines` — Lightning Network, DMC, SFMC.
* :mod:`repro.workloads` — synthetic Bitcoin-trace payment workloads.
* :mod:`repro.bench` — the evaluation harness reproducing every table and
  figure of the paper's §7 (see EXPERIMENTS.md).
"""

from repro.core.correctness import BalanceTracker
from repro.core.node import TeechainNetwork, TeechainNode

__version__ = "1.0.0"

__all__ = ["BalanceTracker", "TeechainNetwork", "TeechainNode", "__version__"]
