"""``python -m repro.load`` — drive payment load at live daemons.

Two subcommands:

``run``
    Drive daemons that are already serving.  Targets are
    ``host:port/channel_id`` (control address of the daemon that
    *originates* the payments).  Prints the report as JSON and, with
    ``--sidecar``, writes ``BENCH_<name>.json``.

``smoke``
    Self-contained check used by CI: launch a two-daemon loopback
    network, run a few hundred closed-loop payments bidirectionally,
    settle, and verify (a) zero protocol-plane transport drops,
    (b) zero payment errors, and (c) exact on-chain conservation.
    Writes ``BENCH_load.json`` and exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.bench.harness import ExperimentResult, write_sidecar
from repro.load.generators import (
    LoadReport,
    LoadTarget,
    run_load,
    transport_drops,
)
from repro.obs import MetricsRegistry
from repro.runtime.launch import HOST, launch_network

GENESIS = 200_000
DEPOSIT = 60_000
A_TO_B, B_TO_A = 2, 1  # asymmetric so the smoke settlement is on-chain


def _result_rows(experiment: str,
                 report: LoadReport) -> List[ExperimentResult]:
    """Per-target throughput/p50/p95 rows for the sidecar table."""
    rows: List[ExperimentResult] = []
    for target in report.targets:
        if target["throughput_tx_s"] is not None:
            rows.append(ExperimentResult(
                experiment, target["target"], "throughput",
                target["throughput_tx_s"], None, "tx/s"))
        latency = target["latency"]
        if latency:
            rows.append(ExperimentResult(
                experiment, target["target"], "p50",
                latency["p50"] * 1000, None, "ms"))
            rows.append(ExperimentResult(
                experiment, target["target"], "p95",
                latency["p95"] * 1000, None, "ms"))
    return rows


def _write_sidecar(name: str, experiment: str, report: LoadReport,
                   registry: MetricsRegistry, directory: Optional[str],
                   extra: Dict[str, Any]) -> str:
    if directory:
        os.makedirs(directory, exist_ok=True)
    return write_sidecar(
        name, _result_rows(experiment, report), metrics=registry,
        extra={"load": report.to_dict(), **extra}, directory=directory)


def _cmd_run(args: argparse.Namespace) -> int:
    targets = [LoadTarget.parse(spec, amount=args.amount)
               for spec in args.target]
    registry = MetricsRegistry()
    report = asyncio.run(run_load(
        targets, mode=args.mode, payments_per_target=args.count,
        concurrency=args.concurrency, rate=args.rate,
        duration_s=args.duration, max_inflight=args.max_inflight,
        timeout=args.timeout, registry=registry))
    addresses = sorted({(t.host, t.port) for t in targets})
    drops = asyncio.run(transport_drops(addresses))
    payload = {**report.to_dict(), "transport_drops": drops}
    print(json.dumps(payload, indent=2))
    if args.sidecar:
        path = _write_sidecar(args.sidecar, "load run", report, registry,
                              args.sidecar_dir, {"transport_drops": drops})
        print(f"sidecar: {path}", file=sys.stderr)
    if args.fail_on_drops and drops["protocol"]:
        print(f"FAIL: {drops['protocol']} protocol-plane frame(s) dropped",
              file=sys.stderr)
        return 1
    return 0


def _poll(predicate, timeout: float = 30.0, interval: float = 0.05,
          what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(interval)


def _cmd_smoke(args: argparse.Namespace) -> int:
    payments = args.payments
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    alice = handles["alice"].control
    bob = handles["bob"].control
    try:
        channel_id = alice.call("open-channel", peer="bob")["channel_id"]
        for client, peer in ((alice, "bob"), (bob, "alice")):
            deposit = client.call("deposit", value=DEPOSIT)
            client.call("approve-associate", peer=peer,
                        channel_id=channel_id, txid=deposit["txid"])

        def funded(client) -> bool:
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == DEPOSIT
                    and snapshot["remote_balance"] == DEPOSIT)

        _poll(lambda: funded(alice) and funded(bob),
              what="both deposits visible on both daemons")

        targets = [
            LoadTarget(HOST, handles["alice"].control_port, channel_id,
                       amount=A_TO_B, label="alice->bob"),
            LoadTarget(HOST, handles["bob"].control_port, channel_id,
                       amount=B_TO_A, label="bob->alice"),
        ]
        registry = MetricsRegistry()
        report = asyncio.run(run_load(
            targets, mode="closed", payments_per_target=payments,
            concurrency=args.concurrency, registry=registry))

        # Every payment the generators report complete must land in the
        # channel ledger on both sides before we settle.
        net = payments * (A_TO_B - B_TO_A)
        final_alice = DEPOSIT - net
        final_bob = DEPOSIT + net

        def converged(client, mine, theirs) -> bool:
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == mine
                    and snapshot["remote_balance"] == theirs)

        _poll(lambda: converged(alice, final_alice, final_bob)
              and converged(bob, final_bob, final_alice),
              what="channel balances to converge after the load run")

        drops = asyncio.run(transport_drops(
            [(HOST, handles["alice"].control_port),
             (HOST, handles["bob"].control_port)]))

        settlement = alice.call("settle", channel_id=channel_id)
        height = alice.call("stats")["chain"]["height"]
        _poll(lambda: bob.call("stats")["chain"]["height"] == height,
              what="bob's chain replica to include the settlement")
        balance_a = alice.call("balance")["onchain"]
        balance_b = bob.call("balance")["onchain"]
    finally:
        for handle in handles.values():
            handle.shutdown()

    conservation = {
        "balance_alice": balance_a,
        "balance_bob": balance_b,
        "total": balance_a + balance_b,
        "expected_total": 2 * GENESIS,
        "expected_alice": GENESIS - DEPOSIT + final_alice,
        "expected_bob": GENESIS - DEPOSIT + final_bob,
    }
    path = _write_sidecar(
        "load", "load smoke", report, registry, args.sidecar_dir,
        {"transport_drops": drops, "conservation": conservation,
         "settlement": settlement})
    print(json.dumps({**report.to_dict(), "transport_drops": drops,
                      "conservation": conservation}, indent=2))
    print(f"sidecar: {path}", file=sys.stderr)

    failures: List[str] = []
    if drops["protocol"]:
        failures.append(
            f"{drops['protocol']} protocol-plane frame(s) dropped")
    if report.errors:
        failures.append(f"{report.errors} payment(s) errored")
    if report.completed != 2 * payments:
        failures.append(f"completed {report.completed} of {2 * payments}")
    if balance_a != conservation["expected_alice"]:
        failures.append(f"alice settled to {balance_a}, "
                        f"expected {conservation['expected_alice']}")
    if balance_a + balance_b != 2 * GENESIS:
        failures.append(f"conservation broken: {balance_a + balance_b} "
                        f"!= {2 * GENESIS}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: {report.completed} payments, zero drops, "
              "balances conserved", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load",
        description="Payment load generation against live daemons.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="drive already-running daemons")
    run.add_argument("--target", action="append", required=True,
                     metavar="HOST:PORT/CHANNEL",
                     help="control address of the paying daemon plus the "
                          "channel id (repeatable)")
    run.add_argument("--mode", choices=("closed", "open"), default="closed")
    run.add_argument("--count", type=int, default=100,
                     help="payments per target (closed, or open without "
                          "--duration)")
    run.add_argument("--concurrency", type=int, default=4,
                     help="closed loop: users per target")
    run.add_argument("--rate", type=float, default=100.0,
                     help="open loop: payments/s per target")
    run.add_argument("--duration", type=float, default=None,
                     help="open loop: run length in seconds")
    run.add_argument("--max-inflight", type=int, default=64,
                     help="open loop: in-flight cap per target")
    run.add_argument("--amount", type=int, default=1)
    run.add_argument("--timeout", type=float, default=120.0)
    run.add_argument("--sidecar", default=None, metavar="NAME",
                     help="write BENCH_<NAME>.json")
    run.add_argument("--sidecar-dir", default=None)
    run.add_argument("--fail-on-drops", action="store_true",
                     help="exit nonzero on protocol-plane transport drops")
    run.set_defaults(func=_cmd_run)

    smoke = sub.add_parser(
        "smoke", help="self-contained loopback load check (CI)")
    smoke.add_argument("--payments", type=int, default=150,
                       help="payments per direction")
    smoke.add_argument("--concurrency", type=int, default=4)
    smoke.add_argument("--sidecar-dir", default=None,
                       help="where BENCH_load.json goes (default: cwd)")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
