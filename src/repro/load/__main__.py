"""``python -m repro.load`` — drive payment load at live daemons.

Two subcommands:

``run``
    Drive daemons that are already serving.  Targets are
    ``host:port/channel_id`` (control address of the daemon that
    *originates* the payments).  Prints the report as JSON and, with
    ``--sidecar``, writes ``BENCH_<name>.json``.

``smoke``
    Self-contained check used by CI.  ``--mode channel`` (default):
    launch a two-daemon loopback network, run a few hundred
    closed-loop payments bidirectionally, settle, and verify (a) zero
    protocol-plane transport drops, (b) zero payment errors, and
    (c) exact on-chain conservation.  Writes ``BENCH_load.json``.

    ``--mode account``: launch a hub plus two channel peers, open
    ``--accounts`` simulated client accounts inside the hub's enclave,
    drive closed-loop account pays, inject a forged and a replayed
    request (both must be rejected with their stable codes), withdraw
    over a real channel, settle it, and verify the ledger's exact
    conservation invariant plus zero drops/errors.  Writes
    ``BENCH_load_hub.json``.

    Both exit nonzero on any violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.bench.harness import ExperimentResult, write_sidecar
from repro.crypto.keys import KeyPair
from repro.hub.client import sign_request
from repro.hub.messages import AccountPay
from repro.load.accounts import AccountFleet
from repro.load.generators import (
    LoadReport,
    LoadTarget,
    run_load,
    transport_drops,
)
from repro.obs import MetricsRegistry
from repro.obs.fleet import FleetMonitorThread
from repro.runtime.control import ControlError
from repro.runtime.launch import HOST, launch_network

GENESIS = 200_000
DEPOSIT = 60_000
A_TO_B, B_TO_A = 2, 1  # asymmetric so the smoke settlement is on-chain


def _result_rows(experiment: str,
                 report: LoadReport) -> List[ExperimentResult]:
    """Per-target throughput/p50/p95 rows for the sidecar table."""
    rows: List[ExperimentResult] = []
    for target in report.targets:
        if target["throughput_tx_s"] is not None:
            rows.append(ExperimentResult(
                experiment, target["target"], "throughput",
                target["throughput_tx_s"], None, "tx/s"))
        latency = target["latency"]
        if latency:
            rows.append(ExperimentResult(
                experiment, target["target"], "p50",
                latency["p50"] * 1000, None, "ms"))
            rows.append(ExperimentResult(
                experiment, target["target"], "p95",
                latency["p95"] * 1000, None, "ms"))
    return rows


def _write_sidecar(name: str, experiment: str, report: LoadReport,
                   registry: MetricsRegistry, directory: Optional[str],
                   extra: Dict[str, Any]) -> str:
    if directory:
        os.makedirs(directory, exist_ok=True)
    return write_sidecar(
        name, _result_rows(experiment, report), metrics=registry,
        extra={"load": report.to_dict(), **extra}, directory=directory)


def _start_monitor(args: argparse.Namespace,
                   targets: Dict[str, Any]) -> Optional[FleetMonitorThread]:
    """Attach a FleetMonitor (own thread + loop) when ``--monitor`` is
    set; sweeps run concurrently with whatever the caller drives."""
    if not getattr(args, "monitor", False):
        return None
    return FleetMonitorThread(
        targets, interval=args.monitor_interval).start()


def _finish_monitor(monitored: Optional[FleetMonitorThread],
                    failures: List[str],
                    extra: Dict[str, Any]) -> None:
    """Stop the monitor, fold its sidecar payload into ``extra``, and
    turn any CRITICAL alert ever raised into a smoke failure."""
    if monitored is None:
        return
    monitored.stop()
    monitor = monitored.monitor
    if monitor is None:
        failures.append("fleet monitor never started")
        return
    extra["fleet"] = monitor.to_sidecar()
    for alert in monitor.auditor.critical_alerts():
        failures.append(f"CRITICAL alert {alert.code} on {alert.subject}: "
                        f"{alert.detail}")


def _cmd_run(args: argparse.Namespace) -> int:
    targets = [LoadTarget.parse(spec, amount=args.amount)
               for spec in args.target]
    addresses = sorted({(t.host, t.port) for t in targets})
    monitored = _start_monitor(
        args, {f"{host}:{port}": (host, port) for host, port in addresses})
    registry = MetricsRegistry()
    try:
        report = asyncio.run(run_load(
            targets, mode=args.mode, payments_per_target=args.count,
            concurrency=args.concurrency, rate=args.rate,
            duration_s=args.duration, max_inflight=args.max_inflight,
            timeout=args.timeout, registry=registry))
        drops = asyncio.run(transport_drops(addresses))
    except BaseException:
        if monitored is not None:
            monitored.stop()
        raise
    failures: List[str] = []
    extra: Dict[str, Any] = {"transport_drops": drops}
    _finish_monitor(monitored, failures, extra)
    payload = {**report.to_dict(), "transport_drops": drops}
    if "fleet" in extra:
        payload["alerts"] = extra["fleet"]["audit"]["log"]
    print(json.dumps(payload, indent=2))
    if args.sidecar:
        path = _write_sidecar(args.sidecar, "load run", report, registry,
                              args.sidecar_dir, extra)
        print(f"sidecar: {path}", file=sys.stderr)
    if args.fail_on_drops and drops["protocol"]:
        failures.append(
            f"{drops['protocol']} protocol-plane frame(s) dropped")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _poll(predicate, timeout: float = 30.0, interval: float = 0.05,
          what: str = "condition") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(interval)


def _cmd_smoke(args: argparse.Namespace) -> int:
    if args.mode == "account":
        return _smoke_account(args)
    return _smoke_channel(args)


def _smoke_channel(args: argparse.Namespace) -> int:
    payments = args.payments
    handles, _ = launch_network({"alice": GENESIS, "bob": GENESIS})
    alice = handles["alice"].control
    bob = handles["bob"].control
    failures: List[str] = []
    monitor_extra: Dict[str, Any] = {}
    monitored = None
    try:
        channel_id = alice.call("open-channel", peer="bob")["channel_id"]
        for client, peer in ((alice, "bob"), (bob, "alice")):
            deposit = client.call("deposit", value=DEPOSIT)
            client.call("approve-associate", peer=peer,
                        channel_id=channel_id, txid=deposit["txid"])

        def funded(client) -> bool:
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == DEPOSIT
                    and snapshot["remote_balance"] == DEPOSIT)

        _poll(lambda: funded(alice) and funded(bob),
              what="both deposits visible on both daemons")

        # Audit plane: sweep the fleet concurrently with the load and
        # through settlement; any CRITICAL alert fails the smoke.
        monitored = _start_monitor(args, {
            "alice": (HOST, handles["alice"].control_port),
            "bob": (HOST, handles["bob"].control_port),
        })

        targets = [
            LoadTarget(HOST, handles["alice"].control_port, channel_id,
                       amount=A_TO_B, label="alice->bob"),
            LoadTarget(HOST, handles["bob"].control_port, channel_id,
                       amount=B_TO_A, label="bob->alice"),
        ]
        registry = MetricsRegistry()
        report = asyncio.run(run_load(
            targets, mode="closed", payments_per_target=payments,
            concurrency=args.concurrency, registry=registry))

        # Every payment the generators report complete must land in the
        # channel ledger on both sides before we settle.
        net = payments * (A_TO_B - B_TO_A)
        final_alice = DEPOSIT - net
        final_bob = DEPOSIT + net

        def converged(client, mine, theirs) -> bool:
            snapshot = client.call("channel", channel_id=channel_id)
            return (snapshot["my_balance"] == mine
                    and snapshot["remote_balance"] == theirs)

        _poll(lambda: converged(alice, final_alice, final_bob)
              and converged(bob, final_bob, final_alice),
              what="channel balances to converge after the load run")

        drops = asyncio.run(transport_drops(
            [(HOST, handles["alice"].control_port),
             (HOST, handles["bob"].control_port)]))

        settlement = alice.call("settle", channel_id=channel_id)
        height = alice.call("stats")["chain"]["height"]
        _poll(lambda: bob.call("stats")["chain"]["height"] == height,
              what="bob's chain replica to include the settlement")
        balance_a = alice.call("balance")["onchain"]
        balance_b = bob.call("balance")["onchain"]
        _finish_monitor(monitored, failures, monitor_extra)
        monitored = None
    finally:
        if monitored is not None:
            monitored.stop()
        for handle in handles.values():
            handle.shutdown()

    conservation = {
        "balance_alice": balance_a,
        "balance_bob": balance_b,
        "total": balance_a + balance_b,
        "expected_total": 2 * GENESIS,
        "expected_alice": GENESIS - DEPOSIT + final_alice,
        "expected_bob": GENESIS - DEPOSIT + final_bob,
    }
    path = _write_sidecar(
        "load", "load smoke", report, registry, args.sidecar_dir,
        {"transport_drops": drops, "conservation": conservation,
         "settlement": settlement, **monitor_extra})
    print(json.dumps({**report.to_dict(), "transport_drops": drops,
                      "conservation": conservation}, indent=2))
    print(f"sidecar: {path}", file=sys.stderr)

    if drops["protocol"]:
        failures.append(
            f"{drops['protocol']} protocol-plane frame(s) dropped")
    if report.errors:
        failures.append(f"{report.errors} payment(s) errored")
    if report.completed != 2 * payments:
        failures.append(f"completed {report.completed} of {2 * payments}")
    if balance_a != conservation["expected_alice"]:
        failures.append(f"alice settled to {balance_a}, "
                        f"expected {conservation['expected_alice']}")
    if balance_a + balance_b != 2 * GENESIS:
        failures.append(f"conservation broken: {balance_a + balance_b} "
                        f"!= {2 * GENESIS}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: {report.completed} payments, zero drops, "
              "balances conserved", file=sys.stderr)
    return 1 if failures else 0


HUB_FEE = 1
ACCOUNT_PAY = 2  # must exceed the fee


def _smoke_account(args: argparse.Namespace) -> int:
    """Hub-account smoke: open N accounts in one enclave, drive pays,
    reject a forged and a replayed request, withdraw over a channel,
    settle it, and check the ledger's exact conservation invariant."""
    accounts, payments = args.accounts, args.payments
    streams = 4
    handles, _ = launch_network(
        {"hub": GENESIS, "alice": GENESIS, "bob": GENESIS})
    hub = handles["hub"].control
    alice = handles["alice"].control
    failures: List[str] = []
    monitor_extra: Dict[str, Any] = {}
    monitored = None
    try:
        channels = {}
        for peer in ("alice", "bob"):
            channel_id = hub.call("open-channel",
                                  peer=peer)["channel_id"]
            deposit = hub.call("deposit", value=DEPOSIT)
            hub.call("approve-associate", peer=peer,
                     channel_id=channel_id, txid=deposit["txid"])
            channels[peer] = channel_id

        def backed() -> bool:
            return all(
                hub.call("channel", channel_id=cid)["my_balance"]
                == DEPOSIT for cid in channels.values())

        _poll(backed, what="hub deposits to associate on both channels")
        monitored = _start_monitor(args, {
            name: (HOST, handle.control_port)
            for name, handle in handles.items()
        })
        backing = len(channels) * DEPOSIT
        per_account = backing // accounts
        if per_account <= 0:
            raise SystemExit(f"--accounts {accounts} too large for "
                             f"backing {backing}")

        hub.call("hub-fee", fee_per_pay=HUB_FEE)
        fleet = AccountFleet(accounts)
        for batch in fleet.open_batches(per_account):
            opened = hub.call("account-pay-many", requests=batch)
            if opened["accepted"] != len(batch):
                failures.append(
                    f"account opening rejected "
                    f"{opened['rejected']}/{len(batch)} deposits")

        targets = fleet.pay_targets(
            HOST, handles["hub"].control_port, ACCOUNT_PAY,
            streams=streams)
        registry = MetricsRegistry()
        report = asyncio.run(run_load(
            targets, mode="closed", payments_per_target=payments,
            concurrency=args.concurrency, registry=registry))

        # Adversarial injections: a request signed with the wrong key,
        # then a legitimate request submitted twice.  Both must be
        # refused with their stable codes and counted by the enclave.
        attacker = KeyPair.from_seed(b"smoke-attacker")
        forged = sign_request(
            AccountPay(fleet.signers[0].account,
                       fleet.signers[1].account, 1, 10**6),
            attacker.private)
        try:
            hub.call("account-pay", request=forged)
            failures.append("forged request was accepted")
        except ControlError as exc:
            if exc.code != "authentication_failed":
                failures.append(
                    f"forged request rejected as {exc.code!r}, "
                    "expected 'authentication_failed'")
        replay = fleet.pay_request(0, ACCOUNT_PAY)
        extra_pays = 0
        try:
            hub.call("account-pay", request=replay)
            extra_pays = 1
            hub.call("account-pay", request=replay)
            failures.append("replayed request was accepted")
        except ControlError as exc:
            if exc.code != "stale_nonce":
                failures.append(f"replay rejected as {exc.code!r}, "
                                "expected 'stale_nonce'")

        stats = hub.call("account-stats")["hub"]
        expected_pays = streams * payments + extra_pays
        checks = [
            ("accounts", accounts), ("pays", expected_pays),
            ("deposited_total", accounts * per_account),
            ("fee_bucket", expected_pays * HUB_FEE),
            ("withdrawn_total", 0),
            ("conserved", True), ("solvent", True),
        ]
        for key, expected in checks:
            if stats[key] != expected:
                failures.append(
                    f"hub.{key} = {stats[key]!r}, expected {expected!r}")

        # Withdraw over a real channel, then settle that channel: the
        # value must leave the enclave and land in alice's wallet.
        withdrawal = per_account // 4
        hub.call("account-withdraw",
                 request=fleet.signers[0].withdraw_request(
                     withdrawal, "channel", channels["alice"]))
        _poll(lambda: alice.call(
                  "channel",
                  channel_id=channels["alice"])["my_balance"]
              == withdrawal,
              what="channel withdrawal to reach alice")
        after = hub.call("account-stats")["hub"]
        if after["withdrawn_total"] != withdrawal:
            failures.append(f"withdrawn_total {after['withdrawn_total']}"
                            f" != {withdrawal}")
        if not after["conserved"]:
            failures.append("ledger not conserved after withdrawal")

        drops = asyncio.run(transport_drops(
            [(HOST, handle.control_port) for handle in handles.values()]))
        counters = hub.call("metrics")["metrics"]["counters"]
        hub.call("settle", channel_id=channels["alice"])
        _poll(lambda: alice.call("balance")["onchain"]
              == GENESIS + withdrawal,
              what="settlement to pay alice's wallet")
        balance_alice = alice.call("balance")["onchain"]
        _finish_monitor(monitored, failures, monitor_extra)
        monitored = None
    finally:
        if monitored is not None:
            monitored.stop()
        for handle in handles.values():
            handle.shutdown()

    if drops["protocol"]:
        failures.append(
            f"{drops['protocol']} protocol-plane frame(s) dropped")
    if report.errors:
        failures.append(f"{report.errors} account pay(s) rejected: "
                        f"{report.rejected}")
    if report.completed != streams * payments:
        failures.append(f"completed {report.completed} "
                        f"of {streams * payments}")
    if not counters.get("hub.rejected_sigs"):
        failures.append("hub.rejected_sigs not incremented")
    if not counters.get("hub.rejected_nonces"):
        failures.append("hub.rejected_nonces not incremented")
    if balance_alice != GENESIS + withdrawal:
        failures.append(f"alice settled to {balance_alice}, expected "
                        f"{GENESIS + withdrawal}")

    conservation = {
        "accounts": accounts, "per_account": per_account,
        "backing": backing, "stats": after,
        "balance_alice": balance_alice,
    }
    path = _write_sidecar(
        "load_hub", "load smoke (account)", report, registry,
        args.sidecar_dir,
        {"transport_drops": drops, "conservation": conservation,
         "hub_counters": {k: v for k, v in counters.items()
                          if k.startswith("hub.")},
         **monitor_extra})
    print(json.dumps({**report.to_dict(), "transport_drops": drops,
                      "conservation": conservation}, indent=2))
    print(f"sidecar: {path}", file=sys.stderr)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: {accounts} accounts, {report.completed} account "
              "pays, forged/replayed rejected, ledger conserved",
              file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load",
        description="Payment load generation against live daemons.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="drive already-running daemons")
    run.add_argument("--target", action="append", required=True,
                     metavar="HOST:PORT/CHANNEL",
                     help="control address of the paying daemon plus the "
                          "channel id (repeatable)")
    run.add_argument("--mode", choices=("closed", "open"), default="closed")
    run.add_argument("--count", type=int, default=100,
                     help="payments per target (closed, or open without "
                          "--duration)")
    run.add_argument("--concurrency", type=int, default=4,
                     help="closed loop: users per target")
    run.add_argument("--rate", type=float, default=100.0,
                     help="open loop: payments/s per target")
    run.add_argument("--duration", type=float, default=None,
                     help="open loop: run length in seconds")
    run.add_argument("--max-inflight", type=int, default=64,
                     help="open loop: in-flight cap per target")
    run.add_argument("--amount", type=int, default=1)
    run.add_argument("--timeout", type=float, default=120.0)
    run.add_argument("--sidecar", default=None, metavar="NAME",
                     help="write BENCH_<NAME>.json")
    run.add_argument("--sidecar-dir", default=None)
    run.add_argument("--fail-on-drops", action="store_true",
                     help="exit nonzero on protocol-plane transport drops")
    run.add_argument("--monitor", action="store_true",
                     help="attach a FleetMonitor during the run; any "
                          "CRITICAL invariant alert exits nonzero")
    run.add_argument("--monitor-interval", type=float, default=0.25,
                     help="seconds between monitor sweeps (default 0.25)")
    run.set_defaults(func=_cmd_run)

    smoke = sub.add_parser(
        "smoke", help="self-contained loopback load check (CI)")
    smoke.add_argument("--mode", choices=("channel", "account"),
                       default="channel",
                       help="channel: loopback pair; account: hub "
                            "with simulated client accounts")
    smoke.add_argument("--payments", type=int, default=150,
                       help="payments per direction (channel) or per "
                            "stream (account)")
    smoke.add_argument("--accounts", type=int, default=200,
                       help="account mode: simulated clients")
    smoke.add_argument("--concurrency", type=int, default=4)
    smoke.add_argument("--sidecar-dir", default=None,
                       help="where BENCH_load[_hub].json goes "
                            "(default: cwd)")
    smoke.add_argument("--monitor", action="store_true",
                       help="audit invariants concurrently with the "
                            "load; any CRITICAL alert fails the smoke")
    smoke.add_argument("--monitor-interval", type=float, default=0.25,
                       help="seconds between monitor sweeps "
                            "(default 0.25)")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
