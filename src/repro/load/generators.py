"""Open- and closed-loop payment generators.

A *target* is one payment stream: the control address of the daemon
that originates the payments plus the channel to pay over.  Generators
drive every target concurrently; within a target, concurrency comes
from parallel control connections (the daemon serves each connection
serially, so one :class:`AsyncControlClient` is exactly one in-flight
command).

Closed loop fixes the number of users; open loop fixes the offered
rate.  Open-loop latency is measured from each payment's *scheduled*
time, not its actual send time — when the system can't keep up, the
queueing delay lands in the latency numbers instead of being hidden by
a generator that quietly slowed down (the coordinated-omission trap).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import MetricsRegistry, summarize_samples
from repro.runtime.control import AsyncControlClient, ControlError

__all__ = [
    "LoadReport",
    "LoadTarget",
    "run_closed_loop",
    "run_load",
    "run_open_loop",
    "transport_drops",
]


@dataclass(frozen=True)
class LoadTarget:
    """One payment stream: which daemon pays, over which channel."""

    host: str
    port: int  # the *driving* daemon's control port
    channel_id: str
    amount: int = 1
    label: str = ""
    # Optional request builder: () -> (cmd, kwargs).  When set, each
    # attempt issues that command instead of the default channel "pay" —
    # this is how hub-account streams plug in (each call signs a fresh
    # nonce, so the factory must be called once per attempt, never
    # cached).  Excluded from equality/hash so frozen targets stay
    # comparable.
    request_factory: Optional[Callable[[], Tuple[str, Dict[str, Any]]]] = \
        field(default=None, compare=False)

    @property
    def name(self) -> str:
        # The same channel can be driven from both ends, so the default
        # label includes the driver's address, not just the channel.
        return self.label or f"{self.channel_id}@{self.host}:{self.port}"

    @classmethod
    def parse(cls, spec: str, amount: int = 1) -> "LoadTarget":
        """Parse ``host:port/channel_id`` (the CLI ``--target`` form)."""
        address, _, channel_id = spec.partition("/")
        host, _, port = address.rpartition(":")
        if not (host and port.isdigit() and channel_id):
            raise ValueError(
                f"target spec {spec!r} is not host:port/channel_id")
        return cls(host=host, port=int(port), channel_id=channel_id,
                   amount=amount)


class _TargetState:
    """Mutable per-target accounting shared by that target's workers."""

    def __init__(self, target: LoadTarget, total: int) -> None:
        self.target = target
        self.remaining = total
        self.sent = 0
        self.completed = 0
        self.errors = 0
        self.late = 0     # open loop: payments scheduled in the past
        self.stalls = 0   # open loop: scheduler blocked on the pool
        self.samples: List[float] = []
        self.aborted: Optional[str] = None
        self.rejected: Dict[str, int] = {}  # error code -> count

    def take(self) -> bool:
        if self.remaining <= 0 or self.aborted is not None:
            return False
        self.remaining -= 1
        return True

    def record(self, latency_s: float,
               registry: MetricsRegistry) -> None:
        self.completed += 1
        self.samples.append(latency_s)
        if registry.enabled:
            registry.observe(f"load.latency[{self.target.name}]", latency_s)
            registry.inc("load.completed")

    def record_error(self, registry: MetricsRegistry,
                     code: Optional[str] = None) -> None:
        self.errors += 1
        if code is not None:
            self.rejected[code] = self.rejected.get(code, 0) + 1
        if registry.enabled:
            registry.inc("load.errors")
            registry.inc(f"load.errors[{self.target.name}]")
            if code is not None:
                registry.inc(f"load.rejected[{code}]")

    def result(self, elapsed_s: float) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "target": self.target.name,
            "host": self.target.host,
            "port": self.target.port,
            "channel_id": self.target.channel_id,
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "throughput_tx_s": (self.completed / elapsed_s
                                if elapsed_s > 0 else None),
            "latency": (summarize_samples(self.samples)
                        if self.samples else None),
        }
        if self.rejected:
            # Per-code rejection counts (stable control-plane codes), so
            # a report can distinguish "the hub refused these" from "the
            # transport ate these".
            row["rejected"] = dict(sorted(self.rejected.items()))
        if self.late or self.stalls:
            row["late"] = self.late
            row["stalls"] = self.stalls
        if self.aborted is not None:
            row["aborted"] = self.aborted
        return row


@dataclass
class LoadReport:
    """Outcome of one generator run, ready for the sidecar."""

    mode: str
    elapsed_s: float
    targets: List[Dict[str, Any]]

    @property
    def completed(self) -> int:
        return sum(row["completed"] for row in self.targets)

    @property
    def errors(self) -> int:
        return sum(row["errors"] for row in self.targets)

    @property
    def rejected(self) -> Dict[str, int]:
        """Rejection counts by stable error code, across all targets."""
        merged: Dict[str, int] = {}
        for row in self.targets:
            for code, count in (row.get("rejected") or {}).items():
                merged[code] = merged.get(code, 0) + count
        return dict(sorted(merged.items()))

    @property
    def throughput_tx_s(self) -> Optional[float]:
        if self.elapsed_s <= 0:
            return None
        return self.completed / self.elapsed_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "elapsed_s": self.elapsed_s,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "throughput_tx_s": self.throughput_tx_s,
            "targets": self.targets,
        }


async def _pay_once(client: AsyncControlClient, state: _TargetState,
                    registry: MetricsRegistry,
                    started_at: Optional[float] = None) -> None:
    """One payment attempt with the generators' shared error policy:
    command-level rejections (the daemon answered) count as errors and
    the stream continues; transport-level failures abort the target —
    its daemon is gone, retrying would just time out N more times."""
    target = state.target
    state.sent += 1
    if target.request_factory is not None:
        cmd, kwargs = target.request_factory()
    else:
        cmd, kwargs = "pay", {"channel_id": target.channel_id,
                              "amount": target.amount}
    reference = time.perf_counter() if started_at is None else started_at
    try:
        await client.call(cmd, **kwargs)
    except ControlError as exc:
        if exc.code in ("timeout", "connection_closed"):
            state.aborted = f"{exc.code}: {exc}"
        state.record_error(registry, code=exc.code)
        return
    except OSError as exc:
        state.aborted = f"transport: {exc}"
        state.record_error(registry)
        return
    state.record(time.perf_counter() - reference, registry)


async def _closed_worker(state: _TargetState,
                         registry: MetricsRegistry,
                         timeout: float) -> None:
    client = await AsyncControlClient.connect(
        state.target.host, state.target.port, timeout=timeout)
    try:
        while state.take():
            await _pay_once(client, state, registry)
    finally:
        await client.close()


async def run_closed_loop(
    targets: Sequence[LoadTarget],
    payments_per_target: int,
    concurrency: int = 4,
    timeout: float = 120.0,
    registry: Optional[MetricsRegistry] = None,
) -> LoadReport:
    """Fixed-concurrency load: ``concurrency`` users per target, each
    issuing its next payment as soon as the previous one completes."""
    if payments_per_target <= 0:
        raise ValueError("payments_per_target must be positive")
    if concurrency <= 0:
        raise ValueError("concurrency must be positive")
    metrics = registry if registry is not None else obs.get_metrics()
    states = [_TargetState(target, payments_per_target)
              for target in targets]
    started = time.perf_counter()
    workers = [
        _closed_worker(state, metrics, timeout)
        for state in states
        for _ in range(min(concurrency, payments_per_target))
    ]
    await asyncio.gather(*workers)
    elapsed = time.perf_counter() - started
    return LoadReport(mode="closed", elapsed_s=elapsed,
                      targets=[state.result(elapsed) for state in states])


async def _open_target(state: _TargetState, rate: float, total: int,
                       max_inflight: int, timeout: float,
                       registry: MetricsRegistry) -> None:
    """Schedule ``total`` payments at ``rate``/s against one target.

    A bounded pool of control connections caps in-flight commands; when
    the pool is dry the scheduler blocks (counted as a stall) — past
    that point the run is no longer truly open loop, and the stall count
    says so in the report.
    """
    pool_size = min(max_inflight, total)
    pool: "asyncio.Queue[AsyncControlClient]" = asyncio.Queue()
    clients = [
        await AsyncControlClient.connect(state.target.host,
                                         state.target.port, timeout=timeout)
        for _ in range(pool_size)
    ]
    for client in clients:
        pool.put_nowait(client)

    async def fire(client: AsyncControlClient, due: float) -> None:
        await _pay_once(client, state, registry, started_at=due)
        pool.put_nowait(client)

    tasks: List["asyncio.Task[None]"] = []
    epoch = time.perf_counter()
    try:
        for index in range(total):
            if not state.take():
                break
            due = epoch + index / rate
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            else:
                state.late += 1
            if pool.empty():
                state.stalls += 1
            client = await pool.get()
            tasks.append(asyncio.ensure_future(fire(client, due)))
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        for client in clients:
            await client.close()


async def run_open_loop(
    targets: Sequence[LoadTarget],
    rate: float,
    duration_s: Optional[float] = None,
    payments_per_target: Optional[int] = None,
    max_inflight: int = 64,
    timeout: float = 120.0,
    registry: Optional[MetricsRegistry] = None,
) -> LoadReport:
    """Fixed-rate load: ``rate`` payments/s per target, for ``duration_s``
    seconds or ``payments_per_target`` payments (one must be given)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if payments_per_target is None:
        if duration_s is None:
            raise ValueError(
                "open loop needs duration_s or payments_per_target")
        payments_per_target = max(1, int(rate * duration_s))
    metrics = registry if registry is not None else obs.get_metrics()
    states = [_TargetState(target, payments_per_target)
              for target in targets]
    started = time.perf_counter()
    await asyncio.gather(*[
        _open_target(state, rate, payments_per_target, max_inflight,
                     timeout, metrics)
        for state in states
    ])
    elapsed = time.perf_counter() - started
    return LoadReport(mode="open", elapsed_s=elapsed,
                      targets=[state.result(elapsed) for state in states])


async def run_load(
    targets: Sequence[LoadTarget],
    mode: str = "closed",
    payments_per_target: int = 100,
    concurrency: int = 4,
    rate: float = 100.0,
    duration_s: Optional[float] = None,
    max_inflight: int = 64,
    timeout: float = 120.0,
    registry: Optional[MetricsRegistry] = None,
) -> LoadReport:
    """Dispatch to the generator named by ``mode`` (closed | open)."""
    if mode == "closed":
        return await run_closed_loop(
            targets, payments_per_target, concurrency=concurrency,
            timeout=timeout, registry=registry)
    if mode == "open":
        return await run_open_loop(
            targets, rate, duration_s=duration_s,
            payments_per_target=(None if duration_s is not None
                                 else payments_per_target),
            max_inflight=max_inflight, timeout=timeout, registry=registry)
    raise ValueError(f"unknown load mode {mode!r} (closed | open)")


async def transport_drops(
    control_addresses: Sequence[Tuple[str, int]],
    timeout: float = 30.0,
) -> Dict[str, Any]:
    """Per-plane transport drop totals across a set of daemons.

    The post-run check every load experiment should make: a nonzero
    ``protocol`` count means payment frames were lost to queue overflow
    and the throughput numbers are fiction.
    """
    per_daemon: Dict[str, Dict[str, int]] = {}
    totals = {"protocol": 0, "control": 0}
    for host, port in control_addresses:
        client = await AsyncControlClient.connect(host, port,
                                                  timeout=timeout)
        try:
            stats = await client.call("stats")
        finally:
            await client.close()
        peers = stats.get("transport", {}).get("peers", {})
        protocol = sum(peer.get("drops_protocol", 0)
                       for peer in peers.values())
        control = sum(peer.get("drops_control", 0)
                      for peer in peers.values())
        name = stats.get("name") or f"{host}:{port}"
        per_daemon[name] = {"protocol": protocol, "control": control}
        totals["protocol"] += protocol
        totals["control"] += control
    return {**totals, "per_daemon": per_daemon}
