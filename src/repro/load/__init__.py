"""``repro.load`` — concurrent load generation for the live runtime.

The paper's headline numbers are throughput at scale: Table 3 drives a
hub with ~30 concurrent spoke channels and §7.2 reaches 33k tx/s per
channel pair with client-side batching.  This package is the driver for
that shape of experiment against real daemons: it fans payments across
many channels/daemons concurrently from asyncio tasks, measures
per-channel latency and throughput through :mod:`repro.obs`, and writes
the ``BENCH_load`` sidecar.

Two generator disciplines (the classic load-testing split):

* **closed loop** (:func:`run_closed_loop`) — N concurrent users per
  target, each issuing its next payment the moment the previous one
  completes.  Offered load adapts to the system; latency measures pure
  service time.  This is the discipline for "how fast can it go".
* **open loop** (:func:`run_open_loop`) — payments are *scheduled* at a
  fixed target rate regardless of completions, so queueing delay shows
  up in the latency numbers instead of silently throttling the offered
  load.  This is the discipline for "what happens at rate R".

Each concurrent user is one control connection (the daemon serves each
connection serially, so in-flight concurrency equals open connections),
and the payments themselves ride the daemon's backpressured send path —
under overload the generators slow down rather than the transport
dropping protocol frames.

``python -m repro.load`` exposes both against running daemons, plus a
self-contained ``smoke`` mode used by CI (spawn a loopback pair, run a
closed-loop burst, verify conservation and zero protocol-plane drops).
"""

from repro.load.accounts import AccountFleet
from repro.load.generators import (
    LoadReport,
    LoadTarget,
    run_closed_loop,
    run_load,
    run_open_loop,
    transport_drops,
)

__all__ = [
    "AccountFleet",
    "LoadReport",
    "LoadTarget",
    "run_closed_loop",
    "run_load",
    "run_open_loop",
    "transport_drops",
]
