"""Simulated hub-account fleets for load generation.

A fleet is N lightweight clients — seed-derived keypairs with
client-side nonce counters, no daemon, no enclave — aimed at one
account hub.  The fleet opens every account in signed batches
(``account-pay-many``), then hands :class:`~repro.load.generators.
LoadTarget`\\ s whose ``request_factory`` signs a fresh ``account-pay``
per attempt, so the generators measure the hub's full verify-and-apply
path, not replayed bytes.

Pairing is ring-aware: when the hub is a :class:`~repro.runtime.
workers.ShardedDaemon`, accounts are partnered only within the shard
that owns them (same ``account:<pubkey hex>`` consistent-hash namespace
the router uses), so a fleet never generates ``cross_shard``
rejections by construction.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hub.client import _RequestSigner
from repro.load.generators import LoadTarget
from repro.workloads.assignment import HashRing

__all__ = ["AccountFleet"]


class AccountFleet:
    """``size`` simulated clients with deterministic keys and nonces.

    Keys derive from ``<seed_prefix>:<index>`` so a fleet is
    reproducible across processes; nonces start at 0 (fresh accounts)
    and count upward client-side, exactly like a real
    :class:`~repro.hub.client.HubClient`.
    """

    def __init__(self, size: int, seed_prefix: str = "hub-client",
                 worker_names: Optional[Sequence[str]] = None) -> None:
        if size < 2:
            raise ValueError("an account fleet needs at least 2 clients")
        self.signers: List[_RequestSigner] = []
        for index in range(size):
            signer = _RequestSigner(
                seed=f"{seed_prefix}:{index}".encode())
            signer.sync_nonce(0)
            self.signers.append(signer)
        self._partner = self._pair(worker_names)

    def _pair(self, worker_names: Optional[Sequence[str]]) -> Dict[int,
                                                                   int]:
        """index -> partner index; within-shard when sharded."""
        if not worker_names:
            groups = [list(range(len(self.signers)))]
        else:
            ring = HashRing(list(worker_names))
            by_owner: Dict[str, List[int]] = {}
            for index, signer in enumerate(self.signers):
                owner = ring.owner(f"account:{signer.account_hex}")
                by_owner.setdefault(owner, []).append(index)
            groups = list(by_owner.values())
        partner: Dict[int, int] = {}
        for group in groups:
            for position, index in enumerate(group):
                # Singleton shards self-pay (a legal ledger no-op minus
                # fee) rather than crossing shards.
                partner[index] = group[(position + 1) % len(group)]
        return partner

    def __len__(self) -> int:
        return len(self.signers)

    def deposit_requests(self, amount: int) -> List[str]:
        """One signed opening deposit per client (consumes a nonce)."""
        return [signer.deposit_request(amount) for signer in self.signers]

    def open_batches(self, amount: int,
                     batch_size: int = 256) -> List[List[str]]:
        """Opening deposits chunked for ``account-pay-many``."""
        requests = self.deposit_requests(amount)
        return [requests[start:start + batch_size]
                for start in range(0, len(requests), batch_size)]

    def pay_request(self, index: int, amount: int) -> str:
        """Sign one pay from client ``index`` to its ring partner."""
        signer = self.signers[index]
        partner = self.signers[self._partner[index]]
        return signer.pay_request(partner.account, amount)

    def pay_targets(self, host: str, port: int, amount: int,
                    streams: int = 4,
                    label_prefix: str = "accounts") -> List[LoadTarget]:
        """Split the fleet across ``streams`` load targets.

        Each target owns a disjoint slice of clients and round-robins
        them; a client is only ever driven from one stream, so its
        nonce counter needs no locking (the factory runs on the event
        loop).
        """
        streams = max(1, min(streams, len(self.signers)))
        slices: List[List[int]] = [[] for _ in range(streams)]
        for index in range(len(self.signers)):
            slices[index % streams].append(index)

        def factory_for(indices: List[int]):
            cycle = itertools.cycle(indices)

            def build() -> Tuple[str, Dict[str, str]]:
                return ("account-pay",
                        {"request": self.pay_request(next(cycle), amount)})
            return build

        return [
            LoadTarget(host=host, port=port, channel_id="-",
                       amount=amount,
                       label=f"{label_prefix}[{stream}]",
                       request_factory=factory_for(indices))
            for stream, indices in enumerate(slices)
        ]
