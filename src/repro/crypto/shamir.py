"""Shamir threshold secret sharing over GF(p).

Used by committee chains (paper §6) to split deposit private keys so that
any *m* of *n* committee TEEs can reconstruct a signing key, but fewer than
*m* compromised TEEs learn nothing.  We share secrets over the secp256k1
group order so private-key scalars can be shared directly.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.crypto import ecdsa
from repro.errors import ThresholdError

_PRIME = ecdsa.N  # share scalars in the signature group's order


@dataclass(frozen=True)
class Share:
    """One Shamir share: the polynomial evaluated at ``index``."""

    index: int
    value: int

    def __post_init__(self) -> None:
        if self.index <= 0:
            raise ThresholdError("share indices must be positive")
        if not 0 <= self.value < _PRIME:
            raise ThresholdError("share value out of field range")


def split_secret(
    secret: int, threshold: int, total: int, rng: "secrets.SystemRandom | None" = None
) -> List[Share]:
    """Split ``secret`` into ``total`` shares, any ``threshold`` of which
    reconstruct it.

    ``threshold == 1`` degenerates to replication (every share *is* the
    secret), matching the paper's 1-out-of-n crash-only committees.
    """
    if not 1 <= threshold <= total:
        raise ThresholdError(
            f"invalid threshold {threshold}-out-of-{total}"
        )
    if not 0 <= secret < _PRIME:
        raise ThresholdError("secret out of field range")
    randrange = rng.randrange if rng is not None else (
        lambda upper: secrets.randbelow(upper)
    )
    coefficients = [secret] + [randrange(_PRIME) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, total + 1):
        value = 0
        for coefficient in reversed(coefficients):  # Horner evaluation
            value = (value * index + coefficient) % _PRIME
        shares.append(Share(index, value))
    return shares


def combine_shares(shares: Sequence[Share], threshold: int) -> int:
    """Reconstruct the secret from at least ``threshold`` distinct shares.

    Raises :class:`ThresholdError` when too few (or duplicate-index) shares
    are supplied — the committee-chain code relies on this to refuse
    under-threshold spends.
    """
    unique: Dict[int, int] = {}
    for share in shares:
        if share.index in unique and unique[share.index] != share.value:
            raise ThresholdError(f"conflicting shares for index {share.index}")
        unique[share.index] = share.value
    if len(unique) < threshold:
        raise ThresholdError(
            f"need {threshold} shares, got {len(unique)} distinct"
        )
    indices = list(unique)[:threshold]
    secret = 0
    for i in indices:
        numerator = 1
        denominator = 1
        for j in indices:
            if i == j:
                continue
            numerator = (numerator * -j) % _PRIME
            denominator = (denominator * (i - j)) % _PRIME
        lagrange = numerator * pow(denominator, _PRIME - 2, _PRIME)
        secret = (secret + unique[i] * lagrange) % _PRIME
    return secret


def reshare(
    shares: Iterable[Share], threshold: int, new_total: int
) -> List[Share]:
    """Reconstruct and re-split a secret (committee membership change)."""
    secret = combine_shares(list(shares), threshold)
    return split_secret(secret, threshold, new_total)
