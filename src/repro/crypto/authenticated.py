"""Authenticated encryption and key agreement for secure enclave channels.

The paper's implementation uses side-channel-resistant AES-GCM (via AES-NI)
and Elliptic-Curve Diffie–Hellman.  The Python standard library ships no
AES, so we build an equivalent IND-CCA construction from primitives it does
ship:

* **Key agreement** — ECDH over secp256k1 (same curve as the signatures).
* **Cipher** — SHA-256 in counter mode as a stream cipher (a PRF in CTR
  mode is a standard stream-cipher construction).
* **Integrity** — HMAC-SHA256 over (nonce || ciphertext), encrypt-then-MAC.

Encryption and MAC keys are derived separately from the shared secret so a
MAC forgery cannot leak keystream material.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass
from typing import Tuple

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import DecryptionError

_MAC_LEN = 32
_NONCE_LEN = 12


@dataclass(frozen=True)
class SecureChannelKeys:
    """Directional key material for one secure channel."""

    encrypt_key: bytes
    mac_key: bytes

    @classmethod
    def from_shared_secret(cls, shared_secret: bytes, context: bytes) -> "SecureChannelKeys":
        """Derive independent cipher and MAC keys from an ECDH secret.

        ``context`` binds the keys to a channel identity (the two public
        keys), preventing cross-channel message replay.
        """
        encrypt_key = sha256(b"repro-enc:" + context + shared_secret)
        mac_key = sha256(b"repro-mac:" + context + shared_secret)
        return cls(encrypt_key, mac_key)


def ecdh_shared_secret(private: PrivateKey, peer_public: PublicKey) -> bytes:
    """ECDH: hash of the shared curve point's x coordinate."""
    point = ecdsa.point_multiply(private.secret, peer_public.point)
    if point is None:
        raise DecryptionError("ECDH produced the point at infinity")
    return sha256(point[0].to_bytes(32, "big"))


def derive_channel_keys(
    private: PrivateKey, peer_public: PublicKey, session: bytes = b""
) -> SecureChannelKeys:
    """Derive symmetric channel keys between two parties.

    Both sides derive identical keys because the context sorts the two
    public keys (the DH secret is already symmetric).  ``session`` mixes a
    per-handshake salt into the context: identity keys are static, so
    without it a re-established channel (after an endpoint restart) would
    reuse the previous session's keys with reset counters — and recorded
    ciphertexts from the old session would replay cleanly.
    """
    shared = ecdh_shared_secret(private, peer_public)
    ours = private.public_key.to_bytes()
    theirs = peer_public.to_bytes()
    context = min(ours, theirs) + max(ours, theirs) + session
    return SecureChannelKeys.from_shared_secret(shared, context)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream."""
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(sha256(key + nonce + struct.pack(">Q", counter)))
    return b"".join(blocks)[:length]


def encrypt(keys: SecureChannelKeys, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC.  Returns nonce || ciphertext || tag.

    The caller supplies the nonce (a per-channel counter in practice) so
    that freshness is enforced at the protocol layer, where replay windows
    live.
    """
    if len(nonce) != _NONCE_LEN:
        raise DecryptionError(f"nonce must be {_NONCE_LEN} bytes, got {len(nonce)}")
    stream = _keystream(keys.encrypt_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(keys.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def decrypt(keys: SecureChannelKeys, envelope: bytes) -> bytes:
    """Verify the MAC then decrypt.  Raises :class:`DecryptionError` on any
    tampering — the ciphertext is never touched before the tag checks out."""
    if len(envelope) < _NONCE_LEN + _MAC_LEN:
        raise DecryptionError("envelope too short")
    nonce = envelope[:_NONCE_LEN]
    ciphertext = envelope[_NONCE_LEN:-_MAC_LEN]
    tag = envelope[-_MAC_LEN:]
    expected = hmac.new(keys.mac_key, nonce + ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise DecryptionError("message authentication failed")
    stream = _keystream(keys.encrypt_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


def nonce_from_counter(counter: int) -> bytes:
    """Build a 12-byte nonce from a message counter."""
    return struct.pack(">IQ", 0, counter)
