"""Hash functions used by the blockchain and protocol layers."""

from __future__ import annotations

import hashlib
from typing import List, Sequence


def sha256(data: bytes) -> bytes:
    """Single SHA-256."""
    return hashlib.sha256(data).digest()


def sha256d(data: bytes) -> bytes:
    """Double SHA-256, Bitcoin's transaction/block hash."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def hash160(data: bytes) -> bytes:
    """RIPEMD-160(SHA-256(data)), Bitcoin's address hash.

    Falls back to a truncated double-SHA-256 when the host OpenSSL build
    ships without RIPEMD-160 (common on modern distributions).  The fallback
    keeps the 20-byte output and collision resistance the address format
    relies on; it is flagged via :data:`RIPEMD_AVAILABLE` for anyone who
    needs byte-exact Bitcoin addresses.
    """
    inner = hashlib.sha256(data).digest()
    if RIPEMD_AVAILABLE:
        ripe = hashlib.new("ripemd160")
        ripe.update(inner)
        return ripe.digest()
    return sha256d(inner)[:20]


def _probe_ripemd() -> bool:
    try:
        hashlib.new("ripemd160")
    except (ValueError, TypeError):
        return False
    return True


RIPEMD_AVAILABLE = _probe_ripemd()


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Bitcoin-style Merkle root over ``leaves`` (already-hashed items).

    An empty leaf list hashes to 32 zero bytes (used by empty blocks).
    Odd levels duplicate the final entry, as in Bitcoin.
    """
    if not leaves:
        return b"\x00" * 32
    level: List[bytes] = list(leaves)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [
            sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]
