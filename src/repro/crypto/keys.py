"""Key pairs and Bitcoin-style addresses.

A :class:`PrivateKey` wraps a secp256k1 scalar; a :class:`PublicKey` wraps
the corresponding curve point with compressed SEC1 serialisation.  Addresses
are HASH160 of the compressed public key, hex-encoded with a ``btc`` prefix —
we deliberately skip Base58Check since nothing in the reproduction parses
real Bitcoin addresses, and the hex form is easier to debug.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Tuple

from repro.crypto import ecdsa
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash160, sha256
from repro.errors import InvalidKey

_ADDRESS_PREFIX = "btc"


@dataclass(frozen=True)
class PublicKey:
    """A secp256k1 public key (affine point)."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not ecdsa.is_on_curve((self.x, self.y)):
            raise InvalidKey("public key is not on secp256k1")

    @property
    def point(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def to_bytes(self) -> bytes:
        """Compressed SEC1 encoding (33 bytes)."""
        prefix = b"\x02" if self.y % 2 == 0 else b"\x03"
        return prefix + self.x.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Decode a compressed SEC1 public key."""
        if len(data) != 33 or data[0] not in (2, 3):
            raise InvalidKey(f"bad compressed public key ({len(data)} bytes)")
        x = int.from_bytes(data[1:], "big")
        if x >= ecdsa.P:
            raise InvalidKey("x coordinate out of field range")
        y_squared = (pow(x, 3, ecdsa.P) + ecdsa.B) % ecdsa.P
        y = pow(y_squared, (ecdsa.P + 1) // 4, ecdsa.P)
        if (y * y) % ecdsa.P != y_squared:
            raise InvalidKey("x coordinate has no curve point")
        if (y % 2 == 0) != (data[0] == 2):
            y = ecdsa.P - y
        return cls(x, y)

    def address(self) -> str:
        """Bitcoin-style address string for this key."""
        return _ADDRESS_PREFIX + hash160(self.to_bytes()).hex()

    def verify(self, digest: bytes, signature: Signature) -> bool:
        """Verify an ECDSA signature over a 32-byte digest."""
        return ecdsa.verify(self.point, digest, signature)

    def verify_message(self, message: bytes, signature: Signature) -> bool:
        """Verify a signature over SHA-256(message)."""
        return self.verify(sha256(message), signature)

    def fingerprint(self) -> str:
        """Short hex identifier used in logs and repr output."""
        return self.to_bytes().hex()[:16]

    def __repr__(self) -> str:
        return f"PublicKey({self.fingerprint()}…)"


class PrivateKey:
    """A secp256k1 private key.

    Not a dataclass on purpose: the scalar should never appear in reprs,
    comparisons, or accidental serialisation.  Access it via
    :attr:`secret` where the protocol genuinely needs the raw scalar
    (deposit-key sharing, Alg. 1 line 73).
    """

    __slots__ = ("_secret", "_public")

    def __init__(self, secret: int) -> None:
        if not 1 <= secret < ecdsa.N:
            raise InvalidKey("private key out of range")
        self._secret = secret
        self._public = PublicKey(*ecdsa.derive_public_key(secret))

    @classmethod
    def generate(cls, rng: "secrets.SystemRandom | None" = None) -> "PrivateKey":
        """Generate a fresh random key.

        Uses the OS CSPRNG by default.  Deterministic tests should use
        :meth:`from_seed` instead.
        """
        if rng is None:
            secret = secrets.randbelow(ecdsa.N - 1) + 1
        else:
            secret = rng.randrange(1, ecdsa.N)
        return cls(secret)

    @classmethod
    def from_seed(cls, seed: bytes) -> "PrivateKey":
        """Derive a key deterministically from ``seed`` (for tests and
        reproducible simulations)."""
        scalar = int.from_bytes(sha256(b"repro-key-derivation:" + seed), "big")
        scalar = scalar % (ecdsa.N - 1) + 1
        return cls(scalar)

    @property
    def secret(self) -> int:
        """The raw private scalar."""
        return self._secret

    @property
    def public_key(self) -> PublicKey:
        return self._public

    def to_bytes(self) -> bytes:
        """32-byte big-endian scalar (for in-enclave key sharing)."""
        return self._secret.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) != 32:
            raise InvalidKey(f"private key must be 32 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest."""
        return ecdsa.sign(self._secret, digest)

    def sign_message(self, message: bytes) -> Signature:
        """Sign SHA-256(message)."""
        return self.sign(sha256(message))

    def __repr__(self) -> str:
        return f"PrivateKey(public={self._public.fingerprint()}…)"


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public key."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls) -> "KeyPair":
        private = PrivateKey.generate()
        return cls(private, private.public_key)

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        private = PrivateKey.from_seed(seed)
        return cls(private, private.public_key)

    def address(self) -> str:
        return self.public.address()
