"""secp256k1 ECDSA in pure Python.

This is the same curve and signature scheme Teechain's implementation uses
(via libsecp256k1); we implement it directly so the reproduction has zero
native dependencies.  Features:

* Jacobian-coordinate point arithmetic (affine inversion only at the end).
* RFC 6979 deterministic nonces — signatures are reproducible, which keeps
  every test and benchmark deterministic.
* Low-s normalisation (BIP 62), matching Bitcoin consensus rules.

Performance note: pure-Python ECDSA signs in roughly a millisecond.  The
benchmark harness therefore measures protocol timing on the simulated clock
and uses a calibrated CPU cost model (see ``repro.bench.calibration``); the
crypto here guarantees *correctness* of every signature the protocols
exchange.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidKey, InvalidSignature
from repro.obs import get_metrics

# secp256k1 domain parameters.
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

# A point is an (x, y) affine pair, or None for the point at infinity.
AffinePoint = Optional[Tuple[int, int]]
# Jacobian points are (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
JacobianPoint = Tuple[int, int, int]

_JACOBIAN_INFINITY: JacobianPoint = (0, 1, 0)


def _to_jacobian(point: AffinePoint) -> JacobianPoint:
    if point is None:
        return _JACOBIAN_INFINITY
    return (point[0], point[1], 1)


def _from_jacobian(point: JacobianPoint) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, P - 2, P)
    z_inv2 = (z_inv * z_inv) % P
    return ((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jacobian_double(point: JacobianPoint) -> JacobianPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _JACOBIAN_INFINITY
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    m = (3 * x * x) % P  # a == 0 for secp256k1
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jacobian_add(p: JacobianPoint, q: JacobianPoint) -> JacobianPoint:
    if p[2] == 0:
        return q
    if q[2] == 0:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = (z1 * z1) % P
    z2z2 = (z2 * z2) % P
    u1 = (x1 * z2z2) % P
    u2 = (x2 * z1z1) % P
    s1 = (y1 * z2 * z2z2) % P
    s2 = (y2 * z1 * z1z1) % P
    if u1 == u2:
        if s1 != s2:
            return _JACOBIAN_INFINITY
        return _jacobian_double(p)
    h = (u2 - u1) % P
    i = (4 * h * h) % P
    j = (h * i) % P
    r = (2 * (s2 - s1)) % P
    v = (u1 * i) % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = (2 * h * z1 * z2) % P
    return (nx, ny, nz)


def _jacobian_multiply(point: JacobianPoint, scalar: int) -> JacobianPoint:
    scalar %= N
    result = _JACOBIAN_INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return result


# -- fixed-window precomputed-G multiplication ---------------------------
#
# Generator multiples dominate the remaining ECDSA cost (one k*G per sign,
# one u1*G per verify).  With G fixed we can precompute d * 16^w * G for
# every 4-bit window w and digit d, turning a 256-double/128-add ladder
# into at most 64 additions.  The table is built lazily on first use
# (~1k group operations, tens of ms once per process) and never exposed.

_WINDOW_BITS = 4
_WINDOW_COUNT = 64   # ceil(256 / _WINDOW_BITS)
_G_TABLE: List[List[JacobianPoint]] = []


def _generator_table() -> List[List[JacobianPoint]]:
    if not _G_TABLE:
        base: JacobianPoint = (GX, GY, 1)
        for _ in range(_WINDOW_COUNT):
            row: List[JacobianPoint] = [_JACOBIAN_INFINITY, base]
            for _ in range(2, 1 << _WINDOW_BITS):
                row.append(_jacobian_add(row[-1], base))
            _G_TABLE.append(row)
            for _ in range(_WINDOW_BITS):
                base = _jacobian_double(base)
    return _G_TABLE


def _jacobian_multiply_g(scalar: int) -> JacobianPoint:
    """``scalar * G`` via the fixed-window table (no doublings)."""
    scalar %= N
    table = _generator_table()
    result = _JACOBIAN_INFINITY
    window = 0
    while scalar:
        digit = scalar & ((1 << _WINDOW_BITS) - 1)
        if digit:
            result = _jacobian_add(result, table[window][digit])
        scalar >>= _WINDOW_BITS
        window += 1
    return result


def point_multiply(scalar: int, point: AffinePoint = (GX, GY)) -> AffinePoint:
    """Scalar multiplication ``scalar * point`` (defaults to the generator)."""
    if point == (GX, GY):
        return _from_jacobian(_jacobian_multiply_g(scalar))
    return _from_jacobian(_jacobian_multiply(_to_jacobian(point), scalar))


def point_add(p: AffinePoint, q: AffinePoint) -> AffinePoint:
    """Affine point addition."""
    return _from_jacobian(_jacobian_add(_to_jacobian(p), _to_jacobian(q)))


def is_on_curve(point: AffinePoint) -> bool:
    """Whether ``point`` satisfies y^2 = x^3 + 7 (mod p)."""
    if point is None:
        return True
    x, y = point
    return (y * y - x * x * x - B) % P == 0


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature ``(r, s)`` with low-s normalisation applied."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        """Fixed-width 64-byte encoding (32-byte r || 32-byte s)."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise InvalidSignature(f"signature must be 64 bytes, got {len(data)}")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def _bits_to_int(data: bytes) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - N.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _rfc6979_nonces(private_key: int, digest: bytes) -> Iterator[int]:
    """Deterministic nonce candidates per RFC 6979 with HMAC-SHA256.

    Yields the §3.2 candidate sequence.  §3.2h: every rejection — whether
    the candidate is out of ``[1, N)`` *or* produced an unusable signature
    (r == 0 / s == 0) — advances K and V through the same HMAC update
    before the next candidate is generated.
    """
    holen = 32
    x = private_key.to_bytes(32, "big")
    h1 = _bits_to_int(digest) % N
    h1_bytes = h1.to_bytes(32, "big")
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1_bytes, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits_to_int(v)
        if 1 <= candidate < N:
            yield candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def _rfc6979_nonce(private_key: int, digest: bytes) -> int:
    """First RFC 6979 nonce candidate (retries use :func:`_rfc6979_nonces`)."""
    return next(_rfc6979_nonces(private_key, digest))


def sign(private_key: int, digest: bytes) -> Signature:
    """Sign a 32-byte ``digest`` with ``private_key``.

    The caller hashes; this function signs the digest directly, mirroring
    libsecp256k1's ``ecdsa_sign``.
    """
    if not 1 <= private_key < N:
        raise InvalidKey("private key out of range")
    if len(digest) != 32:
        raise InvalidSignature(f"digest must be 32 bytes, got {len(digest)}")
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("crypto.sign")
    z = _bits_to_int(digest)
    for k in _rfc6979_nonces(private_key, digest):
        point = point_multiply(k)
        assert point is not None
        r = point[0] % N
        if r == 0:
            continue  # §3.2h: next candidate from the updated K/V chain
        k_inv = pow(k, N - 2, N)
        s = (k_inv * (z + r * private_key)) % N
        if s == 0:
            continue
        if s > N // 2:  # low-s normalisation (BIP 62)
            s = N - s
        return Signature(r, s)
    raise InvalidSignature("nonce generation exhausted")  # pragma: no cover


def verify(public_key: Tuple[int, int], digest: bytes, signature: Signature) -> bool:
    """Verify ``signature`` over ``digest`` against an affine public key.

    Returns ``False`` (never raises) for invalid signatures so callers can
    treat verification as a predicate; malformed *keys* raise
    :class:`InvalidKey` because they indicate caller bugs, not attacks.
    """
    if not is_on_curve(public_key) or public_key is None:
        raise InvalidKey("public key is not on secp256k1")
    if len(digest) != 32:
        return False
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("crypto.verify")
    r, s = signature.r, signature.s
    if not (1 <= r < N and 1 <= s < N):
        return False
    if s > N // 2:
        # BIP 62 low-s rule: our signer always emits low-s (see
        # Signature), so a high-s signature is a malleated duplicate and
        # must not verify — anything persisted or gossiped would
        # otherwise admit two encodings of the same authorisation.
        return False
    z = _bits_to_int(digest)
    s_inv = pow(s, N - 2, N)
    u1 = (z * s_inv) % N
    u2 = (r * s_inv) % N
    point = _from_jacobian(
        _jacobian_add(
            _jacobian_multiply_g(u1),
            _jacobian_multiply(_to_jacobian(public_key), u2),
        )
    )
    if point is None:
        return False
    return point[0] % N == r


def derive_public_key(private_key: int) -> Tuple[int, int]:
    """Compute the affine public key for ``private_key``."""
    if not 1 <= private_key < N:
        raise InvalidKey("private key out of range")
    point = point_multiply(private_key)
    assert point is not None
    return point
