"""m-of-n multisignature helpers (Bitcoin CHECKMULTISIG semantics).

Teechain deposits pay into m-out-of-n multisignature addresses owned by the
TEEs of a committee chain (paper §3, §6.1).  This module provides the
threshold-verification logic shared by the blockchain's script interpreter
and the settlement builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import ThresholdError


@dataclass(frozen=True)
class MultisigSpec:
    """An m-of-n multisignature lock: ``threshold`` of ``public_keys``."""

    threshold: int
    public_keys: Tuple[PublicKey, ...]

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= len(self.public_keys):
            raise ThresholdError(
                f"invalid multisig {self.threshold}-of-{len(self.public_keys)}"
            )
        encodings = [key.to_bytes() for key in self.public_keys]
        if len(set(encodings)) != len(encodings):
            raise ThresholdError("duplicate public keys in multisig spec")

    @property
    def total(self) -> int:
        return len(self.public_keys)

    def address(self) -> str:
        """P2SH-style address: hash of the serialised redeem condition."""
        payload = bytes([self.threshold, self.total]) + b"".join(
            key.to_bytes() for key in self.public_keys
        )
        return "msig" + hash160(payload).hex()

    def verify(self, digest: bytes, signatures: Sequence[Signature]) -> bool:
        """CHECKMULTISIG: at least ``threshold`` signatures, each matching a
        distinct listed key.  Order-insensitive (stricter than Bitcoin,
        which requires signature order to follow key order; order
        insensitivity only ever *accepts more* valid witnesses)."""
        if len(signatures) < self.threshold:
            return False
        used = set()
        matched = 0
        for signature in signatures:
            for position, key in enumerate(self.public_keys):
                if position in used:
                    continue
                if key.verify(digest, signature):
                    used.add(position)
                    matched += 1
                    break
            if matched >= self.threshold:
                return True
        return False

    def cost_weight(self) -> float:
        """Table 4 blockchain-cost weight for an output locked by this spec:
        ``n/2`` — *n* public keys, counted in units of (pubkey+signature)
        pairs per the paper's cost metric."""
        return self.total / 2.0


def collect_signatures(
    digest: bytes, private_keys: Sequence[PrivateKey], spec: MultisigSpec
) -> List[Signature]:
    """Sign ``digest`` with each key and check the bundle satisfies ``spec``.

    Raises :class:`ThresholdError` if the provided keys cannot meet the
    threshold — callers (committee chains) use this to fail loudly when a
    quorum is unavailable rather than emitting an unspendable transaction.
    """
    signatures = [key.sign(digest) for key in private_keys]
    if not spec.verify(digest, signatures):
        raise ThresholdError(
            f"{len(private_keys)} keys do not satisfy "
            f"{spec.threshold}-of-{spec.total} for this digest"
        )
    return signatures


def verify_multisig(
    spec: MultisigSpec, digest: bytes, signatures: Sequence[Signature]
) -> bool:
    """Functional wrapper over :meth:`MultisigSpec.verify`."""
    return spec.verify(digest, signatures)


def share_indices_for_keys(
    spec: MultisigSpec, holders: Dict[str, PublicKey]
) -> Dict[str, int]:
    """Map holder names to their key's 1-based position in the spec.

    Committee bookkeeping helper: share indices in Shamir sharing must match
    multisig key positions so reconstructed keys sign for the right slot.
    """
    positions = {key.to_bytes(): i + 1 for i, key in enumerate(spec.public_keys)}
    result = {}
    for name, key in holders.items():
        encoded = key.to_bytes()
        if encoded not in positions:
            raise ThresholdError(f"holder {name} is not a committee member")
        result[name] = positions[encoded]
    return result
