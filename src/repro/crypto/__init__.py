"""Cryptographic substrate.

Real primitives throughout (the TEE and blockchain are simulated; the
cryptography is not):

* :mod:`~repro.crypto.hashing` — SHA-256, double SHA-256, HASH160 (SHA-256
  then RIPEMD-160 when available, with a documented fallback), Merkle roots.
* :mod:`~repro.crypto.ecdsa` — secp256k1 ECDSA with RFC 6979 deterministic
  nonces and low-s normalisation, in pure Python.
* :mod:`~repro.crypto.keys` — key pairs, serialisation, Bitcoin-style
  addresses.
* :mod:`~repro.crypto.authenticated` — encrypt-then-MAC authenticated
  encryption (SHA-256-CTR + HMAC-SHA256) and ECDH key agreement, standing in
  for the paper's AES-GCM/ECDH secure channels.
* :mod:`~repro.crypto.shamir` — Shamir threshold secret sharing over a prime
  field (the "threshold secret sharing" of paper §6).
* :mod:`~repro.crypto.multisig` — m-of-n multisignature helpers matching
  Bitcoin's CHECKMULTISIG semantics.
"""

from repro.crypto.authenticated import (
    SecureChannelKeys,
    decrypt,
    derive_channel_keys,
    ecdh_shared_secret,
    encrypt,
)
from repro.crypto.ecdsa import Signature, sign, verify
from repro.crypto.hashing import hash160, merkle_root, sha256, sha256d
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.multisig import MultisigSpec, collect_signatures, verify_multisig
from repro.crypto.shamir import combine_shares, split_secret

__all__ = [
    "KeyPair",
    "MultisigSpec",
    "PrivateKey",
    "PublicKey",
    "SecureChannelKeys",
    "Signature",
    "collect_signatures",
    "combine_shares",
    "decrypt",
    "derive_channel_keys",
    "ecdh_shared_secret",
    "encrypt",
    "hash160",
    "merkle_root",
    "sha256",
    "sha256d",
    "sign",
    "split_secret",
    "verify",
    "verify_multisig",
]
