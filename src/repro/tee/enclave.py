"""The enclave runtime.

An :class:`Enclave` hosts one :class:`EnclaveProgram` — a pure state machine
whose methods are *ecalls*.  Mirroring the SGX programming model:

* the program's identity key pair is generated **inside** the enclave at
  initialisation (paper Alg. 1 line 1) and the private half never leaves
  except through an explicit :mod:`~repro.tee.compromise` attack;
* programs perform no I/O; outgoing protocol messages accumulate in an
  outbox the untrusted host drains (the ecall/ocall split);
* the enclave has a *measurement* (hash of the program code identity) that
  attestation quotes commit to;
* a status gate models crash (:attr:`EnclaveStatus.CRASHED`), the
  force-freeze state of the replication protocol
  (:attr:`EnclaveStatus.FROZEN`), and compromise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import EnclaveCrashed, EnclaveFrozen, TEEError
from repro.obs import get_tracer


class EnclaveStatus(enum.Enum):
    RUNNING = "running"
    FROZEN = "frozen"          # force-freeze: settlement-only operations
    CRASHED = "crashed"        # no ecalls at all
    COMPROMISED = "compromised"  # still runs, but secrets have leaked


@dataclass(frozen=True)
class OutboundMessage:
    """A message the program asks the host to deliver."""

    destination: str  # peer name / public-key fingerprint; host resolves it
    payload: Any


class EnclaveProgram:
    """Base class for code running inside an enclave.

    Subclasses implement ecalls as ordinary methods and call
    :meth:`send` to queue outgoing messages.  ``PROGRAM_NAME`` and
    ``PROGRAM_VERSION`` define the measurement: two enclaves attest equal
    iff they run the same program at the same version.
    """

    PROGRAM_NAME = "base"
    PROGRAM_VERSION = 1

    def __init__(self) -> None:
        self._outbox: List[OutboundMessage] = []
        self._enclave: Optional["Enclave"] = None

    @classmethod
    def measurement(cls) -> bytes:
        """MRENCLAVE analogue: hash of the program identity."""
        return sha256(
            f"program:{cls.PROGRAM_NAME}:v{cls.PROGRAM_VERSION}".encode()
        )

    # -- services provided by the hosting enclave ------------------------

    @property
    def enclave(self) -> "Enclave":
        if self._enclave is None:
            raise TEEError("program is not installed in an enclave")
        return self._enclave

    @property
    def identity(self) -> KeyPair:
        """The enclave-held identity key pair."""
        return self.enclave.identity

    def send(self, destination: str, payload: Any) -> None:
        """Queue an outgoing message for the untrusted host to deliver."""
        self._outbox.append(OutboundMessage(destination, payload))

    # -- settlement gate --------------------------------------------------

    # Ecall names that stay callable after a force-freeze.  The replication
    # protocol freezes enclaves but must still let participants settle
    # channels and release deposits (paper §6: "all channels are settled
    # and unused deposits released").
    FREEZE_ALLOWED: Tuple[str, ...] = ()

    def on_freeze(self) -> None:
        """Hook invoked when the enclave freezes (override to react)."""


class Enclave:
    """An enclave instance: program + identity + status gate."""

    _id_counter = 0

    def __init__(self, program: EnclaveProgram, name: Optional[str] = None,
                 seed: Optional[bytes] = None) -> None:
        Enclave._id_counter += 1
        self.enclave_id = Enclave._id_counter
        self.name = name or f"enclave-{self.enclave_id}"
        self.program = program
        self.status = EnclaveStatus.RUNNING
        # Identity keys are generated inside the enclave; a seed makes
        # tests deterministic without weakening the model (the seed is
        # consumed at construction and not retained).
        if seed is not None:
            self.identity = KeyPair.from_seed(seed)
        else:
            self.identity = KeyPair.generate()
        program._enclave = self

    @property
    def measurement(self) -> bytes:
        return type(self.program).measurement()

    @property
    def public_key(self):
        return self.identity.public

    def ecall(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an ecall on the hosted program, enforcing the status gate.

        Crashed enclaves reject everything; frozen enclaves only allow the
        program's ``FREEZE_ALLOWED`` (settlement) ecalls.
        """
        if self.status is EnclaveStatus.CRASHED:
            raise EnclaveCrashed(f"{self.name} has crashed")
        if (
            self.status is EnclaveStatus.FROZEN
            and method not in self.program.FREEZE_ALLOWED
        ):
            raise EnclaveFrozen(
                f"{self.name} is frozen; only {self.program.FREEZE_ALLOWED} "
                f"are permitted (got {method!r})"
            )
        handler: Optional[Callable] = getattr(self.program, method, None)
        if handler is None or method.startswith("_"):
            raise TEEError(f"no such ecall {method!r} on {self.name}")
        guard = getattr(self.program, "ecall_guard", None)
        tracer = get_tracer()
        if tracer.enabled:
            # The ecall is the trust boundary — a span here separates
            # in-enclave processing time from host/wire time in traces.
            with tracer.span(f"ecall.{method}", enclave=self.name):
                if guard is not None:
                    return guard(method, handler, args, kwargs)
                return handler(*args, **kwargs)
        if guard is not None:
            return guard(method, handler, args, kwargs)
        return handler(*args, **kwargs)

    def take_outbox(self) -> List[OutboundMessage]:
        """Drain queued outgoing messages (host side of the ocall split)."""
        messages = self.program._outbox
        self.program._outbox = []
        return messages

    def freeze(self) -> None:
        """Force-freeze: henceforth only settlement ecalls run."""
        if self.status is EnclaveStatus.CRASHED:
            raise EnclaveCrashed(f"{self.name} has crashed")
        if self.status is not EnclaveStatus.FROZEN:
            self.status = EnclaveStatus.FROZEN
            self.program.on_freeze()

    def __repr__(self) -> str:
        return (
            f"Enclave({self.name}, {type(self.program).__name__}, "
            f"{self.status.value})"
        )
