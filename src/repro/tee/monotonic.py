"""Hardware monotonic counters.

SGX monotonic counters are throttled — the paper reports ~10 increments per
second and *emulates them with a 100 ms delay* in its own evaluation
(§7, "Implementation").  We reproduce that emulation: each increment
completes ``increment_delay`` seconds after it starts, and increments on
one counter serialise.  This is what caps the stable-storage row of
Table 1 at 10 tx/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CounterThrottled, TEEError

DEFAULT_INCREMENT_DELAY = 0.100  # seconds; the paper's emulated value


class MonotonicCounter:
    """One counter.  Values only move up; increments are rate-limited."""

    def __init__(self, counter_id: int,
                 increment_delay: float = DEFAULT_INCREMENT_DELAY,
                 initial: int = 0) -> None:
        if initial < 0:
            raise TEEError(f"counter value cannot be negative: {initial}")
        self.counter_id = counter_id
        self.increment_delay = increment_delay
        self._value = initial
        # Simulated time at which the most recent increment completes.
        self._busy_until = 0.0

    @property
    def value(self) -> int:
        return self._value

    def read(self) -> int:
        """Reads are unthrottled."""
        return self._value

    def increment(self, now: float) -> float:
        """Start an increment at simulated time ``now``.

        Returns the time at which the increment (and thus the dependent
        sealed write) completes.  Concurrent requests queue behind each
        other — this serialisation is the 10 ops/s bottleneck.
        """
        start = max(now, self._busy_until)
        self._busy_until = start + self.increment_delay
        self._value += 1
        return self._busy_until

    def try_increment(self, now: float) -> int:
        """Increment only if the hardware is idle; otherwise raise
        :class:`CounterThrottled`.  For callers that prefer failing fast
        over queueing."""
        if now < self._busy_until:
            raise CounterThrottled(
                f"counter {self.counter_id} busy until {self._busy_until:.3f}"
            )
        self._busy_until = now + self.increment_delay
        self._value += 1
        return self._value


class MonotonicCounterBank:
    """Per-enclave counter namespace (SGX allows a small fixed number)."""

    MAX_COUNTERS = 256

    def __init__(self, increment_delay: float = DEFAULT_INCREMENT_DELAY) -> None:
        self.increment_delay = increment_delay
        self._counters: Dict[int, MonotonicCounter] = {}
        self._next_id = 0

    def create(self, initial: int = 0) -> MonotonicCounter:
        """Allocate a counter.

        ``initial`` models the hardware property that counters survive
        power cycles: a restarted platform re-opens its counter at the
        persisted value, not at zero (otherwise every reboot would be a
        rollback opportunity)."""
        if len(self._counters) >= self.MAX_COUNTERS:
            raise TEEError("monotonic counter quota exhausted")
        counter = MonotonicCounter(self._next_id, self.increment_delay,
                                   initial=initial)
        self._counters[self._next_id] = counter
        self._next_id += 1
        return counter

    def get(self, counter_id: int) -> MonotonicCounter:
        counter = self._counters.get(counter_id)
        if counter is None:
            raise TEEError(f"no monotonic counter {counter_id}")
        return counter

    def __len__(self) -> int:
        return len(self._counters)
