"""The Byzantine TEE failure model.

The paper assumes TEEs can be compromised (§2.3, citing Foreshadow) and
defends with committee chains.  These helpers *are* the attacks; security
tests use them to check that the defences hold:

* :func:`crash_enclave` — fail-stop (power loss, process kill).
* :func:`extract_secrets` — a side-channel/transient-execution compromise:
  the attacker learns everything in enclave memory, including identity and
  deposit private keys, but the enclave keeps running (the victim may not
  even know).
* :func:`fork_enclave` — a state-forking attack: the attacker duplicates a
  (compromised) enclave's state and runs both copies, attempting to settle
  a channel twice from divergent histories.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.keys import PrivateKey
from repro.tee.enclave import Enclave, EnclaveStatus


@dataclass
class ExtractedSecrets:
    """Everything an attacker learns from a full memory compromise."""

    identity_private_key: PrivateKey
    program_state: Dict[str, Any]


def crash_enclave(enclave: Enclave) -> None:
    """Fail-stop the enclave.  All subsequent ecalls raise
    :class:`~repro.errors.EnclaveCrashed`."""
    enclave.status = EnclaveStatus.CRASHED


def extract_secrets(enclave: Enclave) -> ExtractedSecrets:
    """Compromise the enclave and exfiltrate its memory.

    Marks the enclave COMPROMISED (for bookkeeping and assertions) but —
    deliberately — leaves it operational: real side-channel attacks are
    silent, and Teechain's threat model must cope with victims that keep
    transacting on a leaky TEE.
    """
    enclave.status = EnclaveStatus.COMPROMISED
    state = {
        key: value
        for key, value in vars(enclave.program).items()
        if not key.startswith("_enclave")
    }
    return ExtractedSecrets(
        identity_private_key=enclave.identity.private,
        program_state=state,
    )


def fork_enclave(enclave: Enclave, fork_name: str) -> Enclave:
    """Duplicate a compromised enclave: same keys, same program state.

    The fork is a *perfect clone* including the identity private key —
    modelling an attacker who replays a memory snapshot inside their own
    (emulated) enclave.  Teechain's defence is protocol-level: secure
    channels bind messages to a single key-exchange session, and committee
    chains refuse divergent update streams; tests drive this function to
    verify both.
    """
    extract_secrets(enclave)  # forking requires (and implies) compromise
    forked_program = copy.deepcopy(enclave.program)
    fork = Enclave.__new__(Enclave)
    Enclave._id_counter += 1
    fork.enclave_id = Enclave._id_counter
    fork.name = fork_name
    fork.program = forked_program
    fork.status = EnclaveStatus.COMPROMISED
    fork.identity = enclave.identity  # stolen keys
    forked_program._enclave = fork
    return fork
