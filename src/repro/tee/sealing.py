"""Sealed storage with rollback protection.

SGX sealing encrypts enclave state under a key derived from the CPU and the
enclave measurement, so only the same program on the same platform can
unseal it.  Sealing alone permits *rollback*: an attacker can feed the
enclave an old sealed blob.  Binding each blob to a monotonic-counter value
(and refusing blobs whose counter does not match the hardware counter)
closes that hole — the construction Teechain's stable-storage mode uses
(§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional
import hashlib
import hmac
import pickle

from repro.crypto.hashing import sha256
from repro.errors import SealingError
from repro.tee.monotonic import MonotonicCounter


@dataclass(frozen=True)
class SealedBlob:
    """Opaque sealed state: payload + counter binding + MAC."""

    payload: bytes
    counter_value: int
    mac: bytes

    _WIRE_MAGIC = b"SEAL1"

    def to_bytes(self) -> bytes:
        """Flat byte encoding for storage on untrusted disk.

        The blob is already integrity-protected by its MAC; this framing
        adds nothing security-relevant, it just avoids pickling enclave
        artefacts outside the enclave boundary."""
        return (self._WIRE_MAGIC
                + self.counter_value.to_bytes(8, "big")
                + len(self.mac).to_bytes(2, "big") + self.mac
                + self.payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SealedBlob":
        magic = cls._WIRE_MAGIC
        if len(raw) < len(magic) + 10 or not raw.startswith(magic):
            raise SealingError("not a serialised sealed blob")
        offset = len(magic)
        counter_value = int.from_bytes(raw[offset:offset + 8], "big")
        offset += 8
        mac_len = int.from_bytes(raw[offset:offset + 2], "big")
        offset += 2
        mac = raw[offset:offset + mac_len]
        if len(mac) != mac_len:
            raise SealingError("truncated sealed blob")
        return cls(payload=raw[offset + mac_len:],
                   counter_value=counter_value, mac=mac)


class SealingService:
    """Per-platform, per-measurement sealing keys.

    The sealing key mixes a platform secret with the enclave measurement —
    blobs sealed by one program cannot be unsealed by another, and blobs do
    not migrate between platforms.
    """

    def __init__(self, platform_secret: bytes, measurement: bytes) -> None:
        self._key = sha256(b"seal:" + platform_secret + measurement)

    def _mac(self, payload: bytes, counter_value: int) -> bytes:
        message = payload + counter_value.to_bytes(8, "big")
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def seal(self, state: Any, counter_value: int) -> SealedBlob:
        """Seal ``state`` (any picklable object) bound to a counter value.

        Pickle is safe here because blobs are only ever unsealed after MAC
        verification under an enclave-held key — an attacker cannot craft a
        blob that passes the MAC.
        """
        payload = pickle.dumps(state)
        return SealedBlob(payload, counter_value, self._mac(payload, counter_value))

    def unseal(self, blob: SealedBlob,
               counter: Optional[MonotonicCounter] = None) -> Any:
        """Verify and open a sealed blob.

        If ``counter`` is given, the blob's bound value must equal the
        hardware counter's current value — a stale (rolled-back) blob fails
        here even though its MAC is genuine.
        """
        expected = self._mac(blob.payload, blob.counter_value)
        if not hmac.compare_digest(blob.mac, expected):
            raise SealingError("sealed blob failed integrity check")
        if counter is not None and blob.counter_value != counter.value:
            raise SealingError(
                f"rollback detected: blob bound to counter value "
                f"{blob.counter_value}, hardware counter is {counter.value}"
            )
        return pickle.loads(blob.payload)
