"""Trusted-execution-environment simulation.

The paper runs Teechain inside Intel SGX enclaves.  Real SGX is a hardware
gate this reproduction cannot cross, so this package provides a software
enclave runtime preserving the properties the protocols rely on — and,
crucially, the *failure modes* the paper defends against:

* :mod:`~repro.tee.enclave` — isolated programs with a measured identity,
  ecall dispatch, and in-enclave key generation.
* :mod:`~repro.tee.attestation` — quotes binding (measurement, enclave key)
  signed by a simulated attestation service (models EPID attestation).
* :mod:`~repro.tee.monotonic` — hardware monotonic counters throttled to
  the paper's emulated 100 ms per increment (§6.2 / §7 implementation note).
* :mod:`~repro.tee.sealing` — sealed storage bound to counter values for
  rollback protection.
* :mod:`~repro.tee.compromise` — the Byzantine failure model: crash an
  enclave, extract its secrets (Foreshadow-style), or fork its state.
"""

from repro.tee.attestation import AttestationService, Quote
from repro.tee.compromise import crash_enclave, extract_secrets, fork_enclave
from repro.tee.enclave import Enclave, EnclaveProgram, EnclaveStatus
from repro.tee.monotonic import MonotonicCounter, MonotonicCounterBank
from repro.tee.sealing import SealedBlob, SealingService

__all__ = [
    "AttestationService",
    "Enclave",
    "EnclaveProgram",
    "EnclaveStatus",
    "MonotonicCounter",
    "MonotonicCounterBank",
    "Quote",
    "SealedBlob",
    "SealingService",
    "crash_enclave",
    "extract_secrets",
    "fork_enclave",
]
