"""Remote attestation.

Models Intel's EPID attestation flow at the granularity the protocols use:
a *quote* binds an enclave's measurement and identity public key, signed by
the attestation service.  A verifier checks (i) the service signature,
(ii) the expected measurement, and (iii) that the quoted key matches the
key the peer is using on the wire.  Revocation models compromised
attestation infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.crypto.ecdsa import Signature
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import AttestationError
from repro.tee.enclave import Enclave


@dataclass(frozen=True)
class Quote:
    """An attestation quote: (measurement, enclave key, optional report
    data) signed by the attestation service."""

    measurement: bytes
    enclave_key: PublicKey
    report_data: bytes
    signature: Signature

    def signed_payload(self) -> bytes:
        return (
            b"quote:" + self.measurement + self.enclave_key.to_bytes()
            + self.report_data
        )


class AttestationService:
    """The simulated attestation authority.

    One instance per simulation; every verifier is provisioned with
    :attr:`root_key` (the analogue of Intel's attestation root
    certificate).
    """

    def __init__(self, seed: bytes = b"attestation-service") -> None:
        self._keys = KeyPair.from_seed(seed)
        self._revoked: Set[bytes] = set()

    @property
    def root_key(self) -> PublicKey:
        return self._keys.public

    def quote(self, enclave: Enclave, report_data: bytes = b"") -> Quote:
        """Produce a quote for a live enclave.

        ``report_data`` carries protocol bindings — e.g. a Diffie–Hellman
        public value during secure-channel setup — preventing quote reuse
        across handshakes.
        """
        payload = (
            b"quote:" + enclave.measurement
            + enclave.public_key.to_bytes() + report_data
        )
        return Quote(
            measurement=enclave.measurement,
            enclave_key=enclave.public_key,
            report_data=report_data,
            signature=self._keys.private.sign_message(payload),
        )

    def revoke(self, enclave_key: PublicKey) -> None:
        """Revoke an enclave (e.g. after a disclosed compromise)."""
        self._revoked.add(enclave_key.to_bytes())

    def is_revoked(self, enclave_key: PublicKey) -> bool:
        return enclave_key.to_bytes() in self._revoked


def verify_quote(
    quote: Quote,
    root_key: PublicKey,
    expected_measurement: bytes,
    expected_key: Optional[PublicKey] = None,
    service: Optional[AttestationService] = None,
) -> None:
    """Verify a quote; raises :class:`AttestationError` on any failure.

    ``service`` is optional and only consulted for revocation — verifiers
    that cannot reach the revocation list still get signature and
    measurement checks, as with cached attestation collateral.
    """
    if not root_key.verify_message(quote.signed_payload(), quote.signature):
        raise AttestationError("quote signature invalid")
    if quote.measurement != expected_measurement:
        raise AttestationError(
            "measurement mismatch: enclave runs unexpected code"
        )
    if expected_key is not None and quote.enclave_key != expected_key:
        raise AttestationError("quoted key does not match peer's wire key")
    if service is not None and service.is_revoked(quote.enclave_key):
        raise AttestationError("enclave key has been revoked")
