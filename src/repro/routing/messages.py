"""Routing-gossip messages (wire tags 58–59).

The shape follows Lightning's BOLT #7 (``channel_announcement`` /
``channel_update``) adapted to Teechain's model: every endpoint floods a
*half* — its own directional view of a channel — rather than one jointly
signed announcement, and an edge only becomes routable once **both**
endpoints have announced it (see
:class:`~repro.routing.topology.TopologyView`).  That bilateral rule is
what replaces BOLT #7's on-chain funding proof: a single liar cannot
conjure a usable edge to an honest node, because the honest node never
co-announces it.

Both messages ride the wire wrapped in a
:class:`~repro.core.messages.SignedMessage` signed with the origin's
*gossip key* (a per-boot host keypair, bound to the attested enclave
identity for direct peers via the handshake's ``topo_key`` field, and
trust-on-first-use for everyone further away).  Replay and reordering
protection is the per-origin ``seq``: a receiver only applies a message
whose sequence number is strictly greater than the last one it accepted
from that origin for that channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class ChannelAnnounce:
    """Origin's first advertisement of a channel half.

    ``capacity`` is the origin's *directional* spendable balance — how
    much can flow origin→peer — not the channel total; Teechain channels
    fund each direction independently (paper §5.1), so the directional
    number is the one routing needs.
    """

    channel_id: str
    origin: str            # the announcing endpoint (node name)
    peer: str              # the other endpoint
    capacity: int          # spendable origin→peer
    seq: int               # per-origin monotonic sequence number
    fee_base: int = 0      # flat forwarding fee charged by origin
    fee_rate_ppm: int = 0  # proportional fee, parts per million


@dataclass(frozen=True)
class ChannelUpdate:
    """A subsequent change to an announced half (balance moved, fees
    changed, channel disabled by settlement).

    Carries ``peer`` so it is self-contained: an update that overtakes
    its announce on a different flood path still applies (BOLT #7
    buffers instead; self-containment is simpler and loses nothing).
    """

    channel_id: str
    origin: str
    peer: str
    capacity: int
    seq: int
    fee_base: int = 0
    fee_rate_ppm: int = 0
    disabled: bool = False


GOSSIP_BODIES = (ChannelAnnounce, ChannelUpdate)


def validate_gossip_body(body) -> None:
    """Sanity-check a gossip body before applying it.

    Wire dataclasses stay constraint-free (like the rest of the runtime
    messages) so the codec can decode anything a peer sends; validation
    happens here, at apply time, where a hostile frame must be handled
    anyway.  Raises :class:`~repro.errors.ReproError` on nonsense.
    """
    kind = type(body).__name__
    if not body.channel_id or not body.origin or not body.peer:
        raise ReproError(f"{kind} needs channel_id/origin/peer")
    if body.origin == body.peer:
        raise ReproError("a channel cannot connect a node to itself")
    if body.capacity < 0 or body.seq < 0:
        raise ReproError("capacity and seq must be non-negative")
    if body.fee_base < 0 or body.fee_rate_ppm < 0:
        raise ReproError("fees must be non-negative")
