"""``repro.routing`` — route discovery and selection, shared by both modes.

* :class:`TopologyView` — a per-node map of the channel graph, fed by
  gossip in live mode or built whole from an overlay in DES/netsim.
* :class:`RoutePlanner` — the *only* route-selection code in the repo
  (capacity/fee/hop-aware, pluggable cost, cached with
  ``routing.cache_*`` metrics).
* :class:`GossipEngine` + :class:`ChannelAnnounce`/:class:`ChannelUpdate`
  — signed, per-origin-sequenced flooding that keeps live views
  converged (wire tags 58/59).

The trust model is documented in DESIGN.md §13.
"""

from repro.routing.gossip import GossipEngine
from repro.routing.messages import ChannelAnnounce, ChannelUpdate
from repro.routing.planner import (
    RoutePlanner,
    iter_paths_by_length,
    load_concentration,
    overlay_graph,
    path_length,
    shortest_path,
)
from repro.routing.topology import ChannelHalf, EdgeInfo, TopologyView

__all__ = [
    "ChannelAnnounce",
    "ChannelHalf",
    "ChannelUpdate",
    "EdgeInfo",
    "GossipEngine",
    "RoutePlanner",
    "TopologyView",
    "iter_paths_by_length",
    "load_concentration",
    "overlay_graph",
    "path_length",
    "shortest_path",
]
