"""Flooding engine for routing gossip.

A :class:`GossipEngine` is transport-agnostic: it mints signed
announce/update frames, applies incoming ones to its
:class:`~repro.routing.topology.TopologyView`, and tells the caller
whether a frame was fresh (and therefore worth re-flooding).  The live
daemon floods frames over the existing control connections; tests drive
engines directly through an in-memory harness.

Rejection taxonomy (each with its own counter):

* ``gossip.rejected_sig`` — signature does not verify;
* ``gossip.rejected_key`` — signature verifies but the signing key
  conflicts with the key already bound to the claimed origin (pinned
  from an attested handshake, or trust-on-first-use from earlier
  gossip);
* ``gossip.updates_rejected_stale`` — sequence number at or below the
  last applied for that (origin, channel).  Replays land here.
* ``gossip.rejected_malformed`` — body fails
  :func:`~repro.routing.messages.validate_gossip_body` (empty names,
  self-loop, negative capacity/seq/fees).

Accepted frames count ``gossip.announces_applied`` /
``gossip.updates_applied``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.messages import SignedMessage
from repro.crypto.keys import KeyPair
from repro.errors import MessageAuthenticationError, ReproError
from repro.obs import MetricsRegistry, get_metrics
from repro.routing.messages import (
    ChannelAnnounce,
    ChannelUpdate,
    validate_gossip_body,
)
from repro.routing.topology import TopologyView


class GossipEngine:
    """Per-node gossip state: origin identity, sequence counter, view."""

    def __init__(
        self,
        name: str,
        keypair: KeyPair,
        view: Optional[TopologyView] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.keypair = keypair
        self.view = view if view is not None else TopologyView()
        self._metrics = metrics if metrics is not None else get_metrics()
        self._seq = 0
        # Latest signed frame per (origin, channel) — re-sent to newly
        # connected peers so late joiners converge without waiting for
        # organic re-floods (anti-entropy).
        self._store: Dict[Tuple[str, str], SignedMessage] = {}
        self._counters: Dict[str, int] = {
            "announces_applied": 0,
            "updates_applied": 0,
            "updates_rejected_stale": 0,
            "rejected_sig": 0,
            "rejected_key": 0,
            "rejected_malformed": 0,
        }
        self.view.bind_key(name, keypair.public.to_bytes(), pinned=True)

    # -- emitting -----------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def announce(self, channel_id: str, peer: str, capacity: int, *,
                 fee_base: int = 0, fee_rate_ppm: int = 0) -> SignedMessage:
        """Advertise our half of a channel; applies locally and returns
        the signed frame to flood."""
        body = ChannelAnnounce(
            channel_id=channel_id, origin=self.name, peer=peer,
            capacity=capacity, seq=self._next_seq(),
            fee_base=fee_base, fee_rate_ppm=fee_rate_ppm,
        )
        return self._emit(body)

    def update(self, channel_id: str, peer: str, capacity: int, *,
               fee_base: int = 0, fee_rate_ppm: int = 0,
               disabled: bool = False) -> SignedMessage:
        """Advertise a change to our half (balance moved, fees changed,
        channel settled/disabled)."""
        body = ChannelUpdate(
            channel_id=channel_id, origin=self.name, peer=peer,
            capacity=capacity, seq=self._next_seq(),
            fee_base=fee_base, fee_rate_ppm=fee_rate_ppm, disabled=disabled,
        )
        return self._emit(body)

    def _emit(self, body) -> SignedMessage:
        validate_gossip_body(body)  # catch local programming errors early
        signed = SignedMessage.create(body, self.keypair.private)
        self.view.upsert(
            origin=body.origin, peer=body.peer, channel_id=body.channel_id,
            capacity=body.capacity, seq=body.seq, fee_base=body.fee_base,
            fee_rate_ppm=body.fee_rate_ppm,
            disabled=getattr(body, "disabled", False),
        )
        self._store[(body.origin, body.channel_id)] = signed
        return signed

    # -- receiving ----------------------------------------------------

    def handle(self, signed: SignedMessage) -> bool:
        """Apply one incoming gossip frame.

        Returns True when the frame was fresh and applied — the caller
        should re-flood it to every peer except the one it came from.
        False means rejected or already known; never re-flood those, or
        a replayed frame could still propagate."""
        body = signed.body
        if not isinstance(body, (ChannelAnnounce, ChannelUpdate)):
            raise ReproError(
                f"not a gossip message: {type(body).__name__}")
        if body.origin == self.name:
            # Our own frame echoed back around the flood.
            return False
        try:
            validate_gossip_body(body)
        except ReproError:
            self._reject("rejected_malformed")
            return False
        try:
            signed.verify()
        except MessageAuthenticationError:
            self._reject("rejected_sig")
            return False
        key = signed.sender_key.to_bytes()
        if not self.view.bind_key(body.origin, key):
            # Verifies, but under a key that conflicts with the one we
            # trust for this origin — an impersonation attempt.
            self._reject("rejected_key")
            return False
        applied = self.view.upsert(
            origin=body.origin, peer=body.peer, channel_id=body.channel_id,
            capacity=body.capacity, seq=body.seq, fee_base=body.fee_base,
            fee_rate_ppm=body.fee_rate_ppm,
            disabled=getattr(body, "disabled", False),
        )
        if not applied:
            self._count("updates_rejected_stale")
            return False
        self._store[(body.origin, body.channel_id)] = signed
        if isinstance(body, ChannelAnnounce):
            self._count("announces_applied")
        else:
            self._count("updates_applied")
        return True

    def _count(self, name: str) -> None:
        self._counters[name] += 1
        if self._metrics.enabled:
            self._metrics.inc(f"gossip.{name}")

    def _reject(self, name: str) -> None:
        self._count(name)

    # -- anti-entropy -------------------------------------------------

    def backlog(self) -> List[SignedMessage]:
        """Every latest frame we hold, for syncing a new peer."""
        return list(self._store.values())

    def stats(self) -> Dict[str, int]:
        out = dict(self._counters)
        out["seq"] = self._seq
        out["stored_frames"] = len(self._store)
        return out
