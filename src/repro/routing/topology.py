"""Per-node topology view assembled from routing gossip.

The view stores *channel halves* — one endpoint's directional
advertisement — and only exposes a directed edge u→v to the planner
when **both** halves exist: u announced (u, v) and v announced (v, u).
A node that lies about a channel to an honest node therefore cannot
make that edge routable; the honest endpoint never co-announces it
(DESIGN.md §13 walks through the trust argument).

Staleness is per ``(origin, channel_id)``: each half remembers the
highest sequence number applied, and :meth:`TopologyView.upsert`
rejects anything at or below it.  Every accepted change bumps
``version`` so planners can invalidate their caches cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import ReproError


@dataclass
class ChannelHalf:
    """One endpoint's latest advertisement of a channel direction."""

    channel_id: str
    origin: str
    peer: str
    capacity: int
    seq: int
    fee_base: int = 0
    fee_rate_ppm: int = 0
    disabled: bool = False


@dataclass(frozen=True)
class EdgeInfo:
    """A fully confirmed directed edge, as handed to the planner."""

    source: str
    target: str
    channel_id: str
    capacity: int
    fee_base: int
    fee_rate_ppm: int


class TopologyView:
    """Mutable per-node map of the payment network.

    Keys (gossip public keys) live here too: the handshake pins keys for
    attested direct peers (``pinned=True``), while keys learned from
    flooded gossip are trust-on-first-use and can never displace a
    pinned binding.
    """

    def __init__(self) -> None:
        # (origin, channel_id) -> ChannelHalf
        self._halves: Dict[Tuple[str, str], ChannelHalf] = {}
        self._keys: Dict[str, bytes] = {}
        self._pinned: Dict[str, bool] = {}
        self.version = 0

    # -- key bindings -------------------------------------------------

    def bind_key(self, name: str, key: bytes, *, pinned: bool = False) -> bool:
        """Associate ``name`` with a gossip public key.

        Returns False (no change) when a conflicting binding exists and
        the new one does not outrank it; a pinned (attested) binding can
        replace a TOFU one, never the other way around.
        """
        current = self._keys.get(name)
        if current is None:
            self._keys[name] = key
            self._pinned[name] = pinned
            return True
        if current == key:
            if pinned and not self._pinned.get(name):
                self._pinned[name] = True
            return True
        if pinned and not self._pinned.get(name):
            self._keys[name] = key
            self._pinned[name] = True
            return True
        return False

    def key_for(self, name: str) -> Optional[bytes]:
        return self._keys.get(name)

    # -- gossip application -------------------------------------------

    def upsert(
        self,
        *,
        origin: str,
        peer: str,
        channel_id: str,
        capacity: int,
        seq: int,
        fee_base: int = 0,
        fee_rate_ppm: int = 0,
        disabled: bool = False,
    ) -> bool:
        """Apply one half-advertisement; False means stale (rejected)."""
        if origin == peer:
            raise ReproError("a channel cannot connect a node to itself")
        key = (origin, channel_id)
        current = self._halves.get(key)
        if current is not None and seq <= current.seq:
            return False
        self._halves[key] = ChannelHalf(
            channel_id=channel_id,
            origin=origin,
            peer=peer,
            capacity=capacity,
            seq=seq,
            fee_base=fee_base,
            fee_rate_ppm=fee_rate_ppm,
            disabled=disabled,
        )
        self.version += 1
        return True

    def last_seq(self, origin: str, channel_id: str) -> int:
        half = self._halves.get((origin, channel_id))
        return half.seq if half is not None else -1

    # -- planner-facing queries ---------------------------------------

    def half(self, origin: str, channel_id: str) -> Optional[ChannelHalf]:
        return self._halves.get((origin, channel_id))

    def edges(self) -> Iterator[EdgeInfo]:
        """Yield confirmed directed edges (both halves present, forward
        half not disabled)."""
        for (origin, channel_id), half in self._halves.items():
            if half.disabled:
                continue
            reverse = self._halves.get((half.peer, channel_id))
            if reverse is None:
                continue
            yield EdgeInfo(
                source=origin,
                target=half.peer,
                channel_id=channel_id,
                capacity=half.capacity,
                fee_base=half.fee_base,
                fee_rate_ppm=half.fee_rate_ppm,
            )

    def nodes(self) -> Tuple[str, ...]:
        names = set()
        for half in self._halves.values():
            names.add(half.origin)
            names.add(half.peer)
        return tuple(sorted(names))

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": len(self.nodes()),
            "edges": self.edge_count(),
            "halves": len(self._halves),
            "version": self.version,
        }

    # -- bulk construction --------------------------------------------

    @classmethod
    def from_overlay(
        cls,
        overlay,
        *,
        capacity: Optional[int] = None,
        capacities: Optional[Mapping[Tuple[str, str], int]] = None,
    ) -> "TopologyView":
        """Full-knowledge view for DES/netsim: every overlay channel is
        bilaterally announced at seq 0.

        ``capacities`` maps directed ``(source, target)`` pairs to
        spendable balance; ``capacity`` is the uniform fallback. With
        neither, edges are unconstrained (capacity 0 means "unknown" and
        the planner skips the capacity filter for them only when the
        amount is 0; use a huge default instead so amount-aware planning
        still works).
        """
        view = cls()
        default = capacity if capacity is not None else (1 << 62)
        for a, b in overlay.channels:
            channel_id = f"{min(a, b)}--{max(a, b)}"
            cap_ab = capacities.get((a, b), default) if capacities else default
            cap_ba = capacities.get((b, a), default) if capacities else default
            view.upsert(origin=a, peer=b, channel_id=channel_id,
                        capacity=cap_ab, seq=0)
            view.upsert(origin=b, peer=a, channel_id=channel_id,
                        capacity=cap_ba, seq=0)
        return view
