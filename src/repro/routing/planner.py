"""The one route-selection implementation.

Everything that picks a payment path — live daemons resolving
``pay-multihop dest=``, DES multihop, ``bench/netsim.py``, and the
deprecated free functions in ``core/routing.py`` — goes through
:class:`RoutePlanner`.  networkx is confined to this module (it backs
the k-shortest simple-path enumeration); nothing outside
``repro.routing`` may import it.

Two cost models ship built in, plus a pluggable callable:

* ``"hops"`` — every usable edge costs 1; shortest path = fewest
  channels, the paper's §7.4 policy.
* ``"fees"`` — edge cost is the forwarding fee the edge's source would
  charge (``fee_base + amount·fee_rate_ppm/1e6``) plus a small epsilon
  so equal-fee routes still prefer fewer hops (RouTEE-style fee-aware
  hub selection).

Capacity awareness: with ``amount > 0`` any edge advertising less
directional capacity than the amount is excluded before search.

Planning is cached at two levels, both invalidated by the view's
``version`` counter: whole routes keyed ``(source, target, amount,
attempt)`` (hits/misses exported as ``routing.cache_hits`` /
``routing.cache_misses``), and per-source shortest-path trees so that
replaying thousands of payments from the same senders over a 10k-node
graph costs one Dijkstra per distinct source, not per payment.
"""

from __future__ import annotations

import heapq
import math
from typing import (Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

import networkx

from repro.errors import ReproError, RoutingError
from repro.network.topology import Overlay
from repro.obs import MetricsRegistry, get_metrics
from repro.routing.topology import EdgeInfo, TopologyView

CostFn = Callable[[EdgeInfo, int], float]

# Epsilon per hop in the fee cost: breaks fee ties toward shorter paths
# without ever outweighing a 1-unit fee difference on realistic routes.
_HOP_EPSILON = 1e-6


def _hop_cost(edge: EdgeInfo, amount: int) -> float:
    return 1.0


def _fee_cost(edge: EdgeInfo, amount: int) -> float:
    return edge.fee_base + amount * edge.fee_rate_ppm / 1_000_000 + _HOP_EPSILON


_BUILTIN_COSTS: Dict[str, CostFn] = {"hops": _hop_cost, "fees": _fee_cost}


class RoutePlanner:
    """Route selection over a :class:`TopologyView`."""

    def __init__(
        self,
        view: TopologyView,
        *,
        cost: "str | CostFn" = "hops",
        metrics: Optional[MetricsRegistry] = None,
        seed: int = 0,
    ) -> None:
        self.view = view
        if callable(cost):
            self._cost: CostFn = cost
            self.cost_name = getattr(cost, "__name__", "custom")
        else:
            try:
                self._cost = _BUILTIN_COSTS[cost]
            except KeyError:
                raise ReproError(f"unknown cost model {cost!r}") from None
            self.cost_name = cost
        self._metrics = metrics if metrics is not None else get_metrics()
        self._seed = seed
        self._hits = 0
        self._misses = 0
        self._version = -1
        self._adjacency: Dict[str, List[EdgeInfo]] = {}
        self._min_capacity = 0
        self._route_cache: Dict[Tuple[str, str, int, int],
                                Optional[List[str]]] = {}
        # (source, effective_amount) -> predecessor map of the
        # shortest-path tree rooted at source.
        self._trees: Dict[Tuple[str, int], Dict[str, Optional[str]]] = {}

    @classmethod
    def from_overlay(
        cls,
        overlay: Overlay,
        *,
        capacity: Optional[int] = None,
        capacities: Optional[Mapping[Tuple[str, str], int]] = None,
        cost: "str | CostFn" = "hops",
        metrics: Optional[MetricsRegistry] = None,
        seed: int = 0,
    ) -> "RoutePlanner":
        """Planner over a full-knowledge view of a static overlay."""
        view = TopologyView.from_overlay(overlay, capacity=capacity,
                                         capacities=capacities)
        return cls(view, cost=cost, metrics=metrics, seed=seed)

    # -- cache maintenance --------------------------------------------

    def _refresh(self) -> None:
        if self._version == self.view.version:
            return
        adjacency: Dict[str, List[EdgeInfo]] = {}
        min_capacity: Optional[int] = None
        for edge in self.view.edges():
            adjacency.setdefault(edge.source, []).append(edge)
            adjacency.setdefault(edge.target, [])
            if min_capacity is None or edge.capacity < min_capacity:
                min_capacity = edge.capacity
        # Deterministic neighbour order: sorted by name, then a seeded
        # rotation so distinct seeds can explore distinct equal-cost
        # tie-breaks while a fixed seed always replays the same routes.
        for edges in adjacency.values():
            edges.sort(key=lambda e: (e.target, e.channel_id))
            if self._seed and len(edges) > 1:
                pivot = self._seed % len(edges)
                edges[:] = edges[pivot:] + edges[:pivot]
        self._adjacency = adjacency
        self._min_capacity = min_capacity if min_capacity is not None else 0
        self._route_cache.clear()
        self._trees.clear()
        self._version = self.view.version

    def _effective_amount(self, amount: int) -> int:
        """Amounts below every edge's capacity share one tree/cache slot:
        the capacity filter cannot exclude anything, and for the "fees"
        cost the proportional term scales all edges of a path equally
        only when fee rates are uniform — so fold amounts together only
        under the hop cost, where cost is amount-independent."""
        if amount <= 0:
            return 0
        if self._cost is _hop_cost and amount <= self._min_capacity:
            return 0
        return amount

    def _usable(self, edge: EdgeInfo, amount: int) -> bool:
        return amount <= 0 or edge.capacity >= amount

    # -- shortest-path trees ------------------------------------------

    def _tree(self, source: str,
              effective: int) -> Dict[str, Optional[str]]:
        key = (source, effective)
        tree = self._trees.get(key)
        if tree is None:
            tree = self._dijkstra(source, effective)
            self._trees[key] = tree
        return tree

    def _dijkstra(self, source: str,
                  amount: int) -> Dict[str, Optional[str]]:
        """Predecessor map for the whole tree rooted at ``source``.

        A plain binary-heap Dijkstra; with the hop cost the heap
        degenerates to BFS order.  Entries carry an insertion counter so
        equal-cost pops resolve by discovery order — deterministic for a
        fixed adjacency order (hence fixed seed)."""
        parents: Dict[str, Optional[str]] = {source: None}
        dist: Dict[str, float] = {source: 0.0}
        counter = 0
        heap: List[Tuple[float, int, str]] = [(0.0, counter, source)]
        while heap:
            d, _, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for edge in self._adjacency.get(node, ()):
                if not self._usable(edge, amount):
                    continue
                nd = d + self._cost(edge, amount)
                if nd < dist.get(edge.target, float("inf")):
                    dist[edge.target] = nd
                    parents[edge.target] = node
                    counter += 1
                    heapq.heappush(heap, (nd, counter, edge.target))
        return parents

    # -- public API ---------------------------------------------------

    def find_route(self, source: str, target: str,
                   amount: int = 0) -> List[str]:
        """Cheapest usable path ``[source, ..., target]``.

        Raises :class:`RoutingError` when either endpoint is unknown or
        no usable path exists (e.g. every candidate edge is below
        ``amount``)."""
        route = self.try_route(source, target, amount)
        if route is None:
            raise RoutingError(
                f"no route from {source} to {target}"
                + (f" for amount {amount}" if amount > 0 else "")
            )
        return route

    def try_route(self, source: str, target: str,
                  amount: int = 0) -> Optional[List[str]]:
        """Like :meth:`find_route` but None instead of raising."""
        return self.route_for_attempt(source, target, 0, amount)

    def route_for_attempt(self, source: str, target: str, attempt: int,
                          amount: int = 0) -> Optional[List[str]]:
        """The route for the ``attempt``-th retry of a payment.

        Attempt 0 is the cheapest path; attempt *k* is the (k+1)-th
        simple path in cost order (the §7.4 dynamic-routing policy of
        retrying over incrementally longer paths).  When fewer simple
        paths exist than attempts made, the longest available one is
        returned; None when the pair is disconnected."""
        if attempt < 0:
            raise ReproError("attempt must be non-negative")
        self._refresh()
        effective = self._effective_amount(amount)
        key = (source, target, effective, attempt)
        cached = self._route_cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._hits += 1
            if self._metrics.enabled:
                self._metrics.inc("routing.cache_hits")
            return cached
        self._misses += 1
        if self._metrics.enabled:
            self._metrics.inc("routing.cache_misses")
        if attempt == 0:
            route = self._shortest(source, target, effective)
        else:
            try:
                routes = list(self.iter_routes(source, target,
                                               limit=attempt + 1,
                                               amount=amount))
            except RoutingError:
                routes = []
            route = routes[min(attempt, len(routes) - 1)] if routes else None
        self._route_cache[key] = route
        return route

    def _shortest(self, source: str, target: str,
                  effective: int) -> Optional[List[str]]:
        if source == target:
            return [source] if source in self._adjacency else None
        if source not in self._adjacency or target not in self._adjacency:
            return None
        parents = self._tree(source, effective)
        if target not in parents:
            return None
        path = [target]
        while path[-1] != source:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def iter_routes(self, source: str, target: str,
                    limit: Optional[int] = None,
                    amount: int = 0) -> Iterator[List[str]]:
        """Usable simple paths from cheapest to costliest.

        Raises :class:`RoutingError` (on first iteration) when no usable
        path exists — matching the old ``iter_paths_by_length``."""
        self._refresh()
        effective = self._effective_amount(amount)
        graph = networkx.DiGraph()
        for node in sorted(self._adjacency):
            graph.add_node(node)
        for node in sorted(self._adjacency):
            for edge in self._adjacency[node]:
                if self._usable(edge, effective):
                    graph.add_edge(edge.source, edge.target,
                                   weight=self._cost(edge, effective))
        weight = None if self._cost is _hop_cost else "weight"
        try:
            paths = networkx.shortest_simple_paths(graph, source, target,
                                                   weight=weight)
            for count, path in enumerate(paths):
                if limit is not None and count >= limit:
                    return
                yield path
        except (networkx.NetworkXNoPath, networkx.NodeNotFound,
                networkx.NetworkXError) as exc:
            raise RoutingError(
                f"no route from {source} to {target}") from exc

    def cache_info(self) -> Dict[str, int]:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "routes": len(self._route_cache),
            "trees": len(self._trees),
            "version": self._version,
        }


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


# ---------------------------------------------------------------------
# Canonical overlay helpers (the old ``core.routing`` API, now shimmed
# there) and analysis helpers for the routing benchmarks.
# ---------------------------------------------------------------------


def overlay_graph(overlay: Overlay) -> "networkx.Graph":
    """Build the (undirected) channel graph for an overlay."""
    graph = networkx.Graph()
    graph.add_nodes_from(overlay.nodes)
    graph.add_edges_from(overlay.channels)
    return graph


def shortest_path(overlay: Overlay, source: str, target: str) -> List[str]:
    """The single shortest channel path from ``source`` to ``target``."""
    planner = RoutePlanner.from_overlay(overlay)
    return planner.find_route(source, target)


def iter_paths_by_length(overlay: Overlay, source: str, target: str,
                         limit: Optional[int] = None) -> Iterator[List[str]]:
    """Simple paths from shortest to longest — the dynamic-routing retry
    order (§7.4)."""
    planner = RoutePlanner.from_overlay(overlay)
    return planner.iter_routes(source, target, limit=limit)


def path_length(path: Sequence[str]) -> int:
    """Number of hops (channels) in a node path."""
    return max(0, len(path) - 1)


def load_concentration(counts: Mapping[str, int],
                       top_fraction: float = 0.01) -> float:
    """Share of total load carried by the busiest ``top_fraction`` of
    nodes — the hub-concentration metric of the routing benchmark.

    With *n* loaded nodes the top ``max(1, ceil(top_fraction·n))``
    carry the returned fraction of the summed counts; 0.0 when there is
    no load at all."""
    if not 0 < top_fraction <= 1:
        raise ReproError("top_fraction must be in (0, 1]")
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    ranked = sorted(counts.values(), reverse=True)
    top_n = max(1, math.ceil(len(ranked) * top_fraction))
    return sum(ranked[:top_n]) / total
