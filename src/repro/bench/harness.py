"""Experiment bookkeeping: paper-vs-measured comparison tables.

Every benchmark produces :class:`ExperimentResult` rows; the formatted
tables are printed by the bench scripts and copied into EXPERIMENTS.md.
Ratios flag where the reproduction diverges from the paper — the claim is
shape fidelity (who wins, by roughly what factor), not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class ExperimentResult:
    """One measured row alongside its paper value."""

    experiment: str
    configuration: str
    metric: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def format(self) -> str:
        paper = f"{self.paper:>12,.1f}" if self.paper is not None else " " * 12
        ratio = f"{self.ratio:>6.2f}×" if self.ratio is not None else " " * 7
        return (f"{self.configuration:<34} {self.measured:>12,.1f} "
                f"{paper} {ratio}  {self.metric} [{self.unit}]")


def comparison_table(title: str,
                     results: Sequence[ExperimentResult]) -> str:
    """Render results as a fixed-width table with a header."""
    lines = [
        title,
        "=" * len(title),
        f"{'configuration':<34} {'measured':>12} {'paper':>12} {'ratio':>7}",
        "-" * 78,
    ]
    lines.extend(result.format() for result in results)
    return "\n".join(lines)


def within_factor(measured: float, paper: float, factor: float) -> bool:
    """Shape check: measured within ``factor``× of the paper value."""
    if paper == 0:
        return measured == 0
    ratio = measured / paper
    return 1.0 / factor <= ratio <= factor
