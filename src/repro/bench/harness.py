"""Experiment bookkeeping: paper-vs-measured comparison tables.

Every benchmark produces :class:`ExperimentResult` rows; the formatted
tables are printed by the bench scripts and copied into EXPERIMENTS.md.
Ratios flag where the reproduction diverges from the paper — the claim is
shape fidelity (who wins, by roughly what factor), not absolute numbers.

Besides the printed table, :func:`write_sidecar` dumps the same rows plus
the run's :mod:`repro.obs` metrics snapshot as ``BENCH_<name>.json`` —
the machine-readable companion every perf PR diffs against.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import MetricsRegistry, Tracer, export_json


@dataclass(frozen=True)
class ExperimentResult:
    """One measured row alongside its paper value."""

    experiment: str
    configuration: str
    metric: str
    measured: float
    paper: Optional[float] = None
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper in (None, 0):
            return None
        return self.measured / self.paper

    def format(self) -> str:
        paper = f"{self.paper:>12,.1f}" if self.paper is not None else " " * 12
        ratio = f"{self.ratio:>6.2f}×" if self.ratio is not None else " " * 7
        return (f"{self.configuration:<34} {self.measured:>12,.1f} "
                f"{paper} {ratio}  {self.metric} [{self.unit}]")

    def to_dict(self) -> Dict[str, Any]:
        row = asdict(self)
        row["ratio"] = self.ratio
        return row


def comparison_table(title: str,
                     results: Sequence[ExperimentResult]) -> str:
    """Render results as a fixed-width table with a header."""
    lines = [
        title,
        "=" * len(title),
        f"{'configuration':<34} {'measured':>12} {'paper':>12} {'ratio':>7}",
        "-" * 78,
    ]
    lines.extend(result.format() for result in results)
    return "\n".join(lines)


def sidecar_path(name: str, directory: Optional[str] = None) -> str:
    """``BENCH_<name>.json`` in ``directory`` (default: cwd)."""
    return os.path.join(directory or os.getcwd(), f"BENCH_{name}.json")


def write_sidecar(
    name: str,
    results: Sequence[ExperimentResult],
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    extra: Optional[Dict[str, Any]] = None,
    directory: Optional[str] = None,
) -> str:
    """Write the machine-readable sidecar for one benchmark.

    The payload carries the paper-vs-measured rows under ``"results"``
    and, when a registry is passed, its full snapshot under ``"metrics"``
    (the ROADMAP.md sidecar convention).  Returns the path written.
    """
    payload: Dict[str, Any] = {
        "benchmark": name,
        "results": [result.to_dict() for result in results],
    }
    if extra:
        payload.update(extra)
    path = sidecar_path(name, directory)
    export_json(path, metrics=metrics, tracer=tracer, extra=payload)
    return path


def within_factor(measured: float, paper: float, factor: float) -> bool:
    """Shape check: measured within ``factor``× of the paper value."""
    if paper == 0:
        return measured == 0
    ratio = measured / paper
    return 1.0 / factor <= ratio <= factor
