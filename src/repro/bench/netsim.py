"""Discrete-event payment-network simulator (Figure 6, Table 3, Figure 7).

Reproduces the §7.4 experiments:

* **Complete graph** (Fig. 6): every payment is single-hop; throughput is
  bound by per-node processing/replication capacity and scales linearly
  with node count.
* **Hub-and-spoke** (Table 3): multi-hop payments must *lock* every
  channel along their path for the payment's duration, so contention on
  hub links collapses throughput by ~1000× relative to the complete graph
  at the same scale.  Failed payments retry after a random 100–200 ms
  backoff (the paper's policy); each machine runs a sliding window of
  W = 1000 outstanding payments.
* **Dynamic routing** (Table 3): retries take incrementally longer paths —
  which locks *more* channels per payment and degrades throughput further,
  exactly the paper's finding.
* **Temporary channels** (Fig. 7): links between tier-1/tier-2 nodes gain
  G extra channels, multiplying their parallelism; tier-3 links stay
  single, producing the paper's diminishing returns.

The per-link parallelism of a primary channel is a calibrated constant
(see :mod:`repro.bench.calibration`); everything else — ratios between
fault-tolerance modes, routing policies, and temporary-channel counts —
emerges from the simulation.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence

from repro.bench.calibration import Calibration
from repro.errors import ReproError
from repro.network.topology import Overlay
from repro.routing import RoutePlanner
from repro.obs import MetricsRegistry, get_metrics, get_tracer, linear_buckets
from repro.simulation.scheduler import Scheduler
from repro.workloads.assignment import (
    assign_addresses_balanced,
    assign_addresses_skewed,
)
from repro.workloads.bitcoin_trace import Payment, generate_trace

Link = FrozenSet[str]


@dataclass
class NetworkSimulationConfig:
    """Parameters of one §7.4 experiment run."""

    overlay: Overlay
    committee_size: int = 1          # n: 1 = no fault tolerance
    payment_count: int = 20_000
    address_count: int = 3_000
    window: int = 1_000              # sliding window W per machine
    inter_node_one_way: float = 0.050  # 100 ms RTT emulation (§7.4)
    retry_min: float = 0.100
    retry_max: float = 0.200
    max_retries: int = 40
    routing: str = "shortest"        # or "dynamic"
    dynamic_path_limit: int = 4
    temporary_channels: int = 0      # Fig. 7's G (tier-1/2 links only)
    seed: int = 0
    calibration: Calibration = field(default_factory=Calibration)
    # Observability: explicit registry, or None to use the module default
    # installed by ``obs.collecting()`` (a shared no-op otherwise).
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.routing not in ("shortest", "dynamic"):
            raise ReproError(f"unknown routing policy {self.routing!r}")
        if self.committee_size < 1:
            raise ReproError("committee size must be ≥ 1")


@dataclass
class NetworkResult:
    """Aggregate metrics of one run."""

    completed: int
    failed: int
    makespan: float
    total_latency: float
    total_hops: int
    retries: int
    # Completed-payment forwards per intermediate node — the raw series
    # behind the hub-load-concentration metric (see
    # :func:`repro.routing.load_concentration`).
    transits: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    @property
    def average_latency(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.total_latency / self.completed

    @property
    def average_hops(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.total_hops / self.completed


@dataclass
class _PendingPayment:
    payment: Payment
    sender_machine: str
    recipient_machine: str
    issued_at: float = 0.0
    attempts: int = 0


class NetworkSimulation:
    """One experiment run over an overlay."""

    # Backoff delays live in [retry_min, retry_max] ≈ [0.1, 0.2] s; 10 ms
    # buckets resolve the uniform draw.  Occupancy is a 0–1 ratio.
    _BACKOFF_BUCKETS = linear_buckets(0.10, 0.01, 11)
    _OCCUPANCY_BUCKETS = linear_buckets(0.1, 0.1, 10)
    _ATTEMPT_BUCKETS = linear_buckets(1, 1, 20)

    def __init__(self, config: NetworkSimulationConfig) -> None:
        self.config = config
        self.metrics = (config.metrics if config.metrics is not None
                        else get_metrics())
        self.scheduler = Scheduler(metrics=self.metrics)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.bind_clock(lambda: self.scheduler.clock.now)
        self._rng = random.Random(config.seed)
        overlay = config.overlay
        self._is_complete_graph = self._detect_complete(overlay)

        # Workload: trace + address assignment per the topology (§7.4).
        trace = generate_trace(config.payment_count,
                               address_count=config.address_count,
                               seed=config.seed)
        if self._is_complete_graph:
            weights: Dict[str, int] = {}
            for payment in trace:
                weights[payment.sender] = weights.get(payment.sender, 0) + 1
                weights.setdefault(payment.recipient, 0)
            assignment = assign_addresses_balanced(weights, overlay.nodes)
        else:
            assignment = assign_addresses_skewed(
                self._trace_addresses(trace), overlay.tier_of,
                seed=config.seed,
            )
        # Deques: _fill_window pops from the head across 20k-payment
        # queues, which is O(n²) on a list.
        self._queues: Dict[str, Deque[_PendingPayment]] = {
            node: deque() for node in overlay.nodes
        }
        self._skipped = 0
        for payment in trace:
            sender = assignment[payment.sender]
            recipient = assignment[payment.recipient]
            if sender == recipient:
                self._skipped += 1  # local transfer: no network payment
                continue
            self._queues[sender].append(
                _PendingPayment(payment, sender, recipient)
            )

        # Channel-slot capacities per link.
        self._capacity: Dict[Link, int] = {}
        self._in_use: Dict[Link, int] = {}
        base = config.calibration.hub_spoke_channel_parallelism
        for a, b in overlay.channels:
            link = frozenset((a, b))
            slots = base
            if (config.temporary_channels
                    and overlay.tier_of.get(a, 3) <= 2
                    and overlay.tier_of.get(b, 3) <= 2):
                slots = base * (1 + config.temporary_channels)
            self._capacity[link] = slots
            self._in_use[link] = 0

        # Per-node serial processing for the complete-graph mode.
        self._node_free_at: Dict[str, float] = {
            node: 0.0 for node in overlay.nodes
        }
        self._outstanding: Dict[str, int] = {
            node: 0 for node in overlay.nodes
        }
        # The one route-selection implementation, shared with live mode.
        # Route/tree caching (and the routing.cache_* metrics) live in
        # the planner now.
        self._planner = RoutePlanner.from_overlay(
            overlay, metrics=self.metrics, seed=config.seed
        )
        self._transits: Dict[str, int] = {}

        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.total_latency = 0.0
        self.total_hops = 0
        self._first_issue: Optional[float] = None
        self._last_completion = 0.0

    # ------------------------------------------------------------------

    @staticmethod
    def _detect_complete(overlay: Overlay) -> bool:
        nodes = len(overlay.nodes)
        return len(overlay.channels) == nodes * (nodes - 1) // 2

    @staticmethod
    def _trace_addresses(trace: Sequence[Payment]) -> List[str]:
        addresses = set()
        for payment in trace:
            addresses.add(payment.sender)
            addresses.add(payment.recipient)
        return sorted(addresses)

    def _payment_duration(self, hops: int) -> float:
        """Time the payment holds its channel slots: six stage messages
        per hop, each paying one-way wire latency plus the per-stage
        replication cost of the committee chain."""
        calibration = self.config.calibration
        per_stage = self.config.inter_node_one_way
        if self.config.committee_size > 1:
            # Replication runs over the same emulated 100 ms links; a
            # chain of n-1 backups costs (n-1) RTTs per stage update.
            per_stage += ((self.config.committee_size - 1)
                          * 2 * self.config.inter_node_one_way)
        return calibration.teechain_messages_per_hop * hops * per_stage

    def _path_for(self, source: str, target: str,
                  attempt: int) -> Optional[List[str]]:
        """Clamp the retry attempt per the routing policy and defer to
        the shared planner ("shortest" always takes attempt 0; "dynamic"
        walks incrementally longer simple paths up to the limit)."""
        if self.config.routing == "shortest":
            attempt = 0
        else:
            attempt = min(attempt, self.config.dynamic_path_limit - 1)
        return self._planner.route_for_attempt(source, target, attempt)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> NetworkResult:
        # The span's duration is simulated seconds — the run's makespan.
        with get_tracer().span("netsim.run",
                               routing=self.config.routing,
                               nodes=len(self.config.overlay.nodes),
                               committee=self.config.committee_size):
            for node in self.config.overlay.nodes:
                self._fill_window(node, at=0.0)
            self.scheduler.run_until_idle(max_events=50_000_000)
        makespan = self._last_completion - (self._first_issue or 0.0)
        return NetworkResult(
            completed=self.completed,
            failed=self.failed,
            makespan=makespan,
            total_latency=self.total_latency,
            total_hops=self.total_hops,
            retries=self.retries,
            transits=dict(self._transits),
        )

    def _fill_window(self, node: str, at: float) -> None:
        queue = self._queues[node]
        while queue and self._outstanding[node] < self.config.window:
            pending = queue.popleft()
            self._outstanding[node] += 1
            pending.issued_at = max(at, self.scheduler.now)
            if self._first_issue is None:
                self._first_issue = pending.issued_at
            self._attempt(pending)
        if queue and self.metrics.enabled:
            # Payments still queued with the window full: a stall — the
            # per-machine W bound, not channel capacity, is gating issue.
            self.metrics.inc("netsim.window_stalls")
            self.metrics.set_gauge(f"netsim.queue_backlog[{node}]",
                                   len(queue))

    def _attempt(self, pending: _PendingPayment) -> None:
        if self._is_complete_graph:
            self._attempt_direct(pending)
        else:
            self._attempt_multihop(pending)

    # -- complete graph: node-capacity bound -----------------------------

    def _attempt_direct(self, pending: _PendingPayment) -> None:
        rate = self.config.calibration.node_capacity(
            self.config.committee_size
        )
        service = 1.0 / rate
        node = pending.sender_machine
        start = max(self.scheduler.now, self._node_free_at[node])
        finish = start + service
        self._node_free_at[node] = finish
        self.scheduler.call_at(
            finish, lambda: self._complete(pending, hops=1)
        )

    # -- hub-and-spoke: channel locking -----------------------------------

    def _attempt_multihop(self, pending: _PendingPayment) -> None:
        pending.attempts += 1
        path = self._path_for(pending.sender_machine,
                              pending.recipient_machine,
                              pending.attempts - 1)
        if path is None:
            self._fail(pending)
            return
        links = [frozenset((path[i], path[i + 1]))
                 for i in range(len(path) - 1)]
        if any(self._in_use[link] >= self._capacity[link] for link in links):
            if self.metrics.enabled:
                self.metrics.inc("netsim.lock_conflicts")
                for link in links:
                    if self._in_use[link] >= self._capacity[link]:
                        self.metrics.inc(
                            f"netsim.link_conflicts[{self._link_label(link)}]"
                        )
            self._schedule_retry(pending)
            return
        for link in links:
            self._in_use[link] += 1
        for node in path[1:-1]:
            self._transits[node] = self._transits.get(node, 0) + 1
        if self.metrics.enabled:
            for link in links:
                self.metrics.observe(
                    f"netsim.link_occupancy[{self._link_label(link)}]",
                    self._in_use[link] / self._capacity[link],
                    buckets=self._OCCUPANCY_BUCKETS,
                )
        hops = len(links)
        duration = self._payment_duration(hops)

        def release() -> None:
            for link in links:
                self._in_use[link] -= 1
            self._complete(pending, hops=hops)

        self.scheduler.call_after(duration, release)

    def _schedule_retry(self, pending: _PendingPayment) -> None:
        if pending.attempts >= self.config.max_retries:
            self._fail(pending)
            return
        self.retries += 1
        delay = self._rng.uniform(self.config.retry_min,
                                  self.config.retry_max)
        if self.metrics.enabled:
            self.metrics.inc("netsim.retries")
            self.metrics.observe("netsim.retry_backoff", delay,
                                 buckets=self._BACKOFF_BUCKETS)
        self.scheduler.call_after(delay, lambda: self._attempt(pending))

    def _complete(self, pending: _PendingPayment, hops: int) -> None:
        self.completed += 1
        self.total_hops += hops
        self.total_latency += self.scheduler.now - pending.issued_at
        self._last_completion = self.scheduler.now
        if self.metrics.enabled:
            self.metrics.inc("netsim.completed")
            self.metrics.observe("netsim.payment_latency",
                                 self.scheduler.now - pending.issued_at)
            self.metrics.observe("netsim.attempts_per_payment",
                                 pending.attempts or 1,
                                 buckets=self._ATTEMPT_BUCKETS)
        self._release_window(pending.sender_machine)

    def _fail(self, pending: _PendingPayment) -> None:
        self.failed += 1
        if self.metrics.enabled:
            self.metrics.inc("netsim.failed")
        self._release_window(pending.sender_machine)

    @staticmethod
    def _link_label(link: Link) -> str:
        return "|".join(sorted(link))

    def _release_window(self, node: str) -> None:
        self._outstanding[node] -= 1
        self._fill_window(node, at=self.scheduler.now)
