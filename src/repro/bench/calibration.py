"""Calibrated constants for the performance models.

Our substrate is a simulator, not the authors' 33-machine SGX testbed, so
per-operation CPU costs cannot be measured — they are *calibrated*, each
against exactly one anchor number from the paper, and every other number
in EXPERIMENTS.md is a model output.  Provenance of each constant:

=====================================  ======================================
Constant                               Anchor
=====================================  ======================================
``payment_cpu_seconds``                Table 1, "No fault tolerance":
                                       130,311 tx/s → 1/130,311 s per payment
``batched_payment_cpu_seconds``        Table 1, "Batching (no FT)":
                                       150,311 tx/s
``batched_replicated_cpu_seconds``     Table 1, "Batching (two replicas)":
                                       135,331 tx/s
``batched_stable_cpu_seconds``         Table 1, "Batching (stable storage)":
                                       145,786 tx/s
``state_update_bytes``                 Table 1, "One replica": 34,115 tx/s
                                       over the US↔IL 90 Mb/s bottleneck →
                                       90e6/8/34,115 ≈ 330 B per replicated
                                       state update.  This single constant
                                       *predicts* (not fits) the paper's
                                       observation that 2 and 3 replicas
                                       stay ≈33 k tx/s: the bottleneck link
                                       is unchanged.
``counter_increment_seconds``          §7 implementation note: the paper
                                       emulates SGX monotonic counters with
                                       a 100 ms delay (10 tx/s, Table 1
                                       "Stable storage")
``batch_window_seconds``               §7.2: 100 ms client-side batching
``multihop_message_seconds``           Fig. 4, LN line: ≈0.65 s/hop at 1.5
                                       round trips (3 messages) per hop →
                                       ≈0.217 s per protocol message
                                       (transatlantic link + LND
                                       commitment-machine processing)
``channel_create_seconds``             Table 2: 2,810 ms Teechain channel
                                       creation (attestation + DH + ack
                                       exchange)
``outsourced_extra_seconds``           Table 2: outsourced creation adds
                                       ≈1.5 s of client-side quote
                                       verification
``node_capacity_no_ft``                Fig. 6: 2.2 M tx/s across 30
                                       machines → ≈73 k tx/s per machine
                                       under the full network workload
``hub_spoke_channel_parallelism``      Table 3: 671 tx/s with no fault
                                       tolerance — the per-link payment
                                       parallelism (concurrent multi-hop
                                       payments a channel sustains via
                                       intra-channel scheduling) that makes
                                       the lock-contention simulator hit
                                       the anchor; Fig. 7's temporary-
                                       channel scaling and Table 3's
                                       dynamic-routing degradation are
                                       model outputs on top of it.
=====================================  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Calibration:
    """All calibrated constants (seconds, bytes, tx/s)."""

    # CPU costs per payment (seconds).
    payment_cpu_seconds: float = 1.0 / 130_311
    batched_payment_cpu_seconds: float = 1.0 / 150_311
    batched_replicated_cpu_seconds: float = 1.0 / 135_331
    batched_stable_cpu_seconds: float = 1.0 / 145_786

    # Replication.
    state_update_bytes: float = 330.0
    bottleneck_bandwidth_bits: float = 90e6  # US↔IL, Fig. 3

    # Stable storage.
    counter_increment_seconds: float = 0.100

    # Batching.
    batch_window_seconds: float = 0.100

    # Multi-hop.
    multihop_message_seconds: float = 0.65 / 3.0
    teechain_messages_per_hop: int = 6   # 3 round trips (§7.3)
    lightning_messages_per_hop: int = 3  # 1.5 round trips (§7.3)

    # Channel operations (Table 2).
    channel_create_seconds: float = 2.810
    replica_create_seconds: float = 2.765
    outsourced_extra_seconds: float = 1.512
    associate_base_seconds: float = 0.101

    # Network-scale experiments.
    node_capacity_no_ft: float = 73_000.0
    hub_spoke_channel_parallelism: int = 112

    def replication_throughput(self) -> float:
        """Payments/s sustainable through the replication bottleneck link:
        each unbatched payment pushes one state update."""
        return self.bottleneck_bandwidth_bits / (
            8.0 * self.state_update_bytes
        )

    def node_capacity(self, committee_size: int) -> float:
        """Per-node payment capacity under network workload (Fig. 6).

        n = 1 is CPU-bound at the calibrated full-workload rate; n ≥ 2 is
        bound by replication bandwidth, with a small per-extra-member
        overhead reproducing the paper's ≈9 % gap between n=2 and n=3."""
        if committee_size <= 1:
            return self.node_capacity_no_ft
        replicated = self.replication_throughput()
        overhead = 0.91 ** (committee_size - 2)
        return replicated * overhead


DEFAULT_CALIBRATION = Calibration()


# Committee-chain replica placements per party site (Table 1's ladder:
# replicas go to IL first, then UK, then US — §7.2's "committee members
# are deployed in different failure domains").
REPLICA_PLACEMENTS: Dict[int, Tuple[str, ...]] = {
    0: (),
    1: ("IL",),
    2: ("IL", "UK"),
    3: ("IL", "UK", "US"),
}
