"""Benchmark harness: timing/throughput models, the contention simulator,
and paper-vs-measured reporting.

* :mod:`~repro.bench.calibration` — every calibrated constant, with its
  provenance (which paper number anchors it).
* :mod:`~repro.bench.timing` — analytic-on-simulated-topology models for
  Table 1, Table 2, Figure 4 and the §7.3 multi-hop throughput numbers.
* :mod:`~repro.bench.netsim` — the discrete-event payment-network
  simulator behind Figure 6, Table 3 and Figure 7 (channel locking,
  retries, sliding windows, dynamic routing, temporary channels).
* :mod:`~repro.bench.harness` — experiment bookkeeping and formatted
  paper-vs-measured tables (consumed by EXPERIMENTS.md).
"""

from repro.bench.calibration import Calibration
from repro.bench.harness import ExperimentResult, comparison_table
from repro.bench.netsim import NetworkSimulation, NetworkSimulationConfig
from repro.bench.timing import ChannelTimingModel, MultihopTimingModel

__all__ = [
    "Calibration",
    "ChannelTimingModel",
    "ExperimentResult",
    "MultihopTimingModel",
    "NetworkSimulation",
    "NetworkSimulationConfig",
    "comparison_table",
]
