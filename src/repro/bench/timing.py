"""Timing/throughput models for the single-channel and multi-hop
experiments (Table 1, Table 2, Figure 4, §7.3).

The models run over the Fig. 3 topology: every latency is a sum of
simulated-link RTTs (plus the paper's own 100 ms counter emulation and the
calibrated CPU costs of :mod:`repro.bench.calibration`).  Throughput is the
reciprocal of the binding bottleneck: CPU for no fault tolerance,
replication-link bandwidth for committee chains, the monotonic counter for
stable storage — each of which the paper identifies explicitly in §7.2's
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.calibration import Calibration, REPLICA_PLACEMENTS
from repro.errors import ReproError
from repro.network.topology import Topology, fig3_topology


def _site_rtt(topology: Topology, site_a: str, site_b: str) -> float:
    """RTT between two *sites* (via representative nodes)."""
    representatives = {"UK": "UK1", "US": "US", "IL": "IL1"}
    node_a = representatives[site_a]
    node_b = representatives[site_b]
    if site_a == site_b:
        return topology.intra_site_rtt
    return topology.rtt(node_a, node_b)


def committee_chain_latency(topology: Topology, party_site: str,
                            replicas: Sequence[str]) -> float:
    """One state update's latency down a committee chain and back.

    Chain replication propagates hop by hop and the ack returns the same
    way, so the latency is the sum of consecutive-hop RTTs (paper §6,
    Alg. 3 line 24's blocking ack)."""
    latency = 0.0
    previous = party_site
    for site in replicas:
        latency += _site_rtt(topology, previous, site)
        previous = site
    return latency


@dataclass
class ChannelTimingModel:
    """Table 1 / Table 2 model for one payment channel between two sites."""

    calibration: Calibration
    topology: Topology
    site_a: str = "US"
    site_b: str = "UK"

    @classmethod
    def paper_setup(cls, calibration: Optional[Calibration] = None
                    ) -> "ChannelTimingModel":
        """The §7.2 configuration: a channel between US and UK1."""
        return cls(calibration or Calibration(), fig3_topology())

    # -- latency -----------------------------------------------------------

    def channel_rtt(self) -> float:
        return _site_rtt(self.topology, self.site_a, self.site_b)

    def _replication_latency(self, replicas: int) -> float:
        """Both parties replicate before acking (§7.2: both parties use
        committee chains of the same length)."""
        placement = REPLICA_PLACEMENTS.get(replicas)
        if placement is None:
            raise ReproError(f"no replica placement for n-1={replicas}")
        return (
            committee_chain_latency(self.topology, self.site_a, placement)
            + committee_chain_latency(self.topology, self.site_b, placement)
        )

    def payment_latency(self, replicas: int = 0, stable_storage: bool = False,
                        batching: bool = False,
                        outsourced: bool = False) -> float:
        """End-to-end latency of one payment (Table 1's latency column).

        One round trip on the channel (§7.2: "Teechain requires one round
        trip"), plus each party's replication chain, plus two counter
        increments for stable storage, plus the batch window, plus the
        outsourced client's extra leg (IL1 driving the US enclave)."""
        latency = self.channel_rtt()
        latency += self._replication_latency(replicas)
        if stable_storage:
            latency += 2 * self.calibration.counter_increment_seconds
        if batching:
            latency += self.calibration.batch_window_seconds
        if outsourced:
            latency += _site_rtt(self.topology, "IL", self.site_a) / 2.0
        return latency

    # -- throughput ----------------------------------------------------------

    def payment_throughput(self, replicas: int = 0,
                           stable_storage: bool = False,
                           batching: bool = False) -> float:
        """Table 1's throughput column.

        Payments pipeline on the channel (§7.2), so throughput is set by
        the slowest per-payment resource:

        * CPU — the calibrated per-payment cost;
        * replication — each payment ships a state update over the
          bottleneck link (unless batching aggregates them);
        * the monotonic counter — one increment per unbatched payment.
        """
        if batching:
            if stable_storage:
                return 1.0 / self.calibration.batched_stable_cpu_seconds
            if replicas > 0:
                return 1.0 / self.calibration.batched_replicated_cpu_seconds
            return 1.0 / self.calibration.batched_payment_cpu_seconds
        if stable_storage:
            return 1.0 / self.calibration.counter_increment_seconds
        if replicas > 0:
            return self.calibration.replication_throughput()
        return 1.0 / self.calibration.payment_cpu_seconds

    # -- Table 2: channel operations -----------------------------------------

    def channel_creation_latency(self, outsourced: bool = False) -> float:
        latency = self.calibration.channel_create_seconds
        if outsourced:
            latency += self.calibration.outsourced_extra_seconds
        return latency

    def replica_creation_latency(self, outsourced: bool = False) -> float:
        latency = self.calibration.replica_create_seconds
        if outsourced:
            latency += 0.087  # Table 2: 2,852 vs 2,765 ms
        return latency

    def associate_latency(self, replicas: int = 0,
                          stable_storage: bool = False,
                          outsourced: bool = False) -> float:
        """Associate/dissociate latency (Table 2): a base exchange plus
        the replication (or counter) cost of the state update."""
        latency = self.calibration.associate_base_seconds
        latency += self._replication_latency(replicas)
        if stable_storage:
            latency += 2 * self.calibration.counter_increment_seconds
        if outsourced:
            latency += _site_rtt(self.topology, "IL", self.site_a) / 2.0
        return latency


@dataclass
class MultihopTimingModel:
    """Figure 4 / §7.3 model for payments across a chain of channels.

    Fig. 4's setup: 11 transatlantic channels, payments routed
    UK → US → IL → UK…  Latency scales linearly in hops; the per-hop
    gradient is (messages per hop) × (per-message time) plus each
    stage's replication cost at every traversed node.
    """

    calibration: Calibration
    topology: Topology

    @classmethod
    def paper_setup(cls, calibration: Optional[Calibration] = None
                    ) -> "MultihopTimingModel":
        return cls(calibration or Calibration(), fig3_topology())

    def _per_node_stage_cost(self, replicas: int,
                             stable_storage: bool) -> float:
        """Extra cost each protocol message pays at its receiving node:
        the node replicates (or seals) the stage transition before
        forwarding (§7.3's discussion: "replicating state to committee
        members increases latency")."""
        if stable_storage:
            return self.calibration.counter_increment_seconds
        if replicas == 0:
            return 0.0
        # Average the three party sites' chain latencies: hops alternate
        # UK/US/IL in the Fig. 4 setup.
        placement = REPLICA_PLACEMENTS[replicas]
        sites = ("UK", "US", "IL")
        total = sum(
            committee_chain_latency(self.topology, site, placement)
            for site in sites
        )
        return total / len(sites)

    def teechain_latency(self, hops: int, replicas: int = 0,
                         stable_storage: bool = False) -> float:
        """Fig. 4's Teechain lines."""
        if hops < 1:
            raise ReproError(f"hops must be ≥ 1, got {hops}")
        per_message = (self.calibration.multihop_message_seconds
                       + self._per_node_stage_cost(replicas, stable_storage))
        messages = self.calibration.teechain_messages_per_hop * hops
        return messages * per_message

    def lightning_latency(self, hops: int) -> float:
        """Fig. 4's LN line."""
        messages = self.calibration.lightning_messages_per_hop * hops
        return messages * self.calibration.multihop_message_seconds

    # -- §7.3: multi-hop throughput -----------------------------------------
    #
    # "Both Teechain and LN do not pipeline multi-hop payments.  Therefore
    # throughput is 1/latency.  Teechain and LN thus batch transactions:
    # throughput becomes the batch size divided by the latency."
    #
    # Batch sizes: Teechain assembles 100 ms of its 135 k tx/s batched
    # two-replica rate (13,500 logical payments per protocol payment); LN
    # batches 1,000.  The latency governing this experiment is the wire
    # path time of one batched protocol payment — lighter than Fig. 4's
    # per-payment latency because per-stage replication amortises over the
    # batch.  Its two parameters are calibrated against §7.3's published
    # endpoints (14,062 tx/s at 2 hops, 3,649 tx/s at 11 hops).

    THROUGHPUT_FIXED_OVERHEAD = 0.351   # seconds: batch window + τ setup
    THROUGHPUT_PER_HOP = 0.305          # seconds per hop (6 wire messages)

    def teechain_batch_size(self) -> float:
        return (self.calibration.batch_window_seconds
                / self.calibration.batched_replicated_cpu_seconds)

    def teechain_batched_latency(self, hops: int) -> float:
        return (self.THROUGHPUT_FIXED_OVERHEAD
                + self.THROUGHPUT_PER_HOP * hops)

    def teechain_throughput(self, hops: int) -> float:
        """§7.3's Teechain multi-hop throughput (two replicas, batched)."""
        return self.teechain_batch_size() / self.teechain_batched_latency(
            hops
        )

    def lightning_throughput(self, hops: int) -> float:
        """§7.3's LN multi-hop throughput: a 1,000-payment batch per path
        traversal at Fig. 4's LN latency."""
        return 1_000.0 / self.lightning_latency(hops)
