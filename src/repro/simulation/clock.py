"""Simulated clock.

The clock is advanced only by the :class:`~repro.simulation.scheduler.Scheduler`;
components read it to timestamp messages, enforce counter throttles, and
measure latencies.  Keeping it a separate object (rather than a global) lets
tests run many independent simulations in one process.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonically advancing simulated time, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`SimulationError` on any attempt to move backwards;
        a scheduler bug would otherwise silently corrupt every latency
        measurement downstream.
        """
        if timestamp < self._now:
            raise SimulationError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
