"""Deterministic discrete-event simulation (DES) engine.

All timed behaviour in the reproduction — network latency, monotonic-counter
throttling, blockchain confirmation delays, replication round-trips — runs on
this engine so that every benchmark is deterministic and independent of host
wall-clock speed.

Public API:

* :class:`~repro.simulation.clock.Clock` — monotonically advancing simulated
  time in seconds.
* :class:`~repro.simulation.scheduler.Scheduler` — event queue; schedule
  callbacks at absolute or relative simulated times and run until drained.
* :class:`~repro.simulation.scheduler.Event` — a cancellable scheduled entry.
"""

from repro.simulation.clock import Clock
from repro.simulation.scheduler import Event, Scheduler

__all__ = ["Clock", "Event", "Scheduler"]
