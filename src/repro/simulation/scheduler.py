"""Event scheduler: the heart of the discrete-event simulator.

Events are ``(time, sequence, callback)`` triples in a binary heap.  The
sequence number breaks ties so that events scheduled for the same instant
run in FIFO order — without it, simultaneous message deliveries would run
in arbitrary (heap) order and benchmarks would not be reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.obs import MetricsRegistry, get_metrics
from repro.simulation.clock import Clock


class Event:
    """A scheduled callback.  Returned by :meth:`Scheduler.call_at` so the
    caller can cancel it (e.g. a retransmission timer that is no longer
    needed)."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Scheduler:
    """Priority-queue event loop over a :class:`Clock`.

    Typical use::

        sched = Scheduler()
        sched.call_after(0.090, deliver_message)
        sched.run()
        print(sched.clock.now)   # 0.090
    """

    def __init__(self, clock: Optional[Clock] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_skipped = 0
        # Default to the module-level registry (a shared no-op unless a
        # benchmark is collecting); one ``enabled`` check per event.
        self._metrics = metrics if metrics is not None else get_metrics()

    @property
    def now(self) -> float:
        """Convenience accessor for the current simulated time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def cancelled_skipped(self) -> int:
        """Cancelled events discarded from the queue so far (churn)."""
        return self._cancelled_skipped

    @property
    def pending(self) -> int:
        """Number of queued events, including cancelled ones."""
        return len(self._queue)

    def call_at(self, timestamp: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``timestamp``."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {timestamp} before now {self.clock.now}"
            )
        event = Event(timestamp, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.clock.now + delay, callback)

    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Cancelled events are silently discarded.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_skipped += 1
                if self._metrics.enabled:
                    self._metrics.inc("scheduler.cancelled_skipped")
                continue
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if self._metrics.enabled:
                self._metrics.inc("scheduler.events_processed")
                self._metrics.set_gauge("scheduler.queue_depth",
                                        len(self._queue))
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run,
        and the clock is left at ``until`` (or at the last event time if the
        queue drained earlier and ``until`` is ``None``).  When ``max_events``
        stops the loop the same contract holds, with one exception: if
        events at or before ``until`` are still pending, the clock stays at
        the last executed event — it cannot truthfully pass events that have
        not run yet.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.time > until:
                break
            if self.step():
                executed += 1
        if until is not None and self.clock.now < until:
            nxt = self._peek()
            if nxt is None or nxt.time > until:
                self.clock.advance_to(until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely, guarding against runaway loops."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"simulation did not quiesce after {max_events} events"
                )

    def _peek(self) -> Optional[Event]:
        """Return the earliest non-cancelled event without removing it.

        Cancelled events drained here count towards the churn metric just
        like the ones :meth:`step` discards.
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_skipped += 1
                if self._metrics.enabled:
                    self._metrics.inc("scheduler.cancelled_skipped")
                continue
            return event
        return None
