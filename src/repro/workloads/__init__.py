"""Payment workload generation (paper §7.4).

The paper replays the filtered Bitcoin transaction history (150 M
payments).  That dataset is not redistributable, so
:mod:`~repro.workloads.bitcoin_trace` synthesises an equivalent stream —
including the paper's own filtering steps — and
:mod:`~repro.workloads.assignment` distributes addresses across machines
uniformly (complete graph) or skewed 50/35/15 by tier (hub-and-spoke).
"""

from repro.workloads.assignment import (
    assign_addresses_skewed,
    assign_addresses_uniform,
)
from repro.workloads.bitcoin_trace import (
    Payment,
    RawTransaction,
    filter_for_replay,
    generate_raw_transactions,
    generate_trace,
)
from repro.workloads.scalefree import degree_stats, scale_free_overlay

__all__ = [
    "Payment",
    "RawTransaction",
    "assign_addresses_skewed",
    "assign_addresses_uniform",
    "degree_stats",
    "filter_for_replay",
    "generate_raw_transactions",
    "generate_trace",
    "scale_free_overlay",
]
