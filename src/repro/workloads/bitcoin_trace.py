"""Synthetic Bitcoin-history payment trace.

§7.4: "we use the transactions found in the Bitcoin blockchain.  To adapt
the Bitcoin transaction history, we filter out transactions that are not
appropriate for replaying, such as those that spend to/from
multi-signature addresses, or payments of value over a certain threshold
(i.e. $100).  For transactions with multi-input and output addresses, we
choose only one.  This results in a dataset of over 150 million payments
from a source to a recipient address."

We reproduce the *pipeline*, not the dataset: a raw transaction stream
with realistic features (Zipf-skewed address popularity, log-normal
values, a multisig fraction, multi-input/output transactions) runs through
the same filter to yield (sender, recipient, value) payments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy

from repro.errors import WorkloadError

# USD 100 at the paper's late-2018 Bitcoin prices (~USD 4,000/BTC)
# ≈ 0.025 BTC = 2.5 million satoshi.
DEFAULT_VALUE_THRESHOLD_SATOSHI = 2_500_000


@dataclass(frozen=True)
class Payment:
    """One replayable payment."""

    sender: str
    recipient: str
    value: int


@dataclass(frozen=True)
class RawTransaction:
    """A raw (pre-filter) transaction from the synthetic history."""

    input_addresses: Tuple[str, ...]
    output_addresses: Tuple[str, ...]
    value: int
    involves_multisig: bool


class _AddressUniverse:
    """Zipf-skewed address popularity: a few exchange-like addresses
    dominate, a long tail of individuals.  The default exponent of 0.75
    keeps the single hottest address below ~3 % of traffic, matching the
    concentration of the *filtered* Bitcoin history (the paper's filter
    drops the large/multisig exchange sweeps that dominate the raw
    chain)."""

    def __init__(self, count: int, rng: numpy.random.Generator,
                 zipf_exponent: float = 0.75) -> None:
        if count < 2:
            raise WorkloadError(f"need at least 2 addresses, got {count}")
        self.addresses = [f"addr{i:08d}" for i in range(count)]
        ranks = numpy.arange(1, count + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self.probabilities = weights / weights.sum()
        self._rng = rng
        self._count = count

    def sample(self, size: int) -> List[str]:
        indices = self._rng.choice(self._count, size=size,
                                   p=self.probabilities)
        return [self.addresses[index] for index in indices]


def generate_raw_transactions(
    count: int,
    address_count: int = 10_000,
    seed: int = 0,
    multisig_fraction: float = 0.05,
    high_value_fraction: float = 0.10,
    value_threshold: int = DEFAULT_VALUE_THRESHOLD_SATOSHI,
) -> Iterator[RawTransaction]:
    """The synthetic raw history: log-normal values with a heavy tail
    (``high_value_fraction`` of transactions exceed the threshold), a
    ``multisig_fraction`` of multisig transactions, and 1–3 inputs/outputs."""
    rng = numpy.random.Generator(numpy.random.PCG64(seed))
    universe = _AddressUniverse(address_count, rng)
    # Log-normal tuned so roughly high_value_fraction of mass sits above
    # the threshold: median well below, long tail above.
    sigma = 1.8
    mu = math.log(value_threshold) - sigma * _normal_quantile(
        1 - high_value_fraction
    )
    for _ in range(count):
        n_inputs = int(rng.integers(1, 4))
        n_outputs = int(rng.integers(1, 4))
        participants = universe.sample(n_inputs + n_outputs)
        value = max(1, int(rng.lognormal(mean=mu, sigma=sigma)))
        yield RawTransaction(
            input_addresses=tuple(participants[:n_inputs]),
            output_addresses=tuple(participants[n_inputs:]),
            value=value,
            involves_multisig=bool(rng.random() < multisig_fraction),
        )


def _normal_quantile(p: float) -> float:
    """Standard-normal quantile via scipy (kept local: only used here)."""
    from scipy.stats import norm

    return float(norm.ppf(p))


def filter_for_replay(
    transactions: Sequence[RawTransaction],
    value_threshold: int = DEFAULT_VALUE_THRESHOLD_SATOSHI,
) -> List[Payment]:
    """The paper's filter: drop multisig and over-threshold transactions;
    for multi-input/output transactions pick one input and one output;
    drop self-payments (unroutable)."""
    payments = []
    for transaction in transactions:
        if transaction.involves_multisig:
            continue
        if transaction.value > value_threshold:
            continue
        sender = transaction.input_addresses[0]
        recipient = transaction.output_addresses[0]
        if sender == recipient:
            continue
        payments.append(Payment(sender, recipient, transaction.value))
    return payments


def generate_trace(
    count: int,
    address_count: int = 10_000,
    seed: int = 0,
    value_threshold: int = DEFAULT_VALUE_THRESHOLD_SATOSHI,
) -> List[Payment]:
    """End-to-end: synthesise raw history and filter it for replay.

    Oversamples the raw stream so the post-filter trace has roughly
    ``count`` payments, then truncates exactly."""
    raw_needed = int(count * 1.35) + 64  # ≈ compensate filter losses
    raw = list(generate_raw_transactions(raw_needed, address_count, seed,
                                         value_threshold=value_threshold))
    payments = filter_for_replay(raw, value_threshold)
    while len(payments) < count:
        seed += 1
        more = list(generate_raw_transactions(raw_needed, address_count,
                                              seed,
                                              value_threshold=value_threshold))
        payments.extend(filter_for_replay(more, value_threshold))
    return payments[:count]
