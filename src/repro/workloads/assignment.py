"""Address→machine assignment (paper §7.4).

"For the complete graph, we randomly and evenly distribute all Bitcoin
addresses between the machines; for the hub-and-spoke graph, we distribute
the addresses in a skewed fashion ... 50% of addresses to tier 1 nodes,
35% to tier 2, and 15% to tier 3."
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import WorkloadError

DEFAULT_TIER_SHARES = {1: 0.50, 2: 0.35, 3: 0.15}


class HashRing:
    """Consistent-hash ring: stable key→node assignment.

    The daemon worker pool shards channels across OS processes with this
    ring: every router process computes ``owner(peer)`` independently and
    agrees, because the mapping depends only on the node names — no
    coordination, no shared state.  Virtual nodes (``replicas`` points
    per node) smooth the distribution; removing a node reassigns only the
    keys it owned, which is the property a plain ``hash(key) % n`` lacks.

    Ownership stability bound (tested in
    ``tests/test_workloads_bench.py::TestHashRing``): with N nodes,
    adding one
    moves only keys the new node's replica points capture — in
    expectation ``keys/(N+1)``, and with the default 64 replicas per
    node the observed movement stays under roughly ``2 × keys/(N+1)``
    (hash variance shrinks as replicas grow).  Removing a node moves
    *exactly* the keys it owned — every other key's first clockwise
    point is unchanged — and add-then-remove restores the original
    assignment bit-for-bit.  The hub relies on this: account shards
    (``account:<pubkey>`` keys) stay put when the worker pool changes
    elsewhere.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise WorkloadError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (hash, node)
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode()).digest()[:8], "big")

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = (self._hash(f"{node}#{replica}"), node)
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise WorkloadError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [point for point in self._points
                        if point[1] != node]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def owner(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise of its
        hash (wrapping past the top back to the first point)."""
        if not self._points:
            raise WorkloadError("hash ring is empty")
        index = bisect.bisect_right(self._points, (self._hash(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


def assign_addresses_uniform(addresses: Sequence[str],
                             machines: Sequence[str],
                             seed: int = 0) -> Dict[str, str]:
    """Random, even distribution of addresses over machines."""
    if not machines:
        raise WorkloadError("no machines to assign addresses to")
    rng = random.Random(seed)
    shuffled = list(addresses)
    rng.shuffle(shuffled)
    return {
        address: machines[index % len(machines)]
        for index, address in enumerate(shuffled)
    }


def assign_addresses_skewed(addresses: Sequence[str],
                            tier_of: Mapping[str, int],
                            seed: int = 0,
                            tier_shares: Mapping[int, float] = None
                            ) -> Dict[str, str]:
    """Skewed distribution: each tier's share of addresses is split evenly
    among that tier's machines."""
    shares = dict(tier_shares or DEFAULT_TIER_SHARES)
    machines_by_tier: Dict[int, List[str]] = {}
    for machine, tier in tier_of.items():
        machines_by_tier.setdefault(tier, []).append(machine)
    missing = set(shares) - set(machines_by_tier)
    if missing:
        raise WorkloadError(f"no machines in tiers {sorted(missing)}")
    for tier in machines_by_tier:
        machines_by_tier[tier].sort()

    rng = random.Random(seed)
    shuffled = list(addresses)
    rng.shuffle(shuffled)

    assignment: Dict[str, str] = {}
    cursor = 0
    total = len(shuffled)
    tiers = sorted(shares)
    for position, tier in enumerate(tiers):
        if position == len(tiers) - 1:
            chunk = shuffled[cursor:]
        else:
            size = int(round(shares[tier] * total))
            chunk = shuffled[cursor:cursor + size]
            cursor += size
        machines = machines_by_tier[tier]
        for index, address in enumerate(chunk):
            assignment[address] = machines[index % len(machines)]
    return assignment


def assign_addresses_balanced(address_weights: Mapping[str, int],
                              machines: Sequence[str]) -> Dict[str, str]:
    """Weight-balanced assignment: heaviest addresses first, each to the
    currently lightest machine.

    The paper's complete-graph experiment distributes addresses "randomly
    and evenly"; at its scale (150 M payments, popular addresses spread
    over only 30 machines) that yields near-balanced per-machine load.
    Our trace is ~4 orders of magnitude smaller, so an unweighted random
    split leaves one machine holding the single hottest address and
    dominating the makespan — balancing by observed payment count restores
    the property the paper's scale provides for free."""
    if not machines:
        raise WorkloadError("no machines to assign addresses to")
    load = {machine: 0 for machine in machines}
    assignment: Dict[str, str] = {}
    ordered = sorted(address_weights.items(),
                     key=lambda item: (-item[1], item[0]))
    for address, weight in ordered:
        machine = min(load, key=lambda name: (load[name], name))
        assignment[address] = machine
        load[machine] += weight
    return assignment
