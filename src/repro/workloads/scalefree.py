"""Scale-free channel topologies for network-scale routing experiments.

Payment networks measured in the wild (Lightning most prominently) are
scale-free: a few highly connected hubs carry most routes.  This module
grows such graphs with Barabási–Albert preferential attachment —
hand-rolled on :mod:`random` so the generator stays deterministic per
seed and graph-library dependencies stay confined to ``repro.routing``.

Tiers are assigned by degree so the :class:`~repro.network.topology.Overlay`
plugs into the existing netsim machinery (tier-1/2 links get temporary
channels in the Fig. 7 experiments): the top percentile of nodes by
degree is tier 1, the next band tier 2, the rest tier 3.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.network.topology import Overlay


def scale_free_overlay(
    node_count: int,
    attach: int = 2,
    seed: int = 0,
    *,
    tier1_fraction: float = 0.01,
    tier2_fraction: float = 0.10,
    name_prefix: str = "n",
) -> Overlay:
    """Grow a Barabási–Albert graph of ``node_count`` nodes.

    Each new node attaches ``attach`` channels to existing nodes chosen
    with probability proportional to their degree (sampling from the
    repeated-endpoints list — the classic O(E) trick).  The result is
    connected by construction and its degree distribution follows the
    familiar power law, concentrating routes on early/high-degree hubs.
    """
    if node_count < 2:
        raise ReproError("a scale-free overlay needs at least 2 nodes")
    if not 1 <= attach < node_count:
        raise ReproError(
            f"attach must be in [1, node_count), got {attach}")
    rng = random.Random(seed)
    names = [f"{name_prefix}{i}" for i in range(node_count)]

    channels: List[Tuple[str, str]] = []
    # Every endpoint of every edge, once per incidence: sampling
    # uniformly from this list IS degree-proportional sampling.
    endpoints: List[int] = []

    # Seed clique: the first attach+1 nodes, fully connected, so the
    # first preferentially attached node has real degrees to weigh.
    core = attach + 1
    for i in range(core):
        for j in range(i + 1, core):
            channels.append((names[i], names[j]))
            endpoints.extend((i, j))

    for new in range(core, node_count):
        targets: set = set()
        while len(targets) < attach:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for target in sorted(targets):
            channels.append((names[target], names[new]))
            endpoints.extend((target, new))

    degree: Dict[int, int] = {i: 0 for i in range(node_count)}
    for i in endpoints:
        degree[i] += 1
    ranked = sorted(range(node_count), key=lambda i: (-degree[i], i))
    tier1_cut = max(1, int(node_count * tier1_fraction))
    tier2_cut = max(tier1_cut + 1, int(node_count * tier2_fraction))
    tier_of: Dict[str, int] = {}
    for rank, i in enumerate(ranked):
        if rank < tier1_cut:
            tier_of[names[i]] = 1
        elif rank < tier2_cut:
            tier_of[names[i]] = 2
        else:
            tier_of[names[i]] = 3

    return Overlay(nodes=tuple(names), channels=tuple(channels),
                   tier_of=tier_of)


def degree_stats(overlay: Overlay) -> Dict[str, float]:
    """Degree summary used by the routing benchmark's sidecar."""
    degree: Dict[str, int] = {name: 0 for name in overlay.nodes}
    for a, b in overlay.channels:
        degree[a] += 1
        degree[b] += 1
    values = sorted(degree.values(), reverse=True)
    return {
        "max_degree": float(values[0]),
        "mean_degree": sum(values) / len(values),
        "top1pct_degree_share": (
            sum(values[:max(1, len(values) // 100)]) / sum(values)
        ),
    }
