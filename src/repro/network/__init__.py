"""Simulated network transport.

* :mod:`~repro.network.transport` — named endpoints exchanging messages
  over a :class:`~repro.simulation.Scheduler`, with per-pair latency and
  bandwidth; plus an instant in-memory transport for direct-mode tests.
* :mod:`~repro.network.topology` — the paper's Fig. 3 testbed (UK/US/IL
  RTT and bandwidth matrix) and the Fig. 5 hub-and-spoke / complete-graph
  overlays used in §7.4.
* :mod:`~repro.network.secure_channel` — attested, authenticated,
  replay-protected channels between enclaves (paper §4.1).
* :mod:`~repro.network.adversary` — drop / delay / replay / reorder
  attacks on the wire.
"""

from repro.network.adversary import NetworkAdversary
from repro.network.secure_channel import SecureChannel, establish_secure_channel
from repro.network.topology import (
    Topology,
    complete_graph_overlay,
    fig3_topology,
    hub_and_spoke_overlay,
)
from repro.network.transport import InstantNetwork, Message, Network

__all__ = [
    "InstantNetwork",
    "Message",
    "Network",
    "NetworkAdversary",
    "SecureChannel",
    "Topology",
    "complete_graph_overlay",
    "establish_secure_channel",
    "fig3_topology",
    "hub_and_spoke_overlay",
]
