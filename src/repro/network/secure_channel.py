"""Attested secure channels between enclaves (paper §4.1,
``newNetworkChannel``).

Establishment follows the paper: remote attestation plus authenticated
Diffie–Hellman keyed to the enclaves' identity public keys (exchanged
out-of-band).  Binding the DH exchange to the *identity keys* is the
defence against state-forking: a forked enclave shares the same identity
key, so an attacker cannot make two distinct peers both believe they hold
the unique channel with it — replay counters (below) make the two copies'
message streams mutually inconsistent.

After establishment a :class:`SecureChannel` provides:

* confidentiality + integrity (encrypt-then-MAC, per-direction nonces);
* freshness: strictly-increasing send counters; any replayed or reordered
  ciphertext is rejected with
  :class:`~repro.errors.MessageAuthenticationError`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.authenticated import (
    SecureChannelKeys,
    decrypt,
    derive_channel_keys,
    encrypt,
    nonce_from_counter,
)
from repro.crypto.keys import PublicKey
from repro.errors import (
    AttestationError,
    DecryptionError,
    MessageAuthenticationError,
)
from repro.tee.attestation import AttestationService, Quote, verify_quote
from repro.tee.enclave import Enclave

# Sealed plaintexts use the runtime wire codec when the payload has a wire
# encoding (every protocol message does), so envelopes crossing a real
# socket never contain pickle — decoding pickle from the network is an
# arbitrary-code-execution hole.  Payloads with no wire form (test doubles)
# fall back to pickle, which only ever happens in-process.  The two are
# distinguished on decode by the codec's leading magic: pickle protocol ≥ 2
# streams start with 0x80, never ``b"TCW"``.  The codec import is lazy to
# keep this module importable without dragging the runtime package in.

def _serialise(obj: Any) -> bytes:
    from repro.runtime import codec
    try:
        return codec.encode(obj)
    except codec.CodecError:
        return pickle.dumps(obj)


def _deserialise(data: bytes) -> Any:
    from repro.runtime import codec
    if data[:3] == codec.MAGIC:
        return codec.decode(data)
    return pickle.loads(data)


@dataclass
class SecureChannel:
    """One endpoint's view of an established secure channel."""

    local_key: PublicKey
    remote_key: PublicKey
    keys: SecureChannelKeys
    # Per-handshake salt mixed into the key derivation (empty for the
    # in-process establishment path, where channels are never renewed).
    session: bytes = b""
    _send_counter: int = 0
    _recv_counter: int = 0

    def seal_message(self, payload: Any) -> bytes:
        """Encrypt + authenticate a payload with a fresh nonce.

        The sender's identity key is baked into the plaintext so the
        receiver can reject ciphertexts replayed from a different channel
        even if keys collided (they cannot, but defence in depth is free).
        """
        self._send_counter += 1
        plaintext = _serialise(
            (self.local_key.to_bytes(), self._send_counter, payload)
        )
        return encrypt(self.keys, nonce_from_counter(self._send_counter),
                       plaintext)

    def seal_blob(self, payload: Any) -> bytes:
        """Encrypt a payload *embedded inside* a protocol message (e.g. a
        deposit private key, Alg. 1 line 72).

        Blobs use a separate nonce namespace and carry no ordering: the
        enclosing signed message already provides freshness, and checking
        the stream counter here would falsely flag the blob as a replay of
        the message that carries it."""
        self._blob_counter = getattr(self, "_blob_counter", 0) + 1
        plaintext = _serialise((self.local_key.to_bytes(), payload))
        # High bit of the nonce prefix separates the blob namespace from
        # the message-stream namespace.
        nonce = b"\x80\x00\x00\x00" + self._blob_counter.to_bytes(8, "big")
        return encrypt(self.keys, nonce, plaintext)

    def open_blob(self, blob: bytes) -> Any:
        """Decrypt an embedded payload; verifies integrity and sender
        binding but (deliberately) not stream ordering."""
        try:
            plaintext = decrypt(self.keys, blob)
        except DecryptionError as exc:
            raise MessageAuthenticationError(str(exc)) from exc
        sender_key_bytes, payload = _deserialise(plaintext)
        if sender_key_bytes != self.remote_key.to_bytes():
            raise MessageAuthenticationError(
                "blob sealed by an unexpected sender key"
            )
        return payload

    def open_message(self, envelope: bytes) -> Any:
        """Decrypt, authenticate, and freshness-check an incoming message.

        Raises :class:`MessageAuthenticationError` on tampering, replay,
        or reordering (counters must strictly increase).
        """
        try:
            plaintext = decrypt(self.keys, envelope)
        except DecryptionError as exc:
            raise MessageAuthenticationError(str(exc)) from exc
        sender_key_bytes, counter, payload = _deserialise(plaintext)
        if sender_key_bytes != self.remote_key.to_bytes():
            raise MessageAuthenticationError(
                "message sealed by an unexpected sender key"
            )
        if counter <= self._recv_counter:
            raise MessageAuthenticationError(
                f"replayed or reordered message: counter {counter} "
                f"≤ last seen {self._recv_counter}"
            )
        self._recv_counter = counter
        return payload


def establish_secure_channel(
    enclave_a: Enclave,
    enclave_b: Enclave,
    attestation: AttestationService,
    expected_measurement_a: Optional[bytes] = None,
    expected_measurement_b: Optional[bytes] = None,
) -> Tuple[SecureChannel, SecureChannel]:
    """Mutually attest two enclaves and derive channel keys.

    Each side verifies the peer's quote against the peer's *known* identity
    key (exchanged out-of-band per §4.1) and the expected measurement
    (defaulting to "same program as mine").  Raises
    :class:`~repro.errors.AttestationError` if either check fails —
    e.g. when one enclave runs tampered code.

    Establishment is modelled as one logical handshake; its latency on the
    wire is accounted for by the callers that time channel creation
    (Table 2), not here.
    """
    # Default expectation: "the peer runs the same program I do" — each
    # side checks the other's quote against its *own* measurement, so a
    # tampered program on either end fails the handshake.
    measurement_a = expected_measurement_a or enclave_a.measurement
    measurement_b = expected_measurement_b or enclave_b.measurement

    # Quotes carry the DH (identity) public keys as report data, binding
    # attestation to this key exchange.
    quote_a = attestation.quote(enclave_a,
                                report_data=enclave_a.public_key.to_bytes())
    quote_b = attestation.quote(enclave_b,
                                report_data=enclave_b.public_key.to_bytes())

    # A verifies B's quote, B verifies A's.
    verify_quote(quote_b, attestation.root_key, measurement_a,
                 expected_key=enclave_b.public_key, service=attestation)
    verify_quote(quote_a, attestation.root_key, measurement_b,
                 expected_key=enclave_a.public_key, service=attestation)

    keys_a = derive_channel_keys(enclave_a.identity.private,
                                 enclave_b.public_key)
    keys_b = derive_channel_keys(enclave_b.identity.private,
                                 enclave_a.public_key)
    channel_a = SecureChannel(local_key=enclave_a.public_key,
                              remote_key=enclave_b.public_key, keys=keys_a)
    channel_b = SecureChannel(local_key=enclave_b.public_key,
                              remote_key=enclave_a.public_key, keys=keys_b)
    return channel_a, channel_b


def channel_from_quote(
    enclave: Enclave,
    peer_quote: Quote,
    root_key: PublicKey,
    expected_measurement: Optional[bytes] = None,
    service: Optional[AttestationService] = None,
    session: bytes = b"",
) -> SecureChannel:
    """One side of the handshake when the peer enclave lives in another
    process: all we hold is its attestation quote, received off the wire.

    The quote must bind the peer's DH identity key (``report_data`` equals
    the quoted key) — without that check an attacker could splice a stale
    quote from a different handshake onto a fresh key exchange.  Key
    derivation is symmetric (:func:`derive_channel_keys` sorts the two
    public keys into the KDF context), so when both sides run this against
    each other's quotes they arrive at the same channel keys with no
    further round trips.

    ``session`` is the combined handshake salt (both daemons' boot nonces,
    hashed symmetrically) — it renews the channel keys when an endpoint
    restarts, so the re-handshake cannot resurrect the dead session's
    keystream (see :meth:`ChannelProtocol.reinstall_secure_channel`).
    """
    measurement = expected_measurement or enclave.measurement
    verify_quote(peer_quote, root_key, measurement, service=service)
    if peer_quote.report_data != peer_quote.enclave_key.to_bytes():
        raise AttestationError(
            "quote does not bind the peer's channel key"
        )
    keys = derive_channel_keys(enclave.identity.private,
                               peer_quote.enclave_key, session=session)
    return SecureChannel(local_key=enclave.public_key,
                         remote_key=peer_quote.enclave_key, keys=keys,
                         session=session)
