"""Network-level adversary (threat model §2.4: parties "may drop, send,
record, modify, and replay messages").

Installed as a wire tap on a transport; policies act per (sender,
destination) pair or globally.  Recorded messages can be replayed later —
the attack the secure channel's freshness counters must defeat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.transport import BaseNetwork, InstantNetwork, Message, Network


@dataclass
class _PairPolicy:
    drop: bool = False
    drop_probability: float = 0.0
    extra_delay: float = 0.0
    duplicate: bool = False
    # Let this many messages through, then drop everything after them —
    # for stalling a protocol at a chosen phase.
    drop_after: Optional[int] = None
    seen: int = 0
    # Hold messages and release them in shuffled order once ``window``
    # are buffered (seeded shuffle — deterministic per adversary).
    reorder_window: int = 0
    reorder_buffer: List[Message] = field(default_factory=list)


class NetworkAdversary:
    """Message-level attacks over a transport.

    Usage::

        adversary = NetworkAdversary(network, rng_seed=7)
        adversary.partition("alice", "bob")       # drop all alice→bob
        adversary.delay("bob", "carol", 5.0)      # add 5 s one way
        adversary.record("alice", "bob")          # tape for replay
        ...
        adversary.replay_recorded(index=0)        # inject old message
    """

    def __init__(self, network: BaseNetwork, rng_seed: int = 0) -> None:
        self.network = network
        self._rng = random.Random(rng_seed)
        self._policies: Dict[Tuple[str, str], _PairPolicy] = {}
        self._recording: Dict[Tuple[str, str], bool] = {}
        self.recorded: List[Message] = []
        self.dropped: List[Message] = []
        network.add_tap(self._tap)

    def detach(self) -> None:
        """Remove the tap from the transport; held reorder buffers are
        flushed first so no message is silently lost on teardown."""
        for sender, destination in list(self._policies):
            self.clear(sender, destination)
        self.network.remove_tap(self._tap)

    def _policy(self, sender: str, destination: str) -> _PairPolicy:
        key = (sender, destination)
        if key not in self._policies:
            self._policies[key] = _PairPolicy()
        return self._policies[key]

    # -- policy configuration --------------------------------------------

    def partition(self, sender: str, destination: str) -> None:
        """Drop every message sender→destination (one direction)."""
        self._policy(sender, destination).drop = True

    def heal(self, sender: str, destination: str) -> None:
        self._policy(sender, destination).drop = False

    def lossy(self, sender: str, destination: str, probability: float) -> None:
        self._policy(sender, destination).drop_probability = probability

    def delay(self, sender: str, destination: str, extra_seconds: float) -> None:
        self._policy(sender, destination).extra_delay = extra_seconds

    def drop_after(self, sender: str, destination: str, count: int) -> None:
        """Allow ``count`` more messages sender→destination, then drop all
        later ones.  Used by tests to freeze a protocol mid-phase."""
        policy = self._policy(sender, destination)
        policy.drop_after = count
        policy.seen = 0

    def duplicate(self, sender: str, destination: str) -> None:
        """Deliver each matching message twice (network-level duplication)."""
        self._policy(sender, destination).duplicate = True

    def reorder(self, sender: str, destination: str, window: int = 2) -> None:
        """Buffer matching messages and release each full window in a
        seeded-shuffled order — the adversarial reordering the secure
        channel's sequence counters must reject or tolerate."""
        if window < 2:
            raise ValueError(f"reorder window must be ≥ 2, got {window}")
        self._policy(sender, destination).reorder_window = window

    def clear(self, sender: str, destination: str) -> None:
        """Drop all policies for one direction, flushing any messages the
        reorder buffer still holds (in order — the attack is over)."""
        policy = self._policies.pop((sender, destination), None)
        if policy is not None:
            for message in policy.reorder_buffer:
                self._inject(message, extra_delay=0.0)
            policy.reorder_buffer.clear()

    def record(self, sender: str, destination: str) -> None:
        """Start taping messages for later replay."""
        self._recording[(sender, destination)] = True

    # -- replay ------------------------------------------------------------

    def replay_recorded(self, index: int) -> None:
        """Re-inject a taped message as-is."""
        message = self.recorded[index]
        self._inject(message, extra_delay=0.0)

    def replay_all(self) -> None:
        for index in range(len(self.recorded)):
            self.replay_recorded(index)

    # -- tap implementation -------------------------------------------------

    def _tap(self, message: Message) -> Optional[bool]:
        key = (message.sender, message.destination)
        if self._recording.get(key):
            self.recorded.append(message)
        policy = self._policies.get(key)
        if policy is None:
            return True
        if policy.drop:
            self.dropped.append(message)
            return False
        if policy.drop_after is not None:
            policy.seen += 1
            if policy.seen > policy.drop_after:
                self.dropped.append(message)
                return False
        if policy.drop_probability and self._rng.random() < policy.drop_probability:
            self.dropped.append(message)
            return False
        if policy.reorder_window:
            policy.reorder_buffer.append(message)
            if len(policy.reorder_buffer) >= policy.reorder_window:
                batch = policy.reorder_buffer
                policy.reorder_buffer = []
                self._rng.shuffle(batch)
                for held in batch:
                    self._inject(held, extra_delay=policy.extra_delay)
            return False
        if policy.duplicate:
            self._inject(message, extra_delay=policy.extra_delay)
        if policy.extra_delay:
            self._inject(message, extra_delay=policy.extra_delay)
            return False
        return True

    def _inject(self, message: Message, extra_delay: float) -> None:
        if isinstance(self.network, Network):
            base = self.network.one_way_delay(
                message.sender, message.destination, message.size
            )
            self.network.deliver_after(base + extra_delay, message)
        elif isinstance(self.network, InstantNetwork):
            self.network.inject(message)
