"""Network topologies from the paper's evaluation.

* :func:`fig3_topology` — the 33-machine UK/US/IL testbed (Fig. 3):
  per-site-pair RTTs and bandwidths.
* :func:`hub_and_spoke_overlay` — the three-tier overlay of Fig. 5
  (§7.4), with 100 ms inter-node RTT.
* :func:`complete_graph_overlay` — the complete payment-channel graph of
  §7.4's Fig. 6 experiments.

Overlays are payment-channel graphs (who has a channel with whom); the
topology is the underlay (what latency messages see).  §7.4 runs overlays
on 30 UK machines with an *emulated* 100 ms inter-node latency, which we
reproduce with :meth:`Topology.uniform`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import NetworkError


def _mbps(megabits: float) -> float:
    return megabits * 1_000_000.0


@dataclass
class Topology:
    """Sites, node→site placement, and per-site-pair RTT/bandwidth."""

    site_of: Dict[str, str] = field(default_factory=dict)
    rtt_between_sites: Dict[FrozenSet[str], float] = field(default_factory=dict)
    bandwidth_between_sites: Dict[FrozenSet[str], float] = field(default_factory=dict)
    intra_site_rtt: float = 0.0005  # 0.5 ms, Fig. 3's LAN links
    intra_site_bandwidth: float = _mbps(1000)

    def add_node(self, name: str, site: str) -> None:
        if name in self.site_of:
            raise NetworkError(f"node {name!r} already placed")
        self.site_of[name] = site

    def set_link(self, site_a: str, site_b: str, rtt: float,
                 bandwidth: float) -> None:
        key = frozenset((site_a, site_b))
        self.rtt_between_sites[key] = rtt
        self.bandwidth_between_sites[key] = bandwidth

    def _site(self, node: str) -> str:
        site = self.site_of.get(node)
        if site is None:
            raise NetworkError(f"node {node!r} not placed in topology")
        return site

    def rtt(self, node_a: str, node_b: str) -> float:
        site_a, site_b = self._site(node_a), self._site(node_b)
        if site_a == site_b:
            return 0.0 if node_a == node_b else self.intra_site_rtt
        key = frozenset((site_a, site_b))
        if key not in self.rtt_between_sites:
            raise NetworkError(f"no link between sites {site_a} and {site_b}")
        return self.rtt_between_sites[key]

    def bandwidth(self, node_a: str, node_b: str) -> float:
        site_a, site_b = self._site(node_a), self._site(node_b)
        if site_a == site_b:
            return self.intra_site_bandwidth
        return self.bandwidth_between_sites[frozenset((site_a, site_b))]

    def latency_fn(self):
        """Adapter for :class:`~repro.network.transport.Network`."""
        return self.rtt

    def bandwidth_fn(self):
        return self.bandwidth

    def nodes(self) -> List[str]:
        return list(self.site_of)

    @classmethod
    def uniform(cls, node_names: Iterable[str], rtt: float,
                bandwidth: float = _mbps(1000)) -> "Topology":
        """All pairs at the same RTT — §7.4's emulated 100 ms WAN."""
        topology = cls()
        names = list(node_names)
        for name in names:
            topology.add_node(name, site=name)  # one site per node
        for site_a, site_b in itertools.combinations(names, 2):
            topology.set_link(site_a, site_b, rtt, bandwidth)
        return topology


# Site names used throughout the evaluation code.
UK, US, IL = "UK", "US", "IL"


def fig3_topology(uk_machines: int = 30) -> Topology:
    """The paper's Fig. 3 testbed.

    Machines: ``US`` (Intel Xeon E3-1280 v5), ``IL1``/``IL2``,
    ``UK1``…``UK{n}``.  Site-pair links (RTT, bandwidth):

    * UK↔US: 90 ms, 150 Mb/s
    * UK↔IL: 60 ms, 180 Mb/s
    * US↔IL: 140 ms, 90 Mb/s
    * intra-UK: 0.5 ms, 100 Mb/s–1 Gb/s (we use 1 Gb/s)

    These assignments reproduce Table 1's latency ladder: one payment
    round-trip UK↔US ≈ 90 ms (paper: 86 ms); one replica in IL adds
    60 + 140 ms (paper total: 292 ms).
    """
    topology = Topology()
    topology.add_node("US", US)
    topology.add_node("IL1", IL)
    topology.add_node("IL2", IL)
    for index in range(1, uk_machines + 1):
        topology.add_node(f"UK{index}", UK)
    topology.set_link(UK, US, rtt=0.090, bandwidth=_mbps(150))
    topology.set_link(UK, IL, rtt=0.060, bandwidth=_mbps(180))
    topology.set_link(US, IL, rtt=0.140, bandwidth=_mbps(90))
    return topology


@dataclass(frozen=True)
class Overlay:
    """A payment-channel graph: nodes, channels, and node tiers."""

    nodes: Tuple[str, ...]
    channels: Tuple[Tuple[str, str], ...]
    tier_of: Dict[str, int] = field(default_factory=dict, hash=False, compare=False)

    def neighbours(self, node: str) -> List[str]:
        result = []
        for a, b in self.channels:
            if a == node:
                result.append(b)
            elif b == node:
                result.append(a)
        return result

    def has_channel(self, a: str, b: str) -> bool:
        return (a, b) in self.channels or (b, a) in self.channels


def complete_graph_overlay(node_names: Iterable[str]) -> Overlay:
    """Every pair of nodes shares a direct payment channel (§7.4)."""
    names = tuple(node_names)
    channels = tuple(itertools.combinations(names, 2))
    return Overlay(nodes=names, channels=channels,
                   tier_of={name: 1 for name in names})


def hub_and_spoke_overlay(
    tier1: int = 3, tier2_per_hub: int = 3, tier3_per_mid: int = 2,
    prefix: str = "N",
) -> Overlay:
    """The Fig. 5 three-tier hub-and-spoke overlay.

    Tier-1 hubs form a complete core; each hub serves ``tier2_per_hub``
    mid-tier nodes; each mid-tier node serves ``tier3_per_mid`` leaves.
    Defaults give 3 + 9 + 18 = 30 nodes, matching the 30-machine UK
    deployment.
    """
    nodes: List[str] = []
    channels: List[Tuple[str, str]] = []
    tier_of: Dict[str, int] = {}

    hubs = [f"{prefix}hub{i}" for i in range(1, tier1 + 1)]
    for hub in hubs:
        nodes.append(hub)
        tier_of[hub] = 1
    channels.extend(itertools.combinations(hubs, 2))

    mid_index = 0
    mids: List[str] = []
    for hub in hubs:
        for _ in range(tier2_per_hub):
            mid_index += 1
            mid = f"{prefix}mid{mid_index}"
            nodes.append(mid)
            tier_of[mid] = 2
            mids.append(mid)
            channels.append((hub, mid))

    leaf_index = 0
    for mid in mids:
        for _ in range(tier3_per_mid):
            leaf_index += 1
            leaf = f"{prefix}leaf{leaf_index}"
            nodes.append(leaf)
            tier_of[leaf] = 3
            channels.append((mid, leaf))

    return Overlay(nodes=tuple(nodes), channels=tuple(channels),
                   tier_of=tier_of)
