"""Message transport between named endpoints.

Two implementations share one interface:

* :class:`Network` — scheduler-driven; delivery takes one-way latency
  (RTT/2) plus a serialisation delay from link bandwidth.  Benchmarks run
  on this.
* :class:`InstantNetwork` — synchronous FIFO delivery with zero latency.
  Unit tests of protocol logic run on this; the FIFO drain (rather than
  recursive delivery) keeps deep multi-hop cascades iterative.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.obs import get_metrics, get_tracer
from repro.obs.context import TraceContext
from repro.simulation.scheduler import Scheduler

Handler = Callable[["Message"], None]
LatencyFn = Callable[[str, str], float]
BandwidthFn = Callable[[str, str], Optional[float]]

DEFAULT_MESSAGE_SIZE = 512  # bytes; fallback when a payload is not encodable

# Lazily-resolved ``repro.runtime.codec.encoded_size``.  The import happens
# on first use, not at module load: the codec registers every protocol
# dataclass, and importing it here would drag the whole protocol stack in
# under ``repro.network``.
_encoded_size: Optional[Callable[[Any], Optional[int]]] = None


def payload_size(payload: Any) -> int:
    """Wire size of ``payload`` per the runtime codec.

    Falls back to :data:`DEFAULT_MESSAGE_SIZE` for payloads with no wire
    encoding (test doubles, in-process-only objects), so DES bandwidth and
    serialisation-delay accounting reflects real message sizes whenever it
    can.
    """
    global _encoded_size
    if _encoded_size is None:
        from repro.runtime.codec import encoded_size
        _encoded_size = encoded_size
    size = _encoded_size(payload)
    return size if size is not None else DEFAULT_MESSAGE_SIZE


@dataclass(frozen=True)
class Message:
    """One delivered message.

    ``trace`` is the causal context riding the message — ``None`` unless
    a tracer with an active context was installed when it was sent, so
    untraced runs construct exactly the same object they always did."""

    sender: str
    destination: str
    payload: Any
    size: int = DEFAULT_MESSAGE_SIZE
    trace: Optional[TraceContext] = None


class BaseNetwork:
    """Endpoint registry shared by both transports."""

    def __init__(self) -> None:
        self._handlers: Dict[str, Handler] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # Adversary-suppressed traffic is accounted separately: a message a
        # tap swallowed never went over the wire, so counting it as sent
        # would skew every bandwidth/cost figure derived from these.
        self.messages_suppressed = 0
        self.bytes_suppressed = 0
        self._taps: List[Callable[[Message], Optional[bool]]] = []
        self._metrics = get_metrics()

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def wrap_handler(self, name: str,
                     wrap: Callable[[Handler], Handler]) -> None:
        """Replace ``name``'s handler with ``wrap(original)``.

        Lets a host interpose on deliveries (echo probes, fault injection)
        without the endpoint re-registering.
        """
        original = self._handler_for(name)
        self._handlers[name] = wrap(original)

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    def add_tap(self, tap: Callable[[Message], Optional[bool]]) -> None:
        """Install a wire tap (adversary hook).

        Taps see every message before delivery; returning ``False``
        suppresses normal delivery (the tap has taken over the message).
        """
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Message], Optional[bool]]) -> None:
        """Uninstall a wire tap (no-op if it was never installed) — lets
        a fault injector detach without leaving dead policy hooks."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    def _handler_for(self, destination: str) -> Handler:
        handler = self._handlers.get(destination)
        if handler is None:
            raise NetworkError(f"no endpoint {destination!r}")
        return handler

    def _tap_allows(self, message: Message) -> bool:
        for tap in self._taps:
            if tap(message) is False:
                return False
        return True

    def _account_send(self, message: Message) -> bool:
        """Consult taps, then update wire accounting.

        Returns ``True`` if the message should be delivered.  Tap-dropped
        messages count as suppressions, not as sent traffic.
        """
        if not self._tap_allows(message):
            self.messages_suppressed += 1
            self.bytes_suppressed += message.size
            if self._metrics.enabled:
                self._metrics.inc("transport.tap_drops")
                self._metrics.inc("transport.tap_dropped_bytes", message.size)
            return False
        self.messages_sent += 1
        self.bytes_sent += message.size
        if self._metrics.enabled:
            pair = f"{message.sender}->{message.destination}"
            self._metrics.inc(f"transport.messages[{pair}]")
            self._metrics.inc(f"transport.bytes[{pair}]", message.size)
        return True


class Network(BaseNetwork):
    """Latency/bandwidth-modelled transport over the simulated clock."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyFn,
        bandwidth: Optional[BandwidthFn] = None,
    ) -> None:
        super().__init__()
        self.scheduler = scheduler
        self._latency = latency
        self._bandwidth = bandwidth

    def one_way_delay(self, sender: str, destination: str, size: int) -> float:
        """Propagation (RTT/2) plus serialisation (size/bandwidth)."""
        delay = self._latency(sender, destination) / 2.0
        if self._bandwidth is not None:
            bits_per_second = self._bandwidth(sender, destination)
            if bits_per_second:
                delay += (size * 8) / bits_per_second
        return delay

    def rtt(self, a: str, b: str) -> float:
        return self._latency(a, b)

    def send(self, sender: str, destination: str, payload: Any,
             size: Optional[int] = None) -> None:
        """Deliver ``payload`` after the modelled delay.

        ``size`` defaults to the payload's wire-codec length (see
        :func:`payload_size`).  The destination handler is resolved at
        delivery time, so a crash (unregister) between send and delivery
        silently drops the message — exactly what a dead host does.
        """
        if size is None:
            size = payload_size(payload)
        message = Message(sender, destination, payload, size,
                          get_tracer().context)
        if not self._account_send(message):
            return
        delay = self.one_way_delay(sender, destination, size)
        self.deliver_after(delay, message)

    def deliver_after(self, delay: float, message: Message) -> None:
        """Schedule raw delivery (used by adversaries re-injecting
        messages)."""

        def deliver() -> None:
            handler = self._handlers.get(message.destination)
            if handler is not None:
                handler(message)

        self.scheduler.call_after(delay, deliver)


class InstantNetwork(BaseNetwork):
    """Zero-latency synchronous transport for protocol unit tests.

    Messages go through a FIFO: a handler that sends during delivery does
    not recurse, it appends — giving deterministic, stack-safe cascades.
    """

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[Message] = deque()
        self._draining = False
        self.delivered: List[Message] = []

    def send(self, sender: str, destination: str, payload: Any,
             size: Optional[int] = None) -> None:
        if size is None:
            size = payload_size(payload)
        message = Message(sender, destination, payload, size,
                          get_tracer().context)
        if not self._account_send(message):
            return
        self._queue.append(message)
        self._drain()

    def inject(self, message: Message) -> None:
        """Deliver a crafted/replayed message (adversary use)."""
        self._queue.append(message)
        self._drain()

    def _drain(self) -> None:
        """Deliver queued messages in FIFO order.

        A handler that raises (or an endpoint that unregisters mid-drain)
        must not wedge the network: every remaining queued message is still
        delivered, and the first failure then surfaces as a
        :class:`NetworkError` carrying the offending message — dropping it
        silently would turn a protocol bug into a phantom packet loss.
        """
        if self._draining:
            return
        self._draining = True
        first_failure: Optional[Tuple[Message, BaseException]] = None
        try:
            while self._queue:
                message = self._queue.popleft()
                handler = self._handlers.get(message.destination)
                if handler is None:
                    continue
                self.delivered.append(message)
                try:
                    handler(message)
                except Exception as exc:  # noqa: BLE001 — isolate handlers
                    if first_failure is None:
                        first_failure = (message, exc)
        finally:
            self._draining = False
        if first_failure is not None:
            message, exc = first_failure
            error = NetworkError(
                f"handler for {message.destination!r} failed on message "
                f"from {message.sender!r}: {exc}"
            )
            error.message = message
            raise error from exc
