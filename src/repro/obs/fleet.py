"""Fleet-wide telemetry: poll every daemon, keep time series, audit.

:class:`FleetMonitor` is the observer half of the audit plane (the
judge is :class:`~repro.obs.audit.InvariantAuditor`).  Each sweep it
polls every daemon over one :class:`~repro.runtime.control.AsyncControlClient`
per target — ``audit-snapshot`` (the atomic fund digest),
``metrics_stream`` (counter deltas since the previous sweep, so rates
come free), and ``health`` — and appends a point to a per-daemon ring
buffer with derived rates: payments/s, drops/s, backpressure waits/s,
reconnects.  A daemon that stops answering keeps its last-known
snapshot in the conservation sum (so a crash reads as a WARN scrape
failure, not a phantom CRITICAL deficit) and gets a fresh connection
attempt next sweep.

The monitor runs happily *concurrently with traffic and faults* — that
is the point: ``repro.load --monitor`` attaches one to the fleet it is
loading, and ``bench_live_chaos_monitor.py`` attaches one while a
:class:`~repro.faults.live.LiveFaultInjector` severs and heals links.

Intended use::

    monitor = FleetMonitor({"alice": ("127.0.0.1", 7001), ...},
                           interval=0.25)
    await monitor.start()        # background sweeps
    ... drive load / faults ...
    await monitor.stop()
    assert not monitor.auditor.critical_alerts()
    sidecar["fleet"] = monitor.to_sidecar()
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.audit import InvariantAuditor
from repro.obs.metrics import MetricsRegistry
from repro.runtime.control import AsyncControlClient, ControlError

__all__ = ["FleetMonitor", "FleetMonitorThread", "parse_targets"]


def parse_targets(specs: List[str]) -> Dict[str, Tuple[str, int]]:
    """Parse ``name=host:port`` (or bare ``host:port``) target specs."""
    targets: Dict[str, Tuple[str, int]] = {}
    for spec in specs:
        name, eq, address = spec.rpartition("=")
        host, _, port = address.rpartition(":")
        host = host or "127.0.0.1"
        if not eq:
            name = f"{host}:{port}"
        targets[name] = (host, int(port))
    return targets


class FleetMonitor:
    """Polls a fleet of daemons and feeds an :class:`InvariantAuditor`."""

    def __init__(
        self,
        targets: Dict[str, Tuple[str, int]],
        interval: float = 0.5,
        auditor: Optional[InvariantAuditor] = None,
        expected_total: Optional[int] = None,
        history: int = 512,
        metrics: Optional[MetricsRegistry] = None,
        timeout: float = 10.0,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.targets = dict(targets)
        self.interval = interval
        self.timeout = timeout
        self.auditor = auditor if auditor is not None else InvariantAuditor(
            expected_total=expected_total, metrics=metrics)
        self.metrics = metrics
        self._wall = wall
        self.sweeps = 0
        self._clients: Dict[str, AsyncControlClient] = {}
        self._series: Dict[str, Deque[Dict[str, Any]]] = {
            name: deque(maxlen=history) for name in self.targets
        }
        # Cumulative values from each daemon's previous good sweep, for
        # the derived rates.
        self._prev: Dict[str, Dict[str, Any]] = {}
        self._task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------

    async def _poll(self, name: str) -> Tuple[str, Optional[Dict[str, Any]],
                                              Optional[Dict[str, Any]],
                                              Optional[Dict[str, Any]]]:
        """One daemon's scrape; any failure drops the cached connection
        so the next sweep redials (daemons restart, routers respawn)."""
        client = self._clients.get(name)
        try:
            if client is None:
                host, port = self.targets[name]
                client = await AsyncControlClient.connect(
                    host, port, timeout=self.timeout)
                self._clients[name] = client
            snapshot = await client.call("audit-snapshot")
            delta = await client.call("metrics_stream")
            health = await client.call("health")
            return name, snapshot, delta, health
        except (ControlError, OSError, asyncio.TimeoutError):
            stale = self._clients.pop(name, None)
            if stale is not None:
                await stale.close()
            return name, None, None, None

    async def sweep(self) -> Dict[str, Any]:
        """Poll every daemon once, record points, run the auditor."""
        t = self._wall()
        results = await asyncio.gather(
            *(self._poll(name) for name in self.targets))
        snapshots: Dict[str, Optional[Dict[str, Any]]] = {}
        for name, snapshot, delta, health in results:
            snapshots[name] = snapshot
            self._record(name, t, snapshot, delta, health)
        alerts = self.auditor.audit(snapshots, t)
        self.sweeps += 1
        if self.metrics is not None:
            self.metrics.inc("fleet.sweeps")
            self.metrics.set_gauge("fleet.alerts_active", len(alerts))
            if self.auditor.last_observed is not None:
                self.metrics.set_gauge("fleet.observed_total",
                                       self.auditor.last_observed)
        return {
            "t": t,
            "observed_total": self.auditor.last_observed,
            "expected_total": self.auditor.expected_total,
            "alerts": [alert.to_dict() for alert in alerts],
            "daemons": self.latest(),
        }

    def _record(self, name: str, t: float,
                snapshot: Optional[Dict[str, Any]],
                delta: Optional[Dict[str, Any]],
                health: Optional[Dict[str, Any]]) -> None:
        point: Dict[str, Any] = {"t": t, "ok": snapshot is not None}
        if snapshot is not None:
            transport = snapshot.get("transport", {})
            prev = self._prev.get(name)
            elapsed = t - prev["t"] if prev else 0.0

            def rate(key: str, current: float) -> float:
                if not prev or elapsed <= 0:
                    return 0.0
                return max(0.0, (current - prev.get(key, current)) / elapsed)

            sent = snapshot.get("payments_sent", 0)
            received = snapshot.get("payments_received", 0)
            drops = (transport.get("drops_protocol", 0)
                     + transport.get("drops_control", 0))
            waits = transport.get("backpressure_waits", 0)
            point.update({
                "tx_s": round(rate("payments_sent", sent), 3),
                "rx_s": round(rate("payments_received", received), 3),
                "drops_s": round(rate("drops", drops), 3),
                "backpressure_s": round(rate("backpressure_waits",
                                             waits), 3),
                "reconnects": transport.get("reconnects", 0),
                "disconnected": transport.get("disconnected", 0),
                "queued": transport.get("queued", 0),
                "onchain": snapshot.get("onchain", 0),
                "channels": len(snapshot.get("channels", {})),
                "outbox_pending": snapshot.get("outbox_pending", 0),
            })
            hub = snapshot.get("hub")
            if hub is not None:
                point["hub_liabilities"] = hub.get("liabilities", 0)
                point["hub_payout_pending"] = hub.get("payout_pending", 0)
            self._prev[name] = {
                "t": t, "payments_sent": sent,
                "payments_received": received,
                "drops": drops, "backpressure_waits": waits,
            }
        if delta is not None and delta.get("counters"):
            # Raw counter deltas this sweep — the fine-grained series
            # the sidecar keeps for trend tooling.
            point["counters"] = delta["counters"]
        if health is not None:
            point["status"] = health.get("status")
        self._series[name].append(point)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Begin background sweeps on the running event loop."""
        if self._task is not None:
            return
        self._stopping = asyncio.Event()
        self._task = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        while not self._stopping.is_set():
            await self.sweep()
            try:
                await asyncio.wait_for(self._stopping.wait(),
                                       self.interval)
            except asyncio.TimeoutError:
                pass

    async def stop(self, final_sweep: bool = True) -> None:
        """Stop background sweeps; by default take one last sweep so
        the log reflects the fleet's settled end state."""
        if self._task is not None:
            self._stopping.set()
            await self._task
            self._task = None
        if final_sweep:
            await self.sweep()
        await self.close()

    async def close(self) -> None:
        clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            await client.close()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def series(self, name: str) -> List[Dict[str, Any]]:
        return list(self._series.get(name, ()))

    def latest(self) -> Dict[str, Dict[str, Any]]:
        return {name: buffer[-1]
                for name, buffer in self._series.items() if buffer}

    async def prometheus(self, prefix: str = "repro_") -> str:
        """One 0.0.4 exposition for the whole fleet: every daemon's
        registry merged, samples labelled ``node=...``, one ``# TYPE``
        per family."""
        from repro.obs.export import fleet_prometheus_text

        node_snapshots: Dict[str, Dict[str, Any]] = {}
        for name in self.targets:
            response = None
            client = self._clients.get(name)
            try:
                if client is None:
                    host, port = self.targets[name]
                    client = await AsyncControlClient.connect(
                        host, port, timeout=self.timeout)
                    self._clients[name] = client
                response = await client.call("metrics")
            except (ControlError, OSError, asyncio.TimeoutError):
                stale = self._clients.pop(name, None)
                if stale is not None:
                    await stale.close()
            if response is not None:
                node_snapshots[name] = response.get("metrics", {})
        return fleet_prometheus_text(node_snapshots, prefix=prefix)

    def to_sidecar(self) -> Dict[str, Any]:
        """The benchmark artifact: per-daemon rate series + audit log."""
        return {
            "interval": self.interval,
            "sweeps": self.sweeps,
            "targets": {name: f"{host}:{port}"
                        for name, (host, port) in self.targets.items()},
            "daemons": {name: self.series(name) for name in self.targets},
            "audit": self.auditor.summary(),
        }


class FleetMonitorThread:
    """A :class:`FleetMonitor` on its own thread and event loop.

    Drivers like ``repro.load smoke`` and the chaos benchmark mix
    blocking :class:`~repro.runtime.control.ControlClient` calls with
    separate ``asyncio.run`` segments — there is no single long-lived
    loop to mount the monitor on.  This wrapper gives the monitor a
    dedicated loop so it sweeps continuously while the driver does
    whatever it wants on the main thread.

    Use as a context manager; after exit (one final sweep taken) the
    underlying monitor is available for assertions and the sidecar::

        with FleetMonitorThread(targets, interval=0.25) as monitored:
            ... drive load / faults ...
        assert not monitored.monitor.auditor.critical_alerts()
    """

    def __init__(self, targets: Dict[str, Tuple[str, int]],
                 interval: float = 0.25,
                 expected_total: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._targets = dict(targets)
        self._interval = interval
        self._expected_total = expected_total
        self._metrics = metrics
        self.monitor: Optional[FleetMonitor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-monitor", daemon=True)

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.monitor = FleetMonitor(
            self._targets, interval=self._interval,
            expected_total=self._expected_total, metrics=self._metrics)
        await self.monitor.start()
        self._ready.set()
        await self._stop.wait()
        await self.monitor.stop()

    def start(self) -> "FleetMonitorThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("fleet monitor thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "FleetMonitorThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
