"""Structured trace events on the simulated clock.

A :class:`Tracer` holds a bounded ring of ``(time, name, fields)`` events.
Time comes from a bound clock callable — benchmarks bind the DES clock so
every event is stamped with *simulated* seconds, not wall-clock.  When the
ring overflows, the oldest events are dropped and counted, never raised:
tracing must not perturb the run it observes.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = ["Tracer", "NullTracer", "NO_TRACE", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 8192

TraceEvent = Tuple[float, str, Dict[str, Any]]


def _zero() -> float:
    return 0.0


class Tracer:
    """Bounded ring buffer of structured events."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 now: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._now = now if now is not None else _zero
        self.emitted = 0

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Stamp subsequent events with ``now()`` — benchmarks bind the
        simulated clock here (the last binder wins; one simulation is
        traced at a time)."""
        self._now = now

    def now(self) -> float:
        return self._now()

    def emit(self, name: str, **fields: Any) -> None:
        """Record one event at the current (simulated) time."""
        self.emitted += 1
        self._events.append((self._now(), name, fields))

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Emit ``name`` on exit with the elapsed simulated ``duration``.

        Useful around scheduler-driven sections: the duration is simulated
        seconds, so a span around ``scheduler.run()`` measures makespan."""
        start = self._now()
        try:
            yield
        finally:
            self.emit(name, duration=self._now() - start, **fields)

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return self.emitted - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first, as JSON-ready dicts."""
        return [
            {"t": time, "event": name, **fields}
            for time, name, fields in self._events
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (f"Tracer(events={len(self._events)}/{self.capacity}, "
                f"dropped={self.dropped})")


class NullTracer(Tracer):
    """The module-level default: events vanish, spans still nest."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def bind_clock(self, now: Callable[[], float]) -> None:
        pass

    def emit(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        yield


NO_TRACE = NullTracer()
