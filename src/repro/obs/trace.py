"""Structured trace events on the simulated clock.

A :class:`Tracer` holds a bounded ring of ``(time, name, fields)`` events.
Time comes from a bound clock callable — benchmarks bind the DES clock so
every event is stamped with *simulated* seconds, not wall-clock.  When the
ring overflows, the oldest events are dropped and counted, never raised:
tracing must not perturb the run it observes.

Causal tracing rides on top: a tracer carries at most one *active*
:class:`~repro.obs.context.TraceContext`.  While a context is active,
every event and span is stamped with ``trace``/``span``/``parent``
fields, and :meth:`span` derives a child context for its body so nested
work chains causally.  Message receive paths :meth:`activate` the
context carried on the wire; send paths read :attr:`context` to attach
it to outgoing messages.  With no active context (the default) events
keep their original untagged shape and nothing is allocated.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs.context import TraceContext

__all__ = ["Tracer", "NullTracer", "NO_TRACE", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 8192

TraceEvent = Tuple[float, str, Dict[str, Any]]


def _zero() -> float:
    return 0.0


class Tracer:
    """Bounded ring buffer of structured events."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 now: Optional[Callable[[], float]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._now = now if now is not None else _zero
        self.emitted = 0
        self._context: Optional[TraceContext] = None

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Stamp subsequent events with ``now()`` — benchmarks bind the
        simulated clock here (the last binder wins; one simulation is
        traced at a time)."""
        self._now = now

    def now(self) -> float:
        return self._now()

    def emit(self, name: str, **fields: Any) -> None:
        """Record one event at the current (simulated) time.  While a
        context is active the event is stamped with its causal triple."""
        self.emitted += 1
        context = self._context
        if context is not None:
            fields.setdefault("trace", context.trace_id)
            fields.setdefault("span", context.span_id)
            fields.setdefault("parent", context.parent_id)
        self._events.append((self._now(), name, fields))

    # -- causal context ----------------------------------------------------

    @property
    def context(self) -> Optional[TraceContext]:
        """The active causal context, or ``None`` when untraced."""
        return self._context

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Make ``context`` active for the block (receive-side hook).

        ``None`` leaves the current context in place, so call sites can
        pass whatever rode the message without a branch."""
        previous = self._context
        if context is not None:
            self._context = context
        try:
            yield
        finally:
            self._context = previous

    @contextmanager
    def root_span(self, name: str, **fields: Any) -> Iterator[TraceContext]:
        """Start a fresh trace: a new root context is active for the body
        and the span event is emitted on exit.  Use at trace origins —
        user-initiated payments, multihop route setup."""
        previous = self._context
        self._context = TraceContext.root()
        start = self._now()
        try:
            yield self._context
        finally:
            try:
                self.emit(name, duration=self._now() - start, **fields)
            finally:
                self._context = previous

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Optional[TraceContext]]:
        """Emit ``name`` on exit with the elapsed simulated ``duration``.

        Useful around scheduler-driven sections: the duration is simulated
        seconds, so a span around ``scheduler.run()`` measures makespan.
        While a context is active, the body runs under a derived *child*
        context and the exit event carries the child's causal triple."""
        start = self._now()
        parent = self._context
        if parent is not None:
            self._context = parent.child()
        try:
            yield self._context
        finally:
            try:
                self.emit(name, duration=self._now() - start, **fields)
            finally:
                self._context = parent

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return self.emitted - len(self._events)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first, as JSON-ready dicts."""
        return [
            {"t": time, "event": name, **fields}
            for time, name, fields in self._events
        ]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (f"Tracer(events={len(self._events)}/{self.capacity}, "
                f"dropped={self.dropped})")


class NullTracer(Tracer):
    """The module-level default: events vanish, spans still nest."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def bind_clock(self, now: Callable[[], float]) -> None:
        pass

    def emit(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        yield

    @contextmanager
    def root_span(self, name: str, **fields: Any) -> Iterator[None]:
        yield

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        yield


NO_TRACE = NullTracer()
