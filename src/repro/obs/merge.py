"""Merge per-node trace dumps into one skew-corrected causal timeline.

Each daemon's tracer stamps events with *its own* clock — a
``WallClockScheduler`` whose zero is the process start, so two daemons'
timestamps are offset by their boot skew.  The peer handshake carries an
NTP-style timestamp exchange (``Hello.t_sent`` /
``HelloAck.t_echo,t_received,t_sent``) from which each connecting daemon
estimates ``peer_clock − my_clock`` per peer; those estimates arrive
here inside :meth:`TelemetryCollector.trace_dump` payloads.

:func:`merge_dumps` chains the pairwise estimates from a reference node
outward (the offset graph of a connected mesh reaches every node),
rewrites every event onto the reference clock, and sorts the result into
one timeline.  Residual estimation error can still leave a child span
starting microseconds before its parent; the merge clamps such starts to
the parent's (counting how often), so the output is causally monotone by
construction and a non-zero clamp count is itself a skew-quality signal.

Run as a tool::

    python -m repro.obs.merge dump_a.json dump_b.json \
        -o merged.json --perfetto trace.json

and as the CI schema gate::

    python -m repro.obs.merge --validate-perfetto trace.json \
        --schema benchmarks/perfetto_trace.schema.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.export import chrome_trace, dump_json, load_json

__all__ = ["estimate_offset", "merge_dumps", "validate_perfetto", "main"]


def estimate_offset(t_sent: float, t_echo: float, t_received: float,
                    t_ack_sent: float, t_ack_received: float) -> float:
    """NTP-style clock offset of the responder relative to the requester.

    ``t_sent``/``t_ack_received`` are requester-clock stamps around the
    round trip; ``t_received``/``t_ack_sent`` the responder-clock stamps
    inside it (``t_echo`` is the echoed ``t_sent``, letting the requester
    stay stateless).  Positive means the responder's clock reads ahead.
    """
    outbound = t_received - t_echo
    inbound = t_ack_sent - t_ack_received
    return (outbound + inbound) / 2.0


def _resolve_deltas(dumps: List[Dict[str, Any]],
                    reference: str) -> Dict[str, float]:
    """Per-node correction ``delta`` such that ``t_ref = t_node + delta``.

    Breadth-first over the handshake-offset graph from the reference;
    nodes the graph does not reach fall back to wall-clock alignment
    (every dump records its wall/local clock pair at dump time).
    """
    offsets: Dict[str, Dict[str, float]] = {}
    for dump in dumps:
        node = dump["node"]
        for peer, offset in dump.get("peer_offsets", {}).items():
            # offset = peer_clock − node_clock; store both directions.
            offsets.setdefault(node, {})[peer] = offset
            offsets.setdefault(peer, {}).setdefault(node, -offset)

    deltas: Dict[str, float] = {reference: 0.0}
    queue = deque([reference])
    while queue:
        node = queue.popleft()
        for peer, offset in offsets.get(node, {}).items():
            if peer in deltas:
                continue
            # t_node = t_peer − offset  ⇒  delta_peer = delta_node − offset
            deltas[peer] = deltas[node] - offset
            queue.append(peer)

    wall_anchor: Dict[str, float] = {
        dump["node"]: dump.get("wall", 0.0) - dump.get("now", 0.0)
        for dump in dumps
    }
    for dump in dumps:
        node = dump["node"]
        if node not in deltas:
            deltas[node] = (wall_anchor.get(node, 0.0)
                            - wall_anchor.get(reference, 0.0))
    return deltas


def merge_dumps(dumps: Iterable[Dict[str, Any]],
                reference: Optional[str] = None) -> Dict[str, Any]:
    """Assemble per-node :meth:`trace_dump` payloads into one timeline.

    Returns ``{"reference", "offsets", "nodes", "clamped", "dropped",
    "events"}`` where every event carries its ``node``, a skew-corrected
    end time ``t``, and a causally clamped ``start``.
    """
    dumps = list(dumps)
    if not dumps:
        return {"reference": None, "offsets": {}, "nodes": [],
                "clamped": 0, "dropped": 0, "events": []}
    if reference is None:
        reference = dumps[0]["node"]
    deltas = _resolve_deltas(dumps, reference)

    events: List[Dict[str, Any]] = []
    dropped = 0
    for dump in dumps:
        node = dump["node"]
        delta = deltas[node]
        dropped += dump.get("dropped", 0)
        for event in dump.get("events", []):
            merged = dict(event)
            end = float(merged.get("t", 0.0)) + delta
            duration = merged.get("duration")
            raw_start = merged.get("start")
            merged["t"] = end
            if raw_start is not None:
                # The emitter recorded its exact begin (same clock as
                # ``t``); trust it over ``t − duration``, which drifts by
                # the microseconds between clock reads inside emit().
                merged["start"] = float(raw_start) + delta
            else:
                merged["start"] = end - duration if duration else end
            merged["node"] = node
            events.append(merged)

    # Causal clamp: a child span must not start before its parent.  The
    # fixpoint walks parent chains with memoisation, so grandchildren see
    # their parent's already-clamped start.
    by_span: Dict[str, Dict[str, Any]] = {}
    for event in events:
        span_id = event.get("span")
        if span_id:
            by_span.setdefault(span_id, event)
    clamped = 0
    resolved: Dict[str, float] = {}

    def clamped_start(event: Dict[str, Any]) -> float:
        span_id = event.get("span")
        if span_id and span_id in resolved:
            return resolved[span_id]
        start = float(event["start"])
        parent_id = event.get("parent")
        parent = by_span.get(parent_id) if parent_id else None
        if parent is not None and parent is not event:
            floor = clamped_start(parent)
            if start < floor:
                start = floor
        if span_id:
            resolved[span_id] = start
        return start

    for event in events:
        start = clamped_start(event)
        if start != event["start"]:
            clamped += 1
            event["start"] = start
            if event["t"] < start:
                event["t"] = start

    events.sort(key=lambda event: (event["start"], event["t"]))
    return {
        "reference": reference,
        "offsets": deltas,
        "nodes": sorted(dump["node"] for dump in dumps),
        "clamped": clamped,
        "dropped": dropped,
        "events": events,
    }


# ---------------------------------------------------------------------------
# Minimal JSON-schema validation (stdlib-only: CI gates the Perfetto
# export against a checked-in schema without a jsonschema dependency).
# ---------------------------------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "number": lambda value: (isinstance(value, (int, float))
                             and not isinstance(value, bool)),
    "integer": lambda value: (isinstance(value, int)
                              and not isinstance(value, bool)),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def validate_perfetto(payload: Any, schema: Dict[str, Any],
                      path: str = "$") -> List[str]:
    """Validate ``payload`` against the subset of JSON Schema the
    checked-in trace schema uses (type/required/properties/items/enum).
    Returns a list of error strings — empty means valid."""
    errors: List[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS.get(t, lambda _v: True)(payload)
                   for t in types):
            errors.append(
                f"{path}: expected {expected}, got {type(payload).__name__}")
            return errors
    if "enum" in schema and payload not in schema["enum"]:
        errors.append(f"{path}: {payload!r} not in {schema['enum']!r}")
    if isinstance(payload, dict):
        for key in schema.get("required", []):
            if key not in payload:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in payload:
                errors.extend(validate_perfetto(
                    payload[key], subschema, f"{path}.{key}"))
    if isinstance(payload, list) and "items" in schema:
        for index, item in enumerate(payload):
            errors.extend(validate_perfetto(
                item, schema["items"], f"{path}[{index}]"))
    return errors


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _load_dumps(paths: List[str]) -> List[Dict[str, Any]]:
    dumps: List[Dict[str, Any]] = []
    for path in paths:
        payload = load_json(path)
        if "dumps" in payload:
            dumps.extend(payload["dumps"])
        else:
            dumps.append(payload)
    return dumps


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.merge",
        description=("Merge per-daemon trace dumps into one skew-corrected "
                     "timeline, or validate a Perfetto export."),
    )
    parser.add_argument("dumps", nargs="*",
                        help="trace_dump JSON files (or {'dumps': [...]})")
    parser.add_argument("-o", "--output",
                        help="write the merged timeline JSON here")
    parser.add_argument("--perfetto",
                        help="also write Chrome trace-event JSON here")
    parser.add_argument("--reference",
                        help="node whose clock anchors the timeline")
    parser.add_argument("--validate-perfetto", metavar="TRACE",
                        help="validate an existing Perfetto JSON and exit")
    parser.add_argument("--schema",
                        help="JSON schema for --validate-perfetto")
    args = parser.parse_args(argv)

    if args.validate_perfetto:
        if not args.schema:
            parser.error("--validate-perfetto requires --schema")
        errors = validate_perfetto(load_json(args.validate_perfetto),
                                   load_json(args.schema))
        for error in errors:
            print(f"schema violation: {error}", file=sys.stderr)
        print(f"{args.validate_perfetto}: "
              f"{'INVALID' if errors else 'valid'}")
        return 1 if errors else 0

    if not args.dumps:
        parser.error("no trace dumps given")
    merged = merge_dumps(_load_dumps(args.dumps), reference=args.reference)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump_json(merged))
            handle.write("\n")
    if args.perfetto:
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace(merged["events"]), handle, indent=2)
            handle.write("\n")
    print(f"merged {len(merged['events'])} events from "
          f"{len(merged['nodes'])} nodes "
          f"(reference={merged['reference']}, clamped={merged['clamped']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
