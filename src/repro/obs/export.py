"""JSON export: the machine-readable sidecar next to every benchmark table.

Convention (see ROADMAP.md): a benchmark that prints a paper-vs-measured
table also writes ``BENCH_<name>.json`` beside itself with the measured
rows under ``"results"`` and the full metrics snapshot under
``"metrics"`` (plus ``"trace"`` when tracing was on).  Downstream perf
PRs diff those sidecars instead of re-parsing printed tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["build_payload", "dump_json", "export_json", "load_json"]


def build_payload(metrics: Optional[MetricsRegistry] = None,
                  tracer: Optional[Tracer] = None,
                  extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the sidecar dict: ``extra`` rows first, then the metrics
    snapshot and trace events."""
    payload: Dict[str, Any] = dict(extra) if extra else {}
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    if tracer is not None:
        payload["trace"] = {
            "events": tracer.events(),
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        }
    return payload


def dump_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, default=_coerce)


def export_json(path: str,
                metrics: Optional[MetricsRegistry] = None,
                tracer: Optional[Tracer] = None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write the sidecar to ``path`` and return the payload."""
    payload = build_payload(metrics=metrics, tracer=tracer, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_json(payload))
        handle.write("\n")
    return payload


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _coerce(value: Any) -> Any:
    """Last-resort serialiser: sets become sorted lists, everything else
    its repr — a sidecar write must never crash a benchmark."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)
