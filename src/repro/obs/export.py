"""Exporters: JSON sidecars, Chrome/Perfetto traces, Prometheus text.

Convention (see ROADMAP.md): a benchmark that prints a paper-vs-measured
table also writes ``BENCH_<name>.json`` beside itself with the measured
rows under ``"results"`` and the full metrics snapshot under
``"metrics"`` (plus ``"trace"`` when tracing was on).  Downstream perf
PRs diff those sidecars instead of re-parsing printed tables.

Two further formats target external tooling:

* :func:`chrome_trace` renders trace events as the Chrome trace-event
  JSON that Perfetto / ``chrome://tracing`` load directly — duration
  events (``ph: "X"``) per span, one named process row per node.
* :func:`prometheus_text` renders a metrics snapshot in the Prometheus
  text exposition format, so a scrape of a daemon's telemetry plane
  drops into any existing dashboard.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "build_payload",
    "chrome_trace",
    "dump_json",
    "export_json",
    "load_json",
    "prometheus_text",
]


def build_payload(metrics: Optional[MetricsRegistry] = None,
                  tracer: Optional[Tracer] = None,
                  extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the sidecar dict: ``extra`` rows first, then the metrics
    snapshot and trace events."""
    payload: Dict[str, Any] = dict(extra) if extra else {}
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    if tracer is not None:
        payload["trace"] = {
            "events": tracer.events(),
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        }
    return payload


def dump_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, default=_coerce)


def export_json(path: str,
                metrics: Optional[MetricsRegistry] = None,
                tracer: Optional[Tracer] = None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write the sidecar to ``path`` and return the payload."""
    payload = build_payload(metrics=metrics, tracer=tracer, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_json(payload))
        handle.write("\n")
    return payload


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _coerce(value: Any) -> Any:
    """Last-resort serialiser: sets become sorted lists, everything else
    its repr — a sidecar write must never crash a benchmark."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ---------------------------------------------------------------------------

_META_KEYS = frozenset(
    ("t", "start", "event", "duration", "trace", "span", "parent", "node"))


def chrome_trace(events: Iterable[Dict[str, Any]],
                 default_node: str = "main") -> Dict[str, Any]:
    """Render trace events as Chrome trace-event JSON (Perfetto-loadable).

    ``events`` are the dicts produced by :meth:`Tracer.events` or
    :func:`repro.obs.merge.merge_dumps`: ``t`` is the event's (end)
    timestamp in seconds; events with a ``duration`` become complete
    duration events (``ph: "X"``), the rest instants (``ph: "i"``).
    Each distinct ``node`` field becomes a named process row.
    """
    pids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        node = event.get("node", default_node)
        pid = pids.get(node)
        if pid is None:
            pid = pids[node] = len(pids) + 1
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
        duration = event.get("duration")
        end = float(event.get("t", 0.0))
        start = float(event.get(
            "start", end - duration if duration else end))
        args = {key: value for key, value in event.items()
                if key not in _META_KEYS}
        for key in ("trace", "span", "parent"):
            if event.get(key):
                args[key] = event[key]
        record: Dict[str, Any] = {
            "name": str(event.get("event", "?")),
            "cat": str(event.get("event", "?")).split(".", 1)[0],
            "pid": pid,
            "tid": 0,
            "ts": start * 1e6,  # trace-event timestamps are microseconds
            "args": args,
        }
        if duration is not None:
            record["ph"] = "X"
            record["dur"] = float(duration) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_WITH_LABEL = re.compile(r"^(?P<base>[^\[]+)\[(?P<label>.*)\]$")


def _prom_name(name: str) -> str:
    """A repro metric name as a valid Prometheus metric name."""
    return _INVALID_METRIC_CHARS.sub("_", name)


def _prom_split(name: str) -> "tuple[str, str]":
    """Split ``base[label]`` names into ``(metric, label-clause)`` —
    the bracket convention used across the codebase maps onto one
    ``key=`` label."""
    match = _NAME_WITH_LABEL.match(name)
    if not match:
        return _prom_name(name), ""
    label = match.group("label").replace("\\", "\\\\").replace('"', '\\"')
    return _prom_name(match.group("base")), f'{{key="{label}"}}'


def prometheus_text(snapshot: Dict[str, Dict[str, Any]],
                    prefix: str = "repro_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in the Prometheus text
    exposition format (version 0.0.4)."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def header(metric: str, kind: str) -> None:
        if typed.get(metric) != kind:
            typed[metric] = kind
            lines.append(f"# TYPE {metric} {kind}")

    for name, value in snapshot.get("counters", {}).items():
        metric, labels = _prom_split(name)
        metric = f"{prefix}{metric}_total"
        header(metric, "counter")
        lines.append(f"{metric}{labels} {value}")
    for name, gauge in snapshot.get("gauges", {}).items():
        metric, labels = _prom_split(name)
        metric = f"{prefix}{metric}"
        header(metric, "gauge")
        lines.append(f"{metric}{labels} {gauge['value']}")
    for name, histogram in snapshot.get("histograms", {}).items():
        metric, labels = _prom_split(name)
        metric = f"{prefix}{metric}"
        header(metric, "histogram")
        key = labels[1:-1] + "," if labels else ""
        cumulative = 0
        for bound, count in zip(histogram["bounds"], histogram["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{{key}le="{bound}"}} {cumulative}')
        cumulative += histogram["counts"][len(histogram["bounds"])]
        lines.append(f'{metric}_bucket{{{key}le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum{labels} {histogram['sum']}")
        lines.append(f"{metric}_count{labels} {histogram['count']}")
    return "\n".join(lines) + "\n"
