"""Exporters: JSON sidecars, Chrome/Perfetto traces, Prometheus text.

Convention (see ROADMAP.md): a benchmark that prints a paper-vs-measured
table also writes ``BENCH_<name>.json`` beside itself with the measured
rows under ``"results"`` and the full metrics snapshot under
``"metrics"`` (plus ``"trace"`` when tracing was on).  Downstream perf
PRs diff those sidecars instead of re-parsing printed tables.

Two further formats target external tooling:

* :func:`chrome_trace` renders trace events as the Chrome trace-event
  JSON that Perfetto / ``chrome://tracing`` load directly — duration
  events (``ph: "X"``) per span, one named process row per node.
* :func:`prometheus_text` renders a metrics snapshot in the Prometheus
  text exposition format, so a scrape of a daemon's telemetry plane
  drops into any existing dashboard.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "build_payload",
    "chrome_trace",
    "dump_json",
    "export_json",
    "fleet_prometheus_text",
    "load_json",
    "prometheus_text",
]


def build_payload(metrics: Optional[MetricsRegistry] = None,
                  tracer: Optional[Tracer] = None,
                  extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble the sidecar dict: ``extra`` rows first, then the metrics
    snapshot and trace events."""
    payload: Dict[str, Any] = dict(extra) if extra else {}
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    if tracer is not None:
        payload["trace"] = {
            "events": tracer.events(),
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        }
    return payload


def dump_json(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, default=_coerce)


def export_json(path: str,
                metrics: Optional[MetricsRegistry] = None,
                tracer: Optional[Tracer] = None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write the sidecar to ``path`` and return the payload."""
    payload = build_payload(metrics=metrics, tracer=tracer, extra=extra)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_json(payload))
        handle.write("\n")
    return payload


def load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _coerce(value: Any) -> Any:
    """Last-resort serialiser: sets become sorted lists, everything else
    its repr — a sidecar write must never crash a benchmark."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return repr(value)


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ---------------------------------------------------------------------------

_META_KEYS = frozenset(
    ("t", "start", "event", "duration", "trace", "span", "parent", "node"))


def chrome_trace(events: Iterable[Dict[str, Any]],
                 default_node: str = "main") -> Dict[str, Any]:
    """Render trace events as Chrome trace-event JSON (Perfetto-loadable).

    ``events`` are the dicts produced by :meth:`Tracer.events` or
    :func:`repro.obs.merge.merge_dumps`: ``t`` is the event's (end)
    timestamp in seconds; events with a ``duration`` become complete
    duration events (``ph: "X"``), the rest instants (``ph: "i"``).
    Each distinct ``node`` field becomes a named process row.
    """
    pids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        node = event.get("node", default_node)
        pid = pids.get(node)
        if pid is None:
            pid = pids[node] = len(pids) + 1
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
        duration = event.get("duration")
        end = float(event.get("t", 0.0))
        start = float(event.get(
            "start", end - duration if duration else end))
        args = {key: value for key, value in event.items()
                if key not in _META_KEYS}
        for key in ("trace", "span", "parent"):
            if event.get(key):
                args[key] = event[key]
        record: Dict[str, Any] = {
            "name": str(event.get("event", "?")),
            "cat": str(event.get("event", "?")).split(".", 1)[0],
            "pid": pid,
            "tid": 0,
            "ts": start * 1e6,  # trace-event timestamps are microseconds
            "args": args,
        }
        if duration is not None:
            record["ph"] = "X"
            record["dur"] = float(duration) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
# DOTALL + \Z: a label value may contain newlines (escaped on output),
# and $ would also match just before a trailing one.
_NAME_WITH_LABEL = re.compile(r"^(?P<base>[^\[]+)\[(?P<label>.*)\]\Z",
                              re.DOTALL)


def _prom_name(name: str) -> str:
    """A repro metric name as a valid Prometheus metric name."""
    return _INVALID_METRIC_CHARS.sub("_", name)


def _escape_label(value: str) -> str:
    """Escape a label value per the 0.0.4 exposition rules: backslash,
    double quote, and line feed."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _prom_split(name: str) -> "tuple[str, str]":
    """Split ``base[label]`` names into ``(metric, label-clause)`` —
    the bracket convention used across the codebase maps onto one
    ``key=`` label."""
    match = _NAME_WITH_LABEL.match(name)
    if not match:
        return _prom_name(name), ""
    return (_prom_name(match.group("base")),
            f'{{key="{_escape_label(match.group("label"))}"}}')


def prometheus_text(snapshot: Dict[str, Dict[str, Any]],
                    prefix: str = "repro_",
                    extra_labels: str = "") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in the Prometheus text
    exposition format (version 0.0.4).

    The format requires every sample of a metric family in one
    contiguous group under a single ``# TYPE`` line, but snapshot dicts
    interleave families (``pay[a]``, ``other``, ``pay[b]`` are three
    keys, two families) — so samples are bucketed per family first and
    families emitted whole.  ``extra_labels`` (e.g. ``node="alice"``,
    already escaped) is prepended to every sample's label set; the
    fleet aggregator uses it to merge per-daemon snapshots into one
    exposition without family-name collisions.
    """
    # family name → {"kind", "lines"}; insertion-ordered so output is
    # deterministic for a given snapshot.
    families: Dict[str, Dict[str, Any]] = {}

    def resolve(metric: str, kind: str) -> str:
        """Claim ``metric`` for ``kind``; on a cross-kind name clash
        (a gauge and a histogram sharing a base name) suffix the later
        family rather than emit two ``# TYPE`` lines for one name."""
        entry = families.get(metric)
        if entry is None:
            families[metric] = {"kind": kind, "lines": []}
            return metric
        if entry["kind"] != kind:
            return resolve(f"{metric}_{kind}", kind)
        return metric

    def merge_labels(labels: str) -> str:
        if not extra_labels:
            return labels
        if not labels:
            return f"{{{extra_labels}}}"
        return f"{{{extra_labels},{labels[1:-1]}}}"

    for name, value in snapshot.get("counters", {}).items():
        metric, labels = _prom_split(name)
        metric = resolve(f"{prefix}{metric}_total", "counter")
        families[metric]["lines"].append(
            f"{metric}{merge_labels(labels)} {value}")
    for name, gauge in snapshot.get("gauges", {}).items():
        metric, labels = _prom_split(name)
        metric = resolve(f"{prefix}{metric}", "gauge")
        families[metric]["lines"].append(
            f"{metric}{merge_labels(labels)} {gauge['value']}")
    for name, histogram in snapshot.get("histograms", {}).items():
        metric, labels = _prom_split(name)
        metric = resolve(f"{prefix}{metric}", "histogram")
        labels = merge_labels(labels)
        key = labels[1:-1] + "," if labels else ""
        samples = families[metric]["lines"]
        cumulative = 0
        for bound, count in zip(histogram["bounds"], histogram["counts"]):
            cumulative += count
            samples.append(
                f'{metric}_bucket{{{key}le="{bound}"}} {cumulative}')
        cumulative += histogram["counts"][len(histogram["bounds"])]
        samples.append(f'{metric}_bucket{{{key}le="+Inf"}} {cumulative}')
        samples.append(f"{metric}_sum{labels} {histogram['sum']}")
        samples.append(f"{metric}_count{labels} {histogram['count']}")

    lines: List[str] = []
    for metric, entry in families.items():
        lines.append(f"# TYPE {metric} {entry['kind']}")
        lines.extend(entry["lines"])
    return "\n".join(lines) + "\n"


def fleet_prometheus_text(node_snapshots: Dict[str, Dict[str, Any]],
                          prefix: str = "repro_") -> str:
    """Merge per-daemon metric snapshots into one 0.0.4 exposition.

    Every sample gains a ``node="<name>"`` label; samples from all
    nodes are regrouped so each family still appears exactly once with
    a single ``# TYPE`` line — concatenating per-node expositions would
    repeat every family header, which the format forbids."""
    families: Dict[str, Dict[str, Any]] = {}
    for node, snapshot in node_snapshots.items():
        text = prometheus_text(
            snapshot, prefix=prefix,
            extra_labels=f'node="{_escape_label(node)}"')
        family = None
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, metric, kind = line.split(" ")
                family = families.setdefault(
                    metric, {"kind": kind, "lines": []})
                continue
            if family is not None and line:
                family["lines"].append(line)
    lines: List[str] = []
    for metric, entry in sorted(families.items()):
        lines.append(f"# TYPE {metric} {entry['kind']}")
        lines.extend(entry["lines"])
    return "\n".join(lines) + "\n"
