"""Observability for the DES core: metrics, trace events, JSON export.

Three pieces (paper-independent infrastructure; see DESIGN.md §5):

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms, O(1) per record.
* :class:`~repro.obs.trace.Tracer` — a bounded ring of structured events
  (:meth:`emit`, :meth:`span`) stamped with *simulated* time.
* :mod:`~repro.obs.export` — the ``BENCH_*.json`` sidecar writer.

The module-level default for both is a shared no-op (:data:`NOOP`,
:data:`NO_TRACE`): instrumented code calls :func:`get_metrics` /
:func:`get_tracer` at construction time and pays one attribute check per
record when observability is off.  Benchmarks turn collection on with::

    with obs.collecting() as (registry, tracer):
        result = NetworkSimulation(config).run()
    export_json("BENCH_run.json", metrics=registry, tracer=tracer)

``collecting`` installs a fresh registry/tracer as the module default for
the duration of the block and restores the previous ones after, so
nested or sequential collections never bleed into each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Tuple

from repro.obs.audit import (
    ALERT_CODES,
    CRITICAL,
    WARN,
    Alert,
    InvariantAuditor,
)
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.export import (
    build_payload,
    chrome_trace,
    dump_json,
    export_json,
    fleet_prometheus_text,
    load_json,
    prometheus_text,
)

# NOTE: FleetMonitor lives in repro.obs.fleet and is imported from there
# directly — it pulls in repro.runtime (the control client), which this
# package must not import at init time (runtime's codec imports
# repro.obs.context back).
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    exponential_buckets,
    linear_buckets,
    nearest_rank,
    summarize_samples,
)
from repro.obs.trace import DEFAULT_CAPACITY, NO_TRACE, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "Tracer",
    "NOOP",
    "NO_TRACE",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "linear_buckets",
    "exponential_buckets",
    "nearest_rank",
    "summarize_samples",
    "get_metrics",
    "set_metrics",
    "get_tracer",
    "set_tracer",
    "collecting",
    "emit",
    "span",
    "op_span",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "build_payload",
    "chrome_trace",
    "dump_json",
    "export_json",
    "load_json",
    "prometheus_text",
    "fleet_prometheus_text",
    "Alert",
    "InvariantAuditor",
    "ALERT_CODES",
    "WARN",
    "CRITICAL",
]

_metrics: MetricsRegistry = NOOP
_tracer: Tracer = NO_TRACE


def get_metrics() -> MetricsRegistry:
    """The currently installed registry (the shared no-op by default)."""
    return _metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the module default; returns the previous
    one so callers can restore it."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def collecting(
    capacity: int = DEFAULT_CAPACITY,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """Install a fresh registry and tracer for the duration of the block."""
    registry = metrics if metrics is not None else MetricsRegistry()
    trace = tracer if tracer is not None else Tracer(capacity=capacity)
    previous_metrics = set_metrics(registry)
    previous_tracer = set_tracer(trace)
    try:
        yield registry, trace
    finally:
        set_metrics(previous_metrics)
        set_tracer(previous_tracer)


def emit(name: str, **fields: Any) -> None:
    """Emit a trace event into the current tracer (no-op by default)."""
    _tracer.emit(name, **fields)


def span(name: str, **fields: Any):
    """Span context manager on the current tracer (no-op by default)."""
    return _tracer.span(name, **fields)


def op_span(name: str, **fields: Any):
    """Span for a user-initiated operation: starts a *new trace* when no
    context is active (a payment issued at this node becomes a trace
    root), otherwise nests as a child span.  No-op when tracing is off."""
    if _tracer.context is None:
        return _tracer.root_span(name, **fields)
    return _tracer.span(name, **fields)
