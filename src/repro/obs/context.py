"""Causal trace context: the (trace, span, parent) triple that rides
every message.

A :class:`TraceContext` names one node of a causal tree.  ``trace_id``
identifies the whole tree (one payment, one multihop route), ``span_id``
the current operation, and ``parent_id`` the operation that caused it —
empty for the root.  Contexts are immutable; crossing a boundary (a
message send, a nested span) derives a *child* whose ``parent_id`` is
the sender's ``span_id``.

Identifiers are 16-hex-char strings: a per-process random prefix plus a
monotone counter, so ids minted by different daemons never collide while
staying cheap to generate (no per-id entropy read).  The DES is
deterministic; trace ids are observability-only and never feed back into
protocol state, so the randomness does not perturb simulations.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext", "new_trace_id", "new_span_id"]

# One entropy read per process; ids are prefix + counter after that.
_PREFIX = os.urandom(5).hex()
_COUNTER = itertools.count(1)


def new_span_id() -> str:
    """A fresh 16-hex-char span id, unique across processes."""
    return f"{_PREFIX}{next(_COUNTER) & 0xFFFFFF:06x}"


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (same generator as span ids)."""
    return new_span_id()


@dataclass(frozen=True)
class TraceContext:
    """Immutable causal coordinates for one operation."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def root(cls) -> "TraceContext":
        """Start a new trace: fresh trace id, root span, no parent."""
        trace_id = new_trace_id()
        return cls(trace_id=trace_id, span_id=new_span_id(), parent_id="")

    def child(self) -> "TraceContext":
        """Derive the context for an operation caused by this one."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            parent_id=self.span_id)

    def fields(self) -> dict:
        """The context as trace-event fields (keys match the wire names)."""
        return {"trace": self.trace_id, "span": self.span_id,
                "parent": self.parent_id}

    @classmethod
    def from_fields(cls, trace: str, span: str,
                    parent: str = "") -> Optional["TraceContext"]:
        """Rebuild a context from decoded wire fields; ``None`` when the
        trace id is empty (the untraced sentinel)."""
        if not trace:
            return None
        return cls(trace_id=trace, span_id=span, parent_id=parent)

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id}/{self.span_id}"
                f"<-{self.parent_id or 'root'})")
