"""Counters, gauges, and fixed-bucket histograms.

Every instrument is O(1) per record: counters and gauges are a single
attribute update, histograms a :func:`bisect.bisect_left` over a fixed
bucket list (``bisect_left`` so that bounds are *inclusive* upper
bounds — a value equal to a bound lands in that bound's bucket).  No locking — the reproduction is single-threaded by design
(the DES owns all concurrency).

The cost discipline is the :class:`NullMetrics` registry: a shared
singleton (:data:`NOOP`) whose instruments discard every record and whose
``enabled`` flag is ``False``.  Hot paths guard *name construction* (the
f-strings that build per-endpoint-pair or per-link metric names) behind
``registry.enabled`` so that a disabled run pays one attribute check, not
a string format.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NOOP",
    "DEFAULT_BUCKETS",
    "linear_buckets",
    "exponential_buckets",
    "nearest_rank",
    "summarize_samples",
]

# Latency-flavoured default buckets, in seconds: 100 µs … 10 s.  Callers
# with a different unit pass their own bounds (see the helpers below).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` evenly spaced upper bounds from ``start``."""
    if width <= 0:
        raise ValueError(f"linear bucket width must be > 0, got {width}")
    return tuple(start + width * index for index in range(count))


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` geometrically growing upper bounds from ``start``."""
    if factor <= 1:
        raise ValueError(
            f"exponential bucket factor must be > 1, got {factor}")
    if start <= 0:
        raise ValueError(f"exponential bucket start must be > 0, got {start}")
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


def nearest_rank(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over raw samples.

    The rank of the q-th quantile over n samples is ``ceil(q * n)``
    (1-based), with ``q = 0`` defined as the minimum.  Unlike the naive
    ``ordered[int(n * q)]`` this is exact at both ends — ``q = 1`` is the
    maximum, never an ``IndexError`` — and returns the *lower* median for
    even n rather than the upper.  Shared by the daemon's latency probes
    and the ``repro.load`` reports so every p50/p95 in a sidecar means
    the same thing.

    ``samples`` need not be pre-sorted; a sorted copy is taken.
    """
    if not samples:
        raise ValueError("nearest_rank needs at least one sample")
    if not 0.0 <= q <= 1.0:  # NaN fails both comparisons too
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q * len(ordered))
    return ordered[rank - 1]


def summarize_samples(samples: Sequence[float],
                      quantiles: Sequence[float] = (0.5, 0.95),
                      ) -> Dict[str, float]:
    """The standard latency summary block every probe/report emits:
    count, mean, min, max, plus ``p<q>`` keys from :func:`nearest_rank`."""
    if not samples:
        return {"count": 0}
    summary: Dict[str, float] = {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }
    for q in quantiles:
        summary[f"p{round(q * 100):d}"] = nearest_rank(samples, q)
    return summary


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (queue depth, outstanding window, …)."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Recording is a bisect over
    the bounds — O(log #buckets), independent of the sample count.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def record(self, value: float) -> None:
        # bisect_left keeps the documented inclusive-upper-bound
        # semantics: a value equal to a bound lands in that bound's
        # bucket, not the next one.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th sample (``maximum`` for the overflow bucket)."""
        if not self.count:
            return None
        # NaN fails both comparisons, so it is rejected here too.
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if q == 0.0:
            # target would be 0, which every bucket's running count
            # satisfies — including an empty first bucket.  The 0th
            # quantile is simply the smallest recorded value.
            return self.minimum
        target = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.maximum
        return self.maximum

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Named instruments, created on first use.

    ``enabled`` is the hot-path guard: instrumented code may skip metric
    *name construction* entirely when it is ``False`` (the no-op default).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, buckets)
        return histogram

    # -- one-shot helpers --------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.histogram(name, buckets).record(value)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict copy of every instrument, JSON-serialisable."""
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: {"value": gauge.value, "peak": gauge.peak}
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.to_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class NullMetrics(MetricsRegistry):
    """The module-level default: every record is discarded.

    Instruments are shared singletons so that even
    ``registry.counter(name).inc()`` in a loop allocates nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP = NullMetrics()
