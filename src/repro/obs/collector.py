"""Per-daemon telemetry plane: span ring + metrics deltas, served live.

A :class:`TelemetryCollector` owns one node's :class:`Tracer` and
:class:`MetricsRegistry` and packages them for the control-plane
commands:

* :meth:`trace_dump` — the full retained span ring plus the clock
  metadata (local clock, wall clock, peer skew estimates) that
  :mod:`repro.obs.merge` needs to place this node's events on a shared
  timeline.
* :meth:`metrics_delta` — counters and histograms *since the previous
  call*, so a poller (``repro.runtime top``, a scrape loop) sees rates
  without the daemon keeping per-client state: the collector keeps one
  cursor, which is enough for the single-operator control plane.
* :meth:`health` — a cheap liveness summary (uptime, ring pressure,
  peer count) suitable for tight polling.

The collector never samples clocks itself: the daemon injects ``now``
(its scheduler clock — the same clock the tracer stamps events with) and
``wall`` (epoch seconds) so DES-mode tests can drive it with simulated
time.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["TelemetryCollector"]


class TelemetryCollector:
    """Buffers one node's span ring and metrics, serving dumps and deltas."""

    def __init__(
        self,
        node: str,
        tracer: Tracer,
        metrics: MetricsRegistry,
        now: Optional[Callable[[], float]] = None,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.node = node
        self.tracer = tracer
        self.metrics = metrics
        self._now = now if now is not None else tracer.now
        self._wall = wall
        self.started_local = self._now()
        self.started_wall = wall()
        self._stream_seq = 0
        self._last_counters: Dict[str, float] = {}
        self._last_histograms: Dict[str, Dict[str, float]] = {}

    # -- trace dump --------------------------------------------------------

    def trace_dump(
        self, peer_offsets: Optional[Dict[str, float]] = None,
    ) -> Dict[str, Any]:
        """The retained span ring plus merge metadata.

        ``peer_offsets`` maps peer name → estimated ``peer_clock −
        my_clock`` (from the handshake NTP exchange); the merge tool
        chains these estimates to skew-correct every node onto one
        reference clock.
        """
        return {
            "node": self.node,
            "now": self._now(),
            "wall": self._wall(),
            "started": self.started_local,
            "events": self.tracer.events(),
            "emitted": self.tracer.emitted,
            "dropped": self.tracer.dropped,
            "capacity": self.tracer.capacity,
            "peer_offsets": dict(peer_offsets or {}),
        }

    # -- metrics stream ----------------------------------------------------

    def metrics_delta(self) -> Dict[str, Any]:
        """Counters/histograms changed since the last call, gauges current.

        The first call returns everything (delta against zero)."""
        snapshot = self.metrics.snapshot()
        counters: Dict[str, float] = {}
        for name, value in snapshot["counters"].items():
            delta = value - self._last_counters.get(name, 0)
            if delta:
                counters[name] = delta
        self._last_counters = dict(snapshot["counters"])

        histograms: Dict[str, Dict[str, float]] = {}
        for name, data in snapshot["histograms"].items():
            previous = self._last_histograms.get(name, {})
            count = data["count"] - previous.get("count", 0)
            if count:
                histograms[name] = {
                    "count": count,
                    "sum": data["sum"] - previous.get("sum", 0.0),
                }
            self._last_histograms[name] = {
                "count": data["count"], "sum": data["sum"],
            }

        self._stream_seq += 1
        return {
            "node": self.node,
            "seq": self._stream_seq,
            "now": self._now(),
            "counters": counters,
            "gauges": snapshot["gauges"],
            "histograms": histograms,
        }

    # -- health ------------------------------------------------------------

    def health(self, **extra: Any) -> Dict[str, Any]:
        """Cheap liveness summary; ``extra`` lets the daemon add peer and
        channel counts without the collector knowing about either."""
        summary: Dict[str, Any] = {
            "node": self.node,
            "status": "ok",
            "uptime": self._now() - self.started_local,
            "trace_events": len(self.tracer),
            "trace_emitted": self.tracer.emitted,
            "trace_dropped": self.tracer.dropped,
        }
        summary.update(extra)
        return summary
