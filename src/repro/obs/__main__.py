"""``python -m repro.obs`` — fleet observability from the terminal.

``fleet`` is the live view over :class:`repro.obs.fleet.FleetMonitor`:
one row per daemon with the derived rates (payments/s, drops/s,
backpressure/s), the fleet conservation line, and every active alert —
the same rendering approach as ``python -m repro.runtime top``, plus
the audit plane.  ``--once --json`` emits a single machine-readable
sweep for scripts; ``--prom`` emits the merged fleet Prometheus
exposition instead.

Examples::

    python -m repro.obs fleet alice=127.0.0.1:7101 bob=127.0.0.1:7102
    python -m repro.obs fleet 127.0.0.1:7101 --once --json
    python -m repro.obs fleet hub=127.0.0.1:7101 --prom
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.fleet import FleetMonitor, parse_targets


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fleet observability: live invariant auditing and "
                    "telemetry over running daemons.")
    sub = parser.add_subparsers(dest="command", required=True)
    fleet = sub.add_parser(
        "fleet", help="poll daemons, derive rates, audit invariants")
    fleet.add_argument(
        "targets", nargs="+", metavar="NAME=HOST:PORT",
        help="control endpoints (bare HOST:PORT names itself)")
    fleet.add_argument("--interval", type=float, default=1.0,
                       help="seconds between sweeps (default 1.0)")
    fleet.add_argument("--iterations", type=int, default=0,
                       help="stop after N sweeps (0 = until Ctrl-C)")
    fleet.add_argument("--once", action="store_true",
                       help="one sweep, then exit (implies iterations=1)")
    fleet.add_argument("--json", action="store_true",
                       help="emit JSON instead of the table view")
    fleet.add_argument("--prom", action="store_true",
                       help="emit the merged fleet Prometheus exposition "
                            "and exit")
    fleet.add_argument("--expected-total", type=int, default=None,
                       help="funded supply to audit conservation "
                            "against (default: first sweep's observed "
                            "total)")
    return parser


def _render(monitor: FleetMonitor, sweep: Dict[str, Any], out) -> None:
    header = (f"{'NODE':<14} {'STATUS':<7} {'TX/S':>8} {'RX/S':>8} "
              f"{'DROP/S':>7} {'BP/S':>6} {'RECONN':>6} {'QUEUED':>6} "
              f"{'ONCHAIN':>9} {'CHANS':>5}")
    print(header, file=out)
    for name in sorted(monitor.targets):
        point = sweep["daemons"].get(name)
        if not point or not point.get("ok"):
            print(f"{name:<14} {'DOWN':<7}", file=out)
            continue
        print(f"{name:<14} {point.get('status', '?'):<7} "
              f"{point['tx_s']:>8.1f} {point['rx_s']:>8.1f} "
              f"{point['drops_s']:>7.1f} {point['backpressure_s']:>6.1f} "
              f"{point['reconnects']:>6} {point['queued']:>6} "
              f"{point['onchain']:>9} {point['channels']:>5}", file=out)
    observed = sweep.get("observed_total")
    expected = sweep.get("expected_total")
    verdict = "OK" if observed == expected else (
        "SURPLUS" if (observed or 0) > (expected or 0) else "DEFICIT")
    print(f"conservation: observed={observed} expected={expected} "
          f"[{verdict}]", file=out)
    alerts = sweep.get("alerts", [])
    if alerts:
        print(f"active alerts ({len(alerts)}):", file=out)
        for alert in alerts:
            print(f"  [{alert['severity']:>8}] {alert['code']:<24} "
                  f"{alert['subject']:<14} {alert['detail']}", file=out)
    else:
        print("active alerts: none", file=out)
    out.flush()


async def run_fleet(arguments: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    monitor = FleetMonitor(
        parse_targets(arguments.targets),
        interval=arguments.interval,
        expected_total=arguments.expected_total)
    try:
        if arguments.prom:
            print(await monitor.prometheus(), end="", file=out)
            return 0
        iterations = 1 if arguments.once else arguments.iterations
        tick = 0
        while True:
            sweep = await monitor.sweep()
            if arguments.json:
                payload = {"sweep": sweep,
                           "audit": monitor.auditor.summary()}
                print(json.dumps(payload, sort_keys=True), file=out)
            else:
                _render(monitor, sweep, out)
            tick += 1
            if iterations and tick >= iterations:
                break
            await asyncio.sleep(arguments.interval)
        # Scripting contract: a sweep that saw a CRITICAL exits nonzero.
        return 1 if monitor.auditor.critical_alerts() else 0
    finally:
        await monitor.close()


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.command == "fleet":
        try:
            return asyncio.run(run_fleet(arguments))
        except KeyboardInterrupt:
            return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
