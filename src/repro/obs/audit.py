"""Fleet-wide invariant auditing over atomic per-daemon snapshots.

The :class:`InvariantAuditor` consumes one ``audit-snapshot`` per daemon
per sweep (each snapshot internally consistent — taken inside the ecall
boundary in a single event-loop slice) and derives the cross-node
invariants Teechain's fund-safety argument rests on, *while traffic and
faults are running*:

* **Global conservation** — no value is minted.  The observed fleet
  total is::

      sum(on-chain balances) + sum(free-deposit values)
          + sum(per-channel totals)

  where a channel's total is ``min`` over the endpoints reporting it of
  ``my_balance + remote_balance``.  Payments move value *within* a
  channel, so neither endpoint's total changes while traffic flows —
  the sum is exact under concurrent load, not merely approximate.
  Settlement zeroes the initiator's total synchronously before anything
  is broadcast, so the ``min`` rule retires a settling channel the
  moment one side has (terminated channels keep reporting zeroed
  balances for exactly this reason), and the settled funds re-enter the
  sum through on-chain balances once mined.  Transients therefore only
  ever push the observed total *down* (value in flight in the mempool,
  a deposit association the peer has not yet processed): a **surplus**
  over the expected total means minted value and is CRITICAL
  immediately, while a **deficit** is WARN only after it persists.

* **Hub ledger invariants** — each hub snapshot carries its enclave's
  own conservation (``liabilities == deposited − withdrawn``) and
  solvency (``liabilities <= backing``) verdicts, computed in the same
  slice as the balances.  Either flag false is CRITICAL.

* **Fast-path checkpoint lag** — MAC-only payments outstanding per
  channel versus the configured checkpoint interval K: ``>= K`` unsigned
  is WARN (checkpointing is falling behind), ``> 2K`` is CRITICAL (the
  K-bound the security argument amortises over is broken).

* **Replication-barrier / payout liveness** — a non-empty enclave
  outbox or a pending chain payout across consecutive sweeps means
  frames or payouts are stranded (WARN).

Alerts are typed records with stable codes; an alert raised on one
sweep and absent on a later one is *cleared*, not forgotten — the full
log (with raise/clear timestamps) is the benchmark artifact, and the
registry counts ``alerts.raised[<code>]`` / ``alerts.cleared``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Alert",
    "InvariantAuditor",
    "WARN",
    "CRITICAL",
    "ALERT_CODES",
]

WARN = "WARN"
CRITICAL = "CRITICAL"

#: Stable alert codes (DESIGN.md §14) — additions only, never renames.
ALERT_CODES = {
    "CONSERVATION_SURPLUS": CRITICAL,   # observed > expected: value minted
    "CONSERVATION_DEFICIT": WARN,       # observed < expected, persistent
    "HUB_NOT_CONSERVED": CRITICAL,      # ledger liabilities drifted
    "HUB_INSOLVENT": CRITICAL,          # liabilities exceed backing
    "NEGATIVE_BALANCE": CRITICAL,       # a channel balance went negative
    "CHANNEL_MIRROR_DIVERGED": WARN,    # endpoints disagree on a total
    "FASTPATH_LAG": WARN,               # unsigned >= K (CRITICAL > 2K)
    "OUTBOX_STUCK": WARN,               # enclave outbox pending, persistent
    "PAYOUT_STUCK": WARN,               # chain payout pending, persistent
    "SCRAPE_FAILED": WARN,              # daemon unreachable this sweep
    "PEER_DISCONNECTED": WARN,          # a transport link is down
    "RECONNECT": WARN,                  # a link redialled this sweep
    "BACKPRESSURE": WARN,               # backpressure waits this sweep
    "PROTOCOL_DROPS": WARN,             # protocol-plane frames dropped
}


@dataclass
class Alert:
    """One raised invariant violation, tracked until it clears."""

    code: str
    severity: str
    subject: str        # daemon, channel, or "fleet"
    detail: str
    first_seen: float
    last_seen: float
    sweeps: int = 1
    cleared_at: Optional[float] = None
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "sweeps": self.sweeps,
            "cleared_at": self.cleared_at,
            "context": dict(self.context),
        }


class InvariantAuditor:
    """Derives fleet invariants from per-daemon audit snapshots.

    ``expected_total`` is the fleet's funded supply (sum of genesis
    allocations of the polled daemons).  When omitted, the first
    sweep's observed total becomes the baseline — correct as long as
    the monitor attaches while the fleet is quiescent or only after
    setup, which is how ``repro.load --monitor`` and the benchmarks
    use it.
    """

    def __init__(
        self,
        expected_total: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        deficit_sweeps: int = 3,
        stuck_sweeps: int = 2,
    ) -> None:
        self.expected_total = expected_total
        self.metrics = metrics
        self.deficit_sweeps = max(1, deficit_sweeps)
        self.stuck_sweeps = max(1, stuck_sweeps)
        self.sweeps = 0
        #: Every alert ever raised, in raise order (the sidecar log).
        self.log: List[Alert] = []
        self._active: Dict[Tuple[str, str], Alert] = {}
        self._streaks: Dict[Tuple[str, str], int] = {}
        # Last good snapshot per daemon: a dead or mid-restart daemon
        # must not yank its channels/wallet out of the observed sum and
        # fake a deficit (or, worse, let its peer's stale totals fake a
        # surplus once it settles elsewhere).
        self._last_good: Dict[str, Dict[str, Any]] = {}
        # Previous transport counters per daemon, for per-sweep deltas.
        self._last_transport: Dict[str, Dict[str, int]] = {}
        self.last_observed: Optional[int] = None
        self.last_components: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Alert lifecycle
    # ------------------------------------------------------------------

    def active_alerts(self) -> List[Alert]:
        return list(self._active.values())

    def critical_alerts(self) -> List[Alert]:
        """Every CRITICAL ever raised (cleared or not): a safety
        violation that later 'heals' still happened."""
        return [alert for alert in self.log if alert.severity == CRITICAL]

    def _raise(self, code: str, subject: str, severity: str, detail: str,
               t: float, **context: Any) -> Alert:
        key = (code, subject)
        alert = self._active.get(key)
        if alert is not None:
            alert.last_seen = t
            alert.sweeps += 1
            alert.detail = detail
            alert.context.update(context)
            if severity == CRITICAL and alert.severity != CRITICAL:
                alert.severity = CRITICAL  # escalate, never downgrade
                if self.metrics is not None:
                    self.metrics.inc("alerts.critical")
            return alert
        alert = Alert(code=code, severity=severity, subject=subject,
                      detail=detail, first_seen=t, last_seen=t,
                      context=dict(context))
        self._active[key] = alert
        self.log.append(alert)
        if self.metrics is not None:
            self.metrics.inc(f"alerts.raised[{code}]")
            if severity == CRITICAL:
                self.metrics.inc("alerts.critical")
        return alert

    def _clear(self, code: str, subject: str, t: float) -> None:
        alert = self._active.pop((code, subject), None)
        if alert is not None:
            alert.cleared_at = t
            if self.metrics is not None:
                self.metrics.inc("alerts.cleared")

    def _condition(self, code: str, subject: str, active: bool,
                   detail: str, t: float, severity: Optional[str] = None,
                   persist: int = 1, **context: Any) -> None:
        """Raise after ``persist`` consecutive active sweeps; clear (and
        reset the streak) the first sweep the condition is gone."""
        key = (code, subject)
        if active:
            streak = self._streaks.get(key, 0) + 1
            self._streaks[key] = streak
            if streak >= persist:
                self._raise(code, subject, severity or ALERT_CODES[code],
                            detail, t, **context)
        else:
            self._streaks.pop(key, None)
            self._clear(code, subject, t)

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------

    def audit(self, snapshots: Dict[str, Optional[Dict[str, Any]]],
              t: float) -> List[Alert]:
        """Audit one sweep.

        ``snapshots`` maps daemon name → its ``audit-snapshot`` response,
        or ``None`` when the scrape failed.  Returns the alerts active
        after this sweep.
        """
        self.sweeps += 1
        usable: Dict[str, Dict[str, Any]] = {}
        for name, snapshot in snapshots.items():
            if snapshot is None:
                self._condition(
                    "SCRAPE_FAILED", name, True,
                    f"{name} did not answer audit-snapshot", t)
                cached = self._last_good.get(name)
                if cached is not None:
                    usable[name] = cached
            else:
                self._condition("SCRAPE_FAILED", name, False, "", t)
                self._last_good[name] = snapshot
                usable[name] = snapshot

        self._audit_conservation(usable, t)
        for name, snapshot in usable.items():
            live = snapshots.get(name) is not None
            self._audit_daemon(name, snapshot, t, live=live)
        return self.active_alerts()

    # -- global conservation -------------------------------------------

    def _audit_conservation(self, usable: Dict[str, Dict[str, Any]],
                            t: float) -> None:
        onchain = sum(s.get("onchain", 0) for s in usable.values())
        free = sum(s.get("free_deposit_value", 0) for s in usable.values())
        # channel id → totals reported by each endpoint this sweep.
        totals: Dict[str, List[int]] = {}
        for snapshot in usable.values():
            for cid, channel in snapshot.get("channels", {}).items():
                totals.setdefault(cid, []).append(channel["total"])
        channel_sum = sum(min(reports) for reports in totals.values())
        observed = onchain + free + channel_sum
        self.last_observed = observed
        self.last_components = {
            "onchain": onchain, "free_deposits": free,
            "channels": channel_sum,
        }
        if self.expected_total is None:
            self.expected_total = observed
        expected = self.expected_total

        self._condition(
            "CONSERVATION_SURPLUS", "fleet", observed > expected,
            f"observed fleet total {observed} exceeds expected {expected} "
            f"(+{observed - expected}): value was minted "
            f"(onchain={onchain} free={free} channels={channel_sum})",
            t, observed=observed, expected=expected)
        self._condition(
            "CONSERVATION_DEFICIT", "fleet", observed < expected,
            f"observed fleet total {observed} below expected {expected} "
            f"(-{expected - observed}) for {self.deficit_sweeps}+ sweeps "
            f"(onchain={onchain} free={free} channels={channel_sum})",
            t, persist=self.deficit_sweeps,
            observed=observed, expected=expected)

        # Endpoints disagreeing on a channel's *total* is meaningful:
        # payments never change a total, only deposit association and
        # settlement do, and both converge within a message round trip.
        for cid, reports in totals.items():
            self._condition(
                "CHANNEL_MIRROR_DIVERGED", cid,
                len(reports) > 1 and max(reports) != min(reports),
                f"channel {cid} totals diverge across endpoints: "
                f"{sorted(reports)}", t, persist=self.deficit_sweeps)

    # -- per-daemon invariants -----------------------------------------

    def _audit_daemon(self, name: str, snapshot: Dict[str, Any], t: float,
                      live: bool = True) -> None:
        negative = [
            (cid, channel) for cid, channel in
            snapshot.get("channels", {}).items()
            if channel["my_balance"] < 0 or channel["remote_balance"] < 0
        ]
        self._condition(
            "NEGATIVE_BALANCE", name, bool(negative),
            f"{name} reports negative channel balances: "
            + ", ".join(f"{cid}={ch['my_balance']}/{ch['remote_balance']}"
                        for cid, ch in negative[:4]), t)

        hub = snapshot.get("hub")
        if hub is not None:
            self._condition(
                "HUB_NOT_CONSERVED", name, not hub.get("conserved", True),
                f"{name} hub ledger broke conservation: liabilities "
                f"{hub.get('liabilities')} != deposited "
                f"{hub.get('deposited_total')} - withdrawn "
                f"{hub.get('withdrawn_total')}", t)
            self._condition(
                "HUB_INSOLVENT", name, not hub.get("solvent", True),
                f"{name} hub is insolvent: liabilities "
                f"{hub.get('liabilities')} exceed backing "
                f"{hub.get('backing')}", t)
            self._condition(
                "PAYOUT_STUCK", name, hub.get("payout_pending", 0) > 0,
                f"{name} has {hub.get('payout_pending')} of chain payouts "
                f"authorised but unexecuted for {self.stuck_sweeps}+ "
                "sweeps", t, persist=self.stuck_sweeps)

        fastpath = snapshot.get("fastpath", {})
        k = fastpath.get("checkpoint_every", 0)
        if fastpath.get("enabled") and k:
            worst = max(
                (channel.get("fastpath_unsigned", 0)
                 for channel in snapshot.get("channels", {}).values()),
                default=0)
            if worst > 2 * k:
                self._condition(
                    "FASTPATH_LAG", name, True,
                    f"{name} has {worst} unsigned fast-path payments "
                    f"(checkpoint interval {k}): the 2K bound is broken",
                    t, severity=CRITICAL, unsigned=worst, k=k)
            else:
                self._condition(
                    "FASTPATH_LAG", name, worst >= k,
                    f"{name} has {worst} unsigned fast-path payments "
                    f"(checkpoint interval {k}): checkpointing lags",
                    t, unsigned=worst, k=k)

        self._condition(
            "OUTBOX_STUCK", name, snapshot.get("outbox_pending", 0) > 0,
            f"{name} enclave outbox holds "
            f"{snapshot.get('outbox_pending')} undelivered frames for "
            f"{self.stuck_sweeps}+ sweeps", t, persist=self.stuck_sweeps)

        transport = snapshot.get("transport", {})
        self._condition(
            "PEER_DISCONNECTED", name,
            live and transport.get("disconnected", 0) > 0,
            f"{name} has {transport.get('disconnected')} of "
            f"{transport.get('peers')} transport links down", t)

        previous = self._last_transport.get(name, {})
        waits = transport.get("backpressure_waits", 0)
        drops = transport.get("drops_protocol", 0)
        reconnects = transport.get("reconnects", 0)
        self._condition(
            "BACKPRESSURE", name,
            live and waits > previous.get("backpressure_waits", waits),
            f"{name} writers hit backpressure this sweep "
            f"(total waits {waits})", t, waits=waits)
        self._condition(
            "PROTOCOL_DROPS", name,
            live and drops > previous.get("drops_protocol", drops),
            f"{name} dropped protocol-plane frames this sweep "
            f"(total {drops})", t, drops=drops)
        # A severed link redials in well under one sweep interval, so
        # PEER_DISCONNECTED can miss it; the reconnects counter cannot.
        self._condition(
            "RECONNECT", name,
            live and reconnects > previous.get("reconnects", reconnects),
            f"{name} redialled transport links this sweep "
            f"(total reconnects {reconnects})", t, reconnects=reconnects)
        if live:
            self._last_transport[name] = {
                "backpressure_waits": waits, "drops_protocol": drops,
                "reconnects": reconnects,
            }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return {
            "sweeps": self.sweeps,
            "expected_total": self.expected_total,
            "observed_total": self.last_observed,
            "components": dict(self.last_components),
            "active": [a.to_dict() for a in self.active_alerts()],
            "criticals": [a.to_dict() for a in self.critical_alerts()],
            "log": [a.to_dict() for a in self.log],
        }
