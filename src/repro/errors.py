"""Exception hierarchy for the Teechain reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without masking programming errors (``TypeError`` etc. are
never wrapped).  Protocol violations — the interesting failures in a payment
network — get their own branch so tests can assert that an attack was
*rejected* rather than merely that "something went wrong".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad signature, bad key, bad MAC)."""


class InvalidSignature(CryptoError):
    """Signature verification failed."""


class InvalidKey(CryptoError):
    """A key is malformed or out of range."""


class DecryptionError(CryptoError):
    """Authenticated decryption failed (wrong key or tampered ciphertext)."""


class ThresholdError(CryptoError):
    """Not enough shares/signatures to meet a threshold."""


class BlockchainError(ReproError):
    """Base class for ledger-level failures."""


class InvalidTransaction(BlockchainError):
    """A transaction failed validation (bad script, bad value, malformed)."""


class DoubleSpend(InvalidTransaction):
    """A transaction conflicts with one already accepted."""


class UnknownOutput(BlockchainError):
    """A referenced transaction output does not exist."""


class InsufficientFunds(BlockchainError):
    """An address does not control enough value for the requested spend."""


class TEEError(ReproError):
    """Base class for enclave-runtime failures."""


class EnclaveCrashed(TEEError):
    """The enclave has crashed and no longer accepts ecalls."""


class EnclaveFrozen(TEEError):
    """The enclave froze itself (force-freeze replication) and only permits
    settlement operations."""


class AttestationError(TEEError):
    """Remote attestation failed: bad quote, wrong measurement, or revoked
    attestation service."""


class SealingError(TEEError):
    """Sealed data failed integrity or rollback checks."""


class CounterThrottled(TEEError):
    """A monotonic-counter increment was requested faster than the hardware
    rate limit allows."""


class NetworkError(ReproError):
    """Base class for transport failures."""


class ChannelNotEstablished(NetworkError):
    """No secure channel exists with the requested peer."""


class MessageAuthenticationError(NetworkError):
    """An incoming message failed authentication or freshness checks."""


class ProtocolError(ReproError):
    """Base class for Teechain protocol violations.

    Raised when a message or local command is *rejected* by the protocol
    state machine — e.g. paying more than a balance, associating an
    unapproved deposit, replaying a stale message.  These correspond to the
    ``assert`` guards in the paper's Algorithms 1–3.
    """


class ChannelStateError(ProtocolError):
    """An operation is invalid in the channel's current state."""


class DepositError(ProtocolError):
    """A deposit operation violated the deposit lifecycle."""


class PaymentError(ProtocolError):
    """A payment was rejected (insufficient balance, closed channel...)."""


class MultihopError(ProtocolError):
    """A multi-hop protocol message arrived in the wrong stage or with an
    inconsistent path."""


class ReplicationError(ProtocolError):
    """Chain-replication protocol violation (duplicate backup, update to a
    frozen chain, ack from the wrong node)."""


class SettlementError(ProtocolError):
    """Settlement generation failed or a PoPT was rejected."""


class RoutingError(ProtocolError):
    """No route could be found or a route is malformed."""


class HubError(ProtocolError):
    """An account-hub request was rejected by the hub enclave."""


class NoSuchAccountError(HubError):
    """A request names an account the hub ledger has never opened."""


class AccountNonceError(HubError):
    """A request's nonce is not strictly greater than the last accepted
    nonce for that account — a replay or a reordered duplicate."""


class AccountFundsError(HubError):
    """An account operation exceeds the funds available to it (balance
    for pays/withdrawals, hub backing for deposits)."""


class LedgerTamperError(HubError):
    """The account ledger's conservation invariant no longer holds —
    evidence that hub state was mutated outside the request protocol."""


class SimulationError(ReproError):
    """The discrete-event simulator was misused (e.g. scheduling into the
    past)."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""
