"""Declarative fault schedules, shared by both execution modes.

A :class:`FaultSchedule` is a seedable, serialisable description of *what
goes wrong and when*: crash an enclave at a named protocol point, partition
a link, delay/duplicate/reorder traffic, stall a blockchain writer, SIGKILL
a daemon.  The same schedule object drives

* :class:`repro.faults.des.DesFaultInjector` — exact, deterministic replay
  on the discrete-event simulator (same seed ⇒ identical event trace), and
* :class:`repro.faults.live.LiveFaultInjector` — approximate replay under
  wall clock against real daemon processes.

Fault kinds that only make sense in one mode are filtered by
:meth:`FaultSchedule.des_faults` / :meth:`FaultSchedule.live_faults`; a
schedule mixing both is legal and each injector applies its half.

Protocol points are the ``description`` strings the enclave passes to
``ChannelProtocol._replicated`` — e.g. ``mh_lock``, ``mh_sign_head``,
``pay``, ``settled`` (see DESIGN.md's fault-model table).  A point may be
just the name (matches any instance: ``"mh_lock"``) or pinned to one
operation with the full prefix (``"mh_lock:mh-7"``).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional, Tuple


class FaultKind(str, enum.Enum):
    """What kind of failure a :class:`FaultSpec` injects."""

    # Both modes (DES exactly; live via the daemon's fault control API).
    CRASH = "crash"                    # fail-stop the target's enclave
    # DES network faults (the adversary tap on the simulated transport).
    PARTITION = "partition"            # drop all traffic on a link
    HEAL = "heal"                      # lift a partition / restore a link
    LOSS = "loss"                      # drop each message with probability
    DELAY = "delay"                    # add latency to a link
    DUPLICATE = "duplicate"            # deliver each message twice
    REORDER = "reorder"                # shuffle windows of messages
    # DES blockchain-writer faults (the WriteAdversary).
    STALL_CHAIN = "stall_chain"        # eclipse the target's chain writes
    RESUME_CHAIN = "resume_chain"      # lift the eclipse
    # Live-only faults (real processes and sockets).
    KILL = "kill"                      # SIGKILL the target daemon
    SEVER = "sever"                    # cut the TCP link (it may redial)
    BLACKHOLE = "blackhole"            # silently drop outbound frames
    CORRUPT_CONTROL = "corrupt_control"  # garbage bytes on the control port


# Kinds each injector understands.  CRASH and the chain-writer faults are
# DES-exact; live mode reaches CRASH through the daemon's ``fault`` control
# command and approximates links with sever/blackhole.
DES_KINDS = frozenset({
    FaultKind.CRASH, FaultKind.PARTITION, FaultKind.HEAL, FaultKind.LOSS,
    FaultKind.DELAY, FaultKind.DUPLICATE, FaultKind.REORDER,
    FaultKind.STALL_CHAIN, FaultKind.RESUME_CHAIN,
})
LIVE_KINDS = frozenset({
    FaultKind.CRASH, FaultKind.KILL, FaultKind.SEVER, FaultKind.BLACKHOLE,
    FaultKind.HEAL, FaultKind.CORRUPT_CONTROL,
})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` names a node (``"alice"``) or a directed link
    (``"alice->bob"``).  ``point`` triggers the fault at a named protocol
    point (CRASH only); ``at`` triggers it at a simulated/wall-clock time.
    A CRASH with neither fires immediately when the injector arms.
    """

    kind: FaultKind
    target: str
    point: Optional[str] = None
    at: Optional[float] = None
    probability: float = 1.0      # LOSS: per-message drop probability
    extra_seconds: float = 0.0    # DELAY: added one-way latency
    window: int = 2               # REORDER: shuffle-window size
    note: str = ""

    def link(self) -> Tuple[str, str]:
        """Split a directed-link target; raises for node targets."""
        if "->" not in self.target:
            raise ValueError(
                f"{self.kind.value} fault needs a 'sender->destination' "
                f"target, got {self.target!r}"
            )
        sender, _, destination = self.target.partition("->")
        return sender, destination

    def matches_point(self, description: str) -> bool:
        """Whether a ``_replicated`` description hits this spec's point.

        A bare point name matches any instance of that protocol point; a
        point containing ``:`` must prefix-match the full description (so
        ``mh_lock:mh-7`` pins one payment while ``mh_lock`` matches all —
        and never accidentally matches ``mh_lock_last``).
        """
        if self.point is None:
            return False
        if ":" in self.point:
            return description.startswith(self.point)
        name, _, _ = description.partition(":")
        return name == self.point

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind.value, "target": self.target,
            "point": self.point, "at": self.at,
            "probability": self.probability,
            "extra_seconds": self.extra_seconds,
            "window": self.window, "note": self.note,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=FaultKind(raw["kind"]), target=raw["target"],
            point=raw.get("point"), at=raw.get("at"),
            probability=raw.get("probability", 1.0),
            extra_seconds=raw.get("extra_seconds", 0.0),
            window=raw.get("window", 2), note=raw.get("note", ""),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded collection of :class:`FaultSpec`.

    Immutable: every builder returns a new schedule, so schedules compose
    like values and a test can derive variants from a base.  The seed
    drives every random decision an injector makes (loss draws, reorder
    shuffles), which is what makes DES replays bit-identical.
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = ()

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def _with(self, spec: FaultSpec) -> "FaultSchedule":
        return replace(self, faults=self.faults + (spec,))

    # -- builders ---------------------------------------------------------

    def crash(self, target: str, point: Optional[str] = None,
              at: Optional[float] = None, note: str = "") -> "FaultSchedule":
        """Fail-stop ``target``'s enclave at a protocol point or a time."""
        return self._with(FaultSpec(FaultKind.CRASH, target, point=point,
                                    at=at, note=note))

    def partition(self, sender: str, destination: str,
                  at: Optional[float] = None,
                  bidirectional: bool = False) -> "FaultSchedule":
        schedule = self._with(FaultSpec(
            FaultKind.PARTITION, f"{sender}->{destination}", at=at))
        if bidirectional:
            schedule = schedule._with(FaultSpec(
                FaultKind.PARTITION, f"{destination}->{sender}", at=at))
        return schedule

    def heal(self, sender: str, destination: str,
             at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(
            FaultKind.HEAL, f"{sender}->{destination}", at=at))

    def loss(self, sender: str, destination: str, probability: float,
             at: Optional[float] = None) -> "FaultSchedule":
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], "
                             f"got {probability}")
        return self._with(FaultSpec(
            FaultKind.LOSS, f"{sender}->{destination}",
            probability=probability, at=at))

    def delay(self, sender: str, destination: str, extra_seconds: float,
              at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(
            FaultKind.DELAY, f"{sender}->{destination}",
            extra_seconds=extra_seconds, at=at))

    def duplicate(self, sender: str, destination: str,
                  at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(
            FaultKind.DUPLICATE, f"{sender}->{destination}", at=at))

    def reorder(self, sender: str, destination: str, window: int = 2,
                at: Optional[float] = None) -> "FaultSchedule":
        if window < 2:
            raise ValueError(f"reorder window must be ≥ 2, got {window}")
        return self._with(FaultSpec(
            FaultKind.REORDER, f"{sender}->{destination}",
            window=window, at=at))

    def stall_chain(self, target: str,
                    at: Optional[float] = None) -> "FaultSchedule":
        """Eclipse ``target``'s blockchain writer: broadcasts are censored
        until :meth:`resume_chain` — the asynchronous-access adversary."""
        return self._with(FaultSpec(FaultKind.STALL_CHAIN, target, at=at))

    def resume_chain(self, target: str,
                     at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(FaultKind.RESUME_CHAIN, target, at=at))

    def kill(self, target: str, at: Optional[float] = None,
             note: str = "") -> "FaultSchedule":
        """SIGKILL the target daemon process (live mode only)."""
        return self._with(FaultSpec(FaultKind.KILL, target, at=at, note=note))

    def sever(self, sender: str, destination: str,
              at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(
            FaultKind.SEVER, f"{sender}->{destination}", at=at))

    def blackhole(self, sender: str, destination: str,
                  at: Optional[float] = None) -> "FaultSchedule":
        return self._with(FaultSpec(
            FaultKind.BLACKHOLE, f"{sender}->{destination}", at=at))

    def corrupt_control(self, target: str,
                        at: Optional[float] = None) -> "FaultSchedule":
        """Write garbage to the target daemon's control port — the daemon
        must answer a structured error and keep serving."""
        return self._with(FaultSpec(FaultKind.CORRUPT_CONTROL, target, at=at))

    # -- mode filters and serialisation -----------------------------------

    def des_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if s.kind in DES_KINDS)

    def live_faults(self) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.faults if s.kind in LIVE_KINDS)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (benchmark sidecars, CLI hand-off)."""
        return {"seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FaultSchedule":
        return cls(
            seed=raw.get("seed", 0),
            faults=tuple(FaultSpec.from_dict(item)
                         for item in raw.get("faults", ())),
        )
