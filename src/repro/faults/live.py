"""Fault injection against live daemon processes (wall clock).

The live half of the fault engine replays a
:class:`~repro.faults.schedule.FaultSchedule` approximately: timing is
wall clock and the OS scheduler has a vote, but the *faults themselves*
are real — SIGKILL against a daemon process, severed and black-holed TCP
links, garbage bytes on a control socket.  Link faults and in-process
crashes are delivered through the daemon's ``fault`` control command
(the same typed registry as every other command); process kills come
from the outside, as they would in production.
"""

from __future__ import annotations

import json
import logging
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec
from repro.obs import get_metrics

logger = logging.getLogger(__name__)


class LiveFaultInjector:
    """Applies a schedule's live faults to running daemons.

    ``handles`` maps daemon name → :class:`~repro.runtime.launch.DaemonHandle`
    (anything with ``process``, ``control_port``, and a ``control``
    client works).
    """

    def __init__(self, handles: Dict[str, object],
                 schedule: FaultSchedule) -> None:
        self.handles = handles
        self.schedule = schedule
        self.injected: List[Tuple[str, str, str]] = []
        self.killed: List[str] = []

    def apply(self) -> None:
        """Replay every live fault, sleeping to honour ``at`` offsets
        (relative to the moment ``apply`` is called)."""
        start = time.monotonic()
        for spec in sorted(self.schedule.live_faults(),
                           key=lambda s: s.at or 0.0):
            if spec.at is not None:
                remaining = spec.at - (time.monotonic() - start)
                if remaining > 0:
                    time.sleep(remaining)
            self.apply_spec(spec)

    def apply_spec(self, spec: FaultSpec) -> Optional[dict]:
        """Inject one fault now; returns the daemon's response, if any."""
        kind = spec.kind
        if kind is FaultKind.KILL:
            return self._kill(spec.target)
        if kind is FaultKind.CRASH:
            response = self._control(spec.target).call("fault",
                                                       action="crash")
            self._count("crash", spec.target)
            return response
        if kind in (FaultKind.SEVER, FaultKind.BLACKHOLE, FaultKind.HEAL):
            sender, destination = spec.link()
            response = self._control(sender).call(
                "fault", action=kind.value, peer=destination)
            self._count(kind.value, spec.target)
            return response
        if kind is FaultKind.CORRUPT_CONTROL:
            return self.corrupt_control(spec.target)
        raise ReproError(f"{kind.value} is not a live fault")

    def _kill(self, name: str) -> None:
        """SIGKILL the daemon — no shutdown handshake, no flush; the
        closest a test gets to pulling the power cord."""
        handle = self._handle(name)
        handle.process.kill()
        handle.process.wait()
        try:
            handle.control.close()
        except Exception:  # noqa: BLE001 — socket may already be dead
            pass
        self.killed.append(name)
        self._count("kill", name)
        logger.info("fault: SIGKILLed daemon %s", name)

    def corrupt_control(self, name: str) -> dict:
        """Write garbage to the daemon's control port and return its
        response.  A robust daemon answers a structured ``bad_request``
        error and keeps serving; a traceback or a dropped connection is
        a finding."""
        handle = self._handle(name)
        with socket.create_connection(("127.0.0.1", handle.control_port),
                                      timeout=5.0) as raw:
            raw.sendall(b"\x00\xffnot json at all{{{\n")
            reader = raw.makefile("rb")
            line = reader.readline()
        self._count("corrupt_control", name)
        if not line:
            return {"ok": False, "code": "connection_closed"}
        try:
            return json.loads(line.decode("utf-8", "replace"))
        except json.JSONDecodeError:
            return {"ok": False, "code": "unparseable_response",
                    "raw": line.decode("utf-8", "replace")}

    def _handle(self, name: str):
        handle = self.handles.get(name)
        if handle is None:
            raise ReproError(f"fault schedule targets unknown daemon "
                             f"{name!r}")
        return handle

    def _control(self, name: str):
        return self._handle(name).control

    def _count(self, kind: str, target: str) -> None:
        self.injected.append((kind, target, ""))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("faults.injected")
            metrics.inc(f"faults.injected[{kind}]")
