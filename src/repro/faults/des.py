"""Deterministic fault injection for the discrete-event modes.

:class:`DesFaultInjector` takes a :class:`~repro.faults.schedule.FaultSchedule`
and wires its DES-applicable faults into a :class:`TeechainNetwork`:

* **enclave crashes** ride the ``fault_probe`` hook on the protocol
  program — the crash fires at a *named protocol point*, before the
  mutation became durable (the pessimistic crash model: recovery replays
  from the previous sealed/replicated snapshot);
* **network faults** (partition / loss / delay / duplicate / reorder) are
  policies on a seeded :class:`~repro.network.adversary.NetworkAdversary`;
* **blockchain-writer stalls** eclipse the target node's
  :class:`~repro.blockchain.access.WriteAdversary`.

Everything random is drawn from the schedule's seed, and the injector
keeps an event trace of every send it observed — two runs of the same
scenario under the same schedule produce byte-identical traces, which is
what makes a chaos failure reproducible from its seed alone.

A crashed node behaves exactly like a dead host: its enclave refuses all
ecalls, its queued outbound messages are lost with enclave memory, and it
is unregistered from the transport so in-flight messages addressed to it
die silently (the documented delivery-time-resolution semantics).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.node import TeechainNetwork, TeechainNode
from repro.core.persistence import PersistentStore
from repro.errors import EnclaveCrashed, NetworkError, ReproError
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec
from repro.network.adversary import NetworkAdversary
from repro.network.transport import Message
from repro.obs import get_metrics

logger = logging.getLogger(__name__)


class DesFaultInjector:
    """Applies a fault schedule to a simulated/instant Teechain network."""

    def __init__(self, network: TeechainNetwork,
                 schedule: FaultSchedule) -> None:
        self.network = network
        self.schedule = schedule
        # Event trace: (sim time, sender, destination, payload type).  The
        # trace tap is installed before the adversary's so it records every
        # send attempt, including ones the adversary then suppresses.
        self.trace: List[Tuple[float, str, str, str]] = []
        network.transport.add_tap(self._trace_tap)
        self.adversary = NetworkAdversary(network.transport,
                                          rng_seed=schedule.seed)
        self.injected: List[Tuple[str, str, str]] = []  # (kind, target, why)
        self.crashed: Dict[str, str] = {}               # name → crash reason
        self._fired: set = set()                        # spec ids fired once
        self._armed = False

    # -- lifecycle --------------------------------------------------------

    def arm(self) -> None:
        """Install every DES fault from the schedule.

        Point-triggered crashes install probes immediately; time-triggered
        faults are scheduled on the simulated clock; untimed network
        policies apply now."""
        if self._armed:
            raise ReproError("fault injector is already armed")
        self._armed = True
        probe_targets: Dict[str, List[FaultSpec]] = {}
        for spec in self.schedule.des_faults():
            if spec.kind is FaultKind.CRASH and spec.point is not None:
                probe_targets.setdefault(spec.target, []).append(spec)
            elif spec.at is not None:
                self._at(spec.at, lambda s=spec: self._apply_now(s))
            else:
                self._apply_now(spec)
        for name, specs in probe_targets.items():
            self._install_probe(self._node(name), specs)

    def detach(self) -> None:
        """Remove every hook the injector installed (probes stay on
        crashed nodes — they are dead anyway)."""
        self.adversary.detach()
        self.network.transport.remove_tap(self._trace_tap)
        for node in self.network.nodes.values():
            if node.name not in self.crashed:
                node.program.fault_probe = None

    # -- crash machinery --------------------------------------------------

    def _install_probe(self, node: TeechainNode,
                       specs: List[FaultSpec]) -> None:
        def probe(description: str) -> None:
            for spec in specs:
                if id(spec) in self._fired:
                    continue
                if spec.matches_point(description):
                    self._fired.add(id(spec))
                    self.crash_node(node, reason=description)
                    raise EnclaveCrashed(
                        f"{node.name} crashed at {description}"
                    )

        node.program.fault_probe = probe

    def crash_node(self, node: TeechainNode, reason: str = "injected") -> None:
        """Fail-stop ``node`` right now: enclave memory (including the
        outbox) is lost, and the host drops off the network."""
        from repro.tee.compromise import crash_enclave

        crash_enclave(node.enclave)
        node.program._outbox.clear()
        self.network.transport.unregister(node.name)
        self.crashed[node.name] = reason
        self._count("crash", node.name, reason)
        logger.info("fault: crashed %s at %s", node.name, reason)

    def run(self, thunk: Callable, *args, **kwargs):
        """Run a workload step, absorbing failures *caused by an injected
        crash* (the caller's view of a peer dying mid-protocol).  Any
        other exception propagates — a crash must never mask a real bug.

        Returns the thunk's result, or ``None`` if a crash cut it short.
        """
        try:
            return thunk(*args, **kwargs)
        except EnclaveCrashed:
            return None
        except NetworkError as exc:
            if isinstance(exc.__cause__, EnclaveCrashed):
                return None
            raise

    def run_scheduler(self, until: Optional[float] = None) -> None:
        """Advance the simulated clock, riding through injected crashes
        (each crash aborts the scheduler's current run; dead nodes are
        unregistered, so re-running makes progress and terminates)."""
        while True:
            try:
                self.network.run(until=until)
                return
            except EnclaveCrashed:
                continue
            except NetworkError as exc:
                if not isinstance(exc.__cause__, EnclaveCrashed):
                    raise

    # -- recovery ---------------------------------------------------------

    def restore_node(self, node: TeechainNode,
                     store: PersistentStore) -> None:
        """Restart a crashed node from its sealed state (§6.2): fresh
        enclave, same identity seed, program state from the latest
        rollback-protected blob.  Secure channels are *not* restored —
        they die with enclave memory and need a fresh handshake — but
        settlement and ejection are local operations, so the restored
        node can always make its funds safe."""
        from repro.core.multihop import TeechainEnclave
        from repro.tee.enclave import Enclave

        if node.name not in self.crashed:
            raise ReproError(f"{node.name} is not crashed")
        fresh = Enclave(TeechainEnclave(), name=node.name,
                        seed=f"enclave:{node.name}".encode())
        store.restore(fresh)
        node.enclave = fresh
        node._install_validator()
        node.program.committee_provider = node._signing_chain
        store.enclave = fresh
        store.attach()
        self.network.transport.register(node.name, node._on_message)
        del self.crashed[node.name]
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("faults.recovered[restore]")
        logger.info("fault: restored %s from sealed state", node.name)

    # -- plumbing ---------------------------------------------------------

    def _node(self, name: str) -> TeechainNode:
        node = self.network.nodes.get(name)
        if node is None:
            raise ReproError(f"fault schedule targets unknown node {name!r}")
        return node

    def _at(self, when: float, apply: Callable[[], None]) -> None:
        scheduler = self.network.scheduler
        delay = max(0.0, when - scheduler.now)
        scheduler.call_after(delay, apply)

    def _apply_now(self, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind is FaultKind.CRASH:
            self.crash_node(self._node(spec.target),
                            reason=spec.note or "scheduled")
        elif kind is FaultKind.PARTITION:
            self.adversary.partition(*spec.link())
            self._count("partition", spec.target)
        elif kind is FaultKind.HEAL:
            self.adversary.heal(*spec.link())
            self._count("heal", spec.target)
        elif kind is FaultKind.LOSS:
            self.adversary.lossy(*spec.link(), spec.probability)
            self._count("loss", spec.target, f"p={spec.probability}")
        elif kind is FaultKind.DELAY:
            self.adversary.delay(*spec.link(), spec.extra_seconds)
            self._count("delay", spec.target, f"+{spec.extra_seconds}s")
        elif kind is FaultKind.DUPLICATE:
            self.adversary.duplicate(*spec.link())
            self._count("duplicate", spec.target)
        elif kind is FaultKind.REORDER:
            self.adversary.reorder(*spec.link(), window=spec.window)
            self._count("reorder", spec.target, f"window={spec.window}")
        elif kind is FaultKind.STALL_CHAIN:
            self._node(spec.target).adversary.eclipse()
            self._count("stall_chain", spec.target)
        elif kind is FaultKind.RESUME_CHAIN:
            self._node(spec.target).adversary.lift_eclipse()
            self._count("resume_chain", spec.target)
        else:  # pragma: no cover — des_faults() filtered live-only kinds
            raise ReproError(f"{kind.value} is not a DES fault")

    def _count(self, kind: str, target: str, why: str = "") -> None:
        self.injected.append((kind, target, why))
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("faults.injected")
            metrics.inc(f"faults.injected[{kind}]")

    def _trace_tap(self, message: Message) -> Optional[bool]:
        self.trace.append((
            round(self.network.scheduler.now, 9),
            message.sender, message.destination,
            type(message.payload).__name__,
        ))
        return True
