"""The crash fault matrix: every multi-hop stage × every path role.

Algorithm 2's security argument (§5.1) is a case analysis — whatever
stage a participant dies at, the deposits backing the path can always be
settled at a consistent pre- or post-payment state.  This module turns
that case analysis into an executable matrix: for each (role, stage)
cell it runs a three-hop payment, fail-stops the chosen participant's
enclave at the chosen protocol point (before the state transition became
durable — the pessimistic crash model), restores it from sealed state
(§6.2), runs the paper's recovery sweep on every participant, and checks
the balance invariants:

* **conservation** — no value is stranded in unspent deposit outputs;
* **hop neutrality** — the intermediary ends exactly where it started;
* **atomicity** — the sender's loss equals the receiver's gain, and is
  either ``0`` (payment never happened) or the full amount (it did);
* **balance security** — Definition A.1's inequality for every node,
  via the tracker's ``assert_balance_correctness``.

The recovery sweep is Alg. 2 lines 60–72 faithfully: before ejecting a
session, each participant scans the blockchain for a settlement another
participant already landed (its txid was announced during the lock
phase) and, if found, ejects *consistently with it* via
``eject_with_popt`` — that is what keeps a stale restored enclave from
racing a τ-holder into an inconsistent split.

The committee cells exercise §6.1/§7 instead of sealing: losing a
backup freezes the chain (in-flight payment rolls back, settlement still
quorate), and losing the primary recovers from a live backup's
replicated state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.blockchain.transaction import Transaction
from repro.core.node import TeechainNetwork, TeechainNode
from repro.core.persistence import PersistentStore
from repro.core.state import MultihopStage
from repro.errors import ReplicationError, ReproError
from repro.faults.des import DesFaultInjector
from repro.faults.schedule import FaultSchedule
from repro.obs import get_metrics

ROLES: Tuple[str, ...] = ("sender", "hop", "receiver")
STAGES: Tuple[str, ...] = ("lock", "sign", "preUpdate", "update",
                           "postUpdate", "release")

# Which ``_replicated`` protocol point each (role, stage) cell crashes
# at.  The point is where that participant *processes* the named stage:
# the sender drives lock and then observes sign/update/release coming
# back, so several of its cells share a point — the sender simply has no
# code to run at a stage that never reaches it.  All 18 cells resolve to
# 13 distinct points; DESIGN.md's fault-model table documents the
# mapping alongside the paper's line numbers.
ROLE_STAGE_POINTS: Dict[Tuple[str, str], str] = {
    ("sender", "lock"): "mh_lock",
    ("sender", "sign"): "mh_sign_head",
    ("sender", "preUpdate"): "mh_sign_head",
    ("sender", "update"): "mh_postupdate_head",
    ("sender", "postUpdate"): "mh_postupdate_head",
    ("sender", "release"): "mh_release",
    ("hop", "lock"): "mh_lock",
    ("hop", "sign"): "mh_sign",
    ("hop", "preUpdate"): "mh_preupdate",
    ("hop", "update"): "mh_update",
    ("hop", "postUpdate"): "mh_postupdate",
    ("hop", "release"): "mh_release",
    ("receiver", "lock"): "mh_lock_last",
    ("receiver", "sign"): "mh_lock_last",
    ("receiver", "preUpdate"): "mh_update_last",
    ("receiver", "update"): "mh_update_last",
    ("receiver", "postUpdate"): "mh_release_last",
    ("receiver", "release"): "mh_release_last",
}


@dataclass
class CellResult:
    """Outcome of one fault-matrix cell."""

    role: str
    stage: str
    point: str
    crash_fired: bool
    completed: bool          # payment finished at the sender despite fault
    transfer: int            # amount that actually moved sender → receiver
    balances: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role, "stage": self.stage, "point": self.point,
            "crash_fired": self.crash_fired, "completed": self.completed,
            "transfer": self.transfer, "balances": dict(self.balances),
            "violations": list(self.violations), "ok": self.ok,
        }


def _find_onchain_settlement(node: TeechainNode,
                             session) -> Optional[Transaction]:
    """A settlement of this payment that some participant already landed.

    The candidate txids were announced host-side during the lock phase,
    so scanning for them needs no enclave secrets; the *classification*
    (pre vs post) stays inside the TEE via ``eject_with_popt``."""
    known = set(session.pre_txids) | set(session.post_txids)
    chain = node.network.chain
    for block in chain.blocks:
        for transaction in block.transactions:
            if transaction.txid in known:
                return transaction
    return None


def recovery_sweep(node: TeechainNode) -> Dict[str, List[Transaction]]:
    """Terminate every in-flight multi-hop session on ``node``, each one
    consistent with the blockchain (Alg. 2 lines 60–72).

    Plain ``eject`` settles at the session's own recorded stage; if a
    peer already landed a settlement, this node must instead terminate
    at *that* state (``eject(popt)``) or its broadcast would race the
    confirmed outcome and lose."""
    ejected: Dict[str, List[Transaction]] = {}
    program = node.program
    node._ecall("release_dangling_locks")
    for payment_id in sorted(program.multihop_sessions):
        session = program.multihop_sessions[payment_id]
        if session.stage in (MultihopStage.TERMINATED, MultihopStage.IDLE):
            continue
        popt = _find_onchain_settlement(node, session)
        if popt is not None:
            ejected[payment_id] = node.eject_with_popt(payment_id, popt)
        else:
            ejected[payment_id] = node.eject(payment_id)
    return ejected


def _three_hop(funds: int, deposit: int):
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=funds)
    bob = network.create_node("bob", funds=funds)
    carol = network.create_node("carol", funds=funds)
    ab = alice.open_channel(bob)
    bc = bob.open_channel(carol)
    deposit_ab = alice.create_deposit(deposit)
    alice.approve_and_associate(bob, deposit_ab, ab)
    deposit_bc = bob.create_deposit(deposit)
    bob.approve_and_associate(carol, deposit_bc, bc)
    return network, alice, bob, carol


def run_crash_cell(role: str, stage: str, *, funds: int = 100_000,
                   deposit: int = 40_000, amount: int = 5_000,
                   seed: int = 0) -> CellResult:
    """Run one matrix cell end to end and return its invariant record."""
    point = ROLE_STAGE_POINTS[(role, stage)]
    network, alice, bob, carol = _three_hop(funds, deposit)
    nodes = {"sender": alice, "hop": bob, "receiver": carol}
    victim = nodes[role]

    # Stable storage for every participant (§6.2).  Zero increment delay:
    # the matrix checks safety, not the counter-throttle latency, which
    # the persistence benchmarks already measure.
    stores = {
        node.name: PersistentStore(node.enclave, network.scheduler,
                                   increment_delay=0.0)
        for node in nodes.values()
    }
    for node in nodes.values():
        stores[node.name].attach()
        stores[node.name].persist()  # seal the funded pre-payment state

    schedule = FaultSchedule(seed=seed).crash(victim.name, point=point,
                                              note=f"{role}@{stage}")
    injector = DesFaultInjector(network, schedule)
    injector.arm()

    payment = injector.run(alice.pay_multihop, [alice, bob, carol], amount)
    crash_fired = victim.name in injector.crashed
    completed = (payment is not None and "alice" not in injector.crashed
                 and alice.multihop_completed(payment))

    result = CellResult(role=role, stage=stage, point=point,
                        crash_fired=crash_fired, completed=completed,
                        transfer=0)
    if not crash_fired:
        result.violations.append(
            f"probe at {point} never fired — the matrix lost coverage"
        )

    # Recovery: restart the victim from its sealed state, then run the
    # sweep on every participant — survivors first (they were never down),
    # the restored enclave last, forced to stay consistent with whatever
    # the survivors already put on chain.
    if crash_fired:
        injector.restore_node(victim, stores[victim.name])
    order = [node for node in (alice, bob, carol) if node is not victim]
    order.append(victim)
    for node in order:
        recovery_sweep(node)
        network.mine()

    # Reclaim everything and check the paper's balance inequality.
    for node in (alice, bob, carol):
        try:
            node.assert_balance_correct()
        except AssertionError as exc:
            result.violations.append(f"{node.name}: {exc}")

    final = {node.name: network.chain.balance(node.address)
             for node in (alice, bob, carol)}
    result.balances = final
    sender_loss = funds - final["alice"]
    receiver_gain = final["carol"] - funds
    result.transfer = receiver_gain

    if sum(final.values()) != 3 * funds:
        result.violations.append(
            f"conservation: {sum(final.values())} != {3 * funds} — value "
            "stranded in unspent deposits"
        )
    if final["bob"] != funds:
        result.violations.append(
            f"hop neutrality: bob ended with {final['bob']}, not {funds}"
        )
    if sender_loss != receiver_gain:
        result.violations.append(
            f"atomicity: sender lost {sender_loss} but receiver gained "
            f"{receiver_gain}"
        )
    if receiver_gain not in (0, amount):
        result.violations.append(
            f"partial transfer: {receiver_gain} moved, expected 0 or {amount}"
        )
    if completed and receiver_gain != amount:
        result.violations.append(
            "sender saw completion but the receiver was not paid"
        )

    metrics = get_metrics()
    if metrics.enabled and result.ok:
        metrics.inc("faults.matrix.cells_ok")
    injector.detach()
    return result


def run_matrix(*, funds: int = 100_000, deposit: int = 40_000,
               amount: int = 5_000, seed: int = 0) -> List[CellResult]:
    """All 18 (role × stage) crash cells, each on a fresh network."""
    return [
        run_crash_cell(role, stage, funds=funds, deposit=deposit,
                       amount=amount, seed=seed)
        for role in ROLES for stage in STAGES
    ]


# ---------------------------------------------------------------------------
# Committee cells (§6.1, §7): member loss up to the threshold.
# ---------------------------------------------------------------------------

def run_committee_member_loss(*, funds: int = 100_000,
                              deposit: int = 40_000,
                              payments: int = 10,
                              amount: int = 1_000) -> Dict[str, object]:
    """Lose one committee backup mid-workload.

    The next replication push fails, force-freezing the chain (Alg. 3);
    the in-flight payment must roll back cleanly, and settlement must
    still gather a quorum from the surviving members."""
    from repro.tee.compromise import crash_enclave

    network = TeechainNetwork()
    alice = network.create_node("alice", funds=funds)
    bob = network.create_node("bob", funds=funds)
    alice.attach_committee(backups=2, threshold=2)
    channel = alice.open_channel(bob)
    record = alice.create_deposit(deposit)
    alice.approve_and_associate(bob, record, channel)
    for _ in range(payments):
        alice.pay(channel, amount)

    crash_enclave(alice.replication.members[0])
    rolled_back = False
    try:
        alice.pay(channel, amount)
    except ReplicationError:
        rolled_back = True
    violations: List[str] = []
    if not rolled_back:
        violations.append("payment survived a failed replication push")
    if not alice.replication.frozen:
        violations.append("chain did not freeze on member loss")

    for node in (alice, bob):
        try:
            node.assert_balance_correct()
        except AssertionError as exc:
            violations.append(f"{node.name}: {exc}")
    paid = payments * amount
    final = {node.name: network.chain.balance(node.address)
             for node in (alice, bob)}
    if final["alice"] != funds - paid or final["bob"] != funds + paid:
        violations.append(
            f"frozen-state settlement paid {final}, expected "
            f"alice={funds - paid} bob={funds + paid}"
        )
    return {"cell": "committee_member_loss", "balances": final,
            "violations": violations, "ok": not violations}


def run_committee_primary_loss(*, funds: int = 100_000,
                               deposit: int = 40_000,
                               payments: int = 10,
                               amount: int = 1_000) -> Dict[str, object]:
    """Lose the primary enclave; recover from a live backup's replicated
    state (the paper's committee recovery path)."""
    from repro.tee.compromise import crash_enclave

    network = TeechainNetwork()
    alice = network.create_node("alice", funds=funds)
    bob = network.create_node("bob", funds=funds)
    alice.attach_committee(backups=2, threshold=2)
    channel = alice.open_channel(bob)
    record = alice.create_deposit(deposit)
    alice.approve_and_associate(bob, record, channel)
    for _ in range(payments):
        alice.pay(channel, amount)

    crash_enclave(alice.enclave)
    violations: List[str] = []
    for node in (alice, bob):
        try:
            node.assert_balance_correct()
        except AssertionError as exc:
            violations.append(f"{node.name}: {exc}")
    metrics = get_metrics()
    if metrics.enabled:
        metrics.inc("faults.injected[crash]")
    paid = payments * amount
    final = {node.name: network.chain.balance(node.address)
             for node in (alice, bob)}
    if final["alice"] != funds - paid or final["bob"] != funds + paid:
        violations.append(
            f"backup recovery paid {final}, expected "
            f"alice={funds - paid} bob={funds + paid}"
        )
    return {"cell": "committee_primary_loss", "balances": final,
            "violations": violations, "ok": not violations}


def summarise(cells: List[CellResult]) -> Dict[str, object]:
    """Compact JSON summary for sidecars and CI artifacts."""
    return {
        "cells": [cell.to_dict() for cell in cells],
        "total": len(cells),
        "ok": sum(1 for cell in cells if cell.ok),
        "failed": [f"{cell.role}/{cell.stage}" for cell in cells
                   if not cell.ok],
    }
