"""repro.faults — deterministic fault injection and crash recovery.

One :class:`FaultSchedule` drives both execution modes: the DES injector
replays it exactly (same seed ⇒ identical event trace), the live
injector approximately against real daemon processes.  The fault matrix
turns Algorithm 2's §5.1 case analysis into an executable sweep.  See
DESIGN.md's "Fault model" section for the mapping to the paper.
"""

from repro.faults.chain_cells import (
    ChainCellResult,
    run_all_chain_cells,
    run_deposit_double_spend_fork_cell,
    run_fee_spike_deferral_cell,
    run_settlement_reorg_cell,
)
from repro.faults.des import DesFaultInjector
from repro.faults.live import LiveFaultInjector
from repro.faults.matrix import (
    ROLE_STAGE_POINTS,
    ROLES,
    STAGES,
    CellResult,
    recovery_sweep,
    run_committee_member_loss,
    run_committee_primary_loss,
    run_crash_cell,
    run_matrix,
    summarise,
)
from repro.faults.schedule import (
    DES_KINDS,
    LIVE_KINDS,
    FaultKind,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "DES_KINDS",
    "LIVE_KINDS",
    "ROLES",
    "ROLE_STAGE_POINTS",
    "STAGES",
    "CellResult",
    "ChainCellResult",
    "DesFaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "LiveFaultInjector",
    "recovery_sweep",
    "run_all_chain_cells",
    "run_committee_member_loss",
    "run_committee_primary_loss",
    "run_crash_cell",
    "run_deposit_double_spend_fork_cell",
    "run_fee_spike_deferral_cell",
    "run_matrix",
    "run_settlement_reorg_cell",
    "summarise",
]
