"""Chain-realism fault cells: reorgs, fork double spends, fee spikes.

The crash matrix (:mod:`repro.faults.matrix`) exercises Algorithm 2
against *participant* failures; these cells exercise the protocol against
*chain* failures — the asynchronous-access adversary of §2.2 who cannot
forge blocks but can reorder which branch of a fork wins.  Each cell
drives a real two-party channel lifecycle on the DES, makes the chain
misbehave (a deep reorg under a confirmed settlement, a double-spend
winning at a fork, a fee spike crowding a settlement out of blocks), lets
the stack converge, and checks the invariants that must survive:

* **conservation** — ``utxos.total_value() == total_minted()`` exactly,
  with fees in play (fee coinbases claim moved value, they never mint);
* **first-spend-wins** — at most one spender of any outpoint is ever
  confirmed on the active chain (the property PoPTs rely on);
* **eventual settlement** — an orphaned settlement is re-broadcast from
  the mempool and confirms on the winning branch with the same txid;
* **payout integrity** — the settled on-chain balances equal the final
  channel balances, minus exactly the fees that were paid, which are
  claimed by miners and nobody else.

Every cell returns a :class:`ChainCellResult`; ``run_all_chain_cells``
sweeps them for the benchmark sidecar and the CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.blockchain.script import LockingScript
from repro.blockchain.transaction import (
    Transaction,
    TxInput,
    TxOutput,
    Witness,
)
from repro.core.node import TeechainNetwork, TeechainNode


@dataclass
class ChainCellResult:
    """Outcome of one chain-realism cell."""

    name: str
    reorg_depth: int
    violations: List[str] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "reorg_depth": self.reorg_depth,
            "violations": list(self.violations), "ok": self.ok,
            "details": dict(self.details),
        }


def _check_conservation(result: ChainCellResult,
                        network: TeechainNetwork) -> None:
    chain = network.chain
    utxo_total = chain.utxos.total_value()
    minted = chain.total_minted()
    if utxo_total != minted:
        result.violations.append(
            f"conservation broken: UTXO total {utxo_total} != "
            f"net minted {minted}"
        )
    result.details["utxo_total"] = utxo_total
    result.details["total_minted"] = minted
    result.details["fees_collected"] = chain.fees_collected()


def _channel_pair(funds: int, deposit: int):
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=funds)
    bob = network.create_node("bob", funds=funds)
    channel = alice.open_channel(bob)
    record_a = alice.create_deposit(deposit)
    alice.approve_and_associate(bob, record_a, channel)
    record_b = bob.create_deposit(deposit)
    bob.approve_and_associate(alice, record_b, channel)
    return network, alice, bob, channel


def _fork_from(network: TeechainNetwork, parent_hash: str,
               length: int) -> str:
    """Mine ``length`` deliberately empty blocks as a competing branch
    rooted at ``parent_hash``; returns the fork's tip hash.  Empty bodies
    keep the competing miner from simply re-confirming the very
    transactions the cell wants orphaned."""
    chain = network.chain
    cursor = parent_hash
    for _ in range(length):
        block = chain.mine_block(timestamp=network.scheduler.now,
                                 parent=cursor, transactions=())
        cursor = block.block_hash
    return cursor


def run_settlement_reorg_cell(*, depth: int = 2, funds: int = 100_000,
                              deposit: int = 40_000,
                              payments: int = 10,
                              amount: int = 500) -> ChainCellResult:
    """Settle a channel, then orphan the settlement under a depth-``depth``
    reorg.  The evicted settlement must return to the mempool, re-broadcast
    (receipt lifecycle), and re-confirm on the winning branch — same txid,
    same payouts, value conserved throughout."""
    result = ChainCellResult(name="settlement_reorg", reorg_depth=depth)
    network, alice, bob, channel = _channel_pair(funds, deposit)
    chain = network.chain

    for _ in range(payments):
        alice.pay(channel, amount)
    settlement = alice.settle(channel)
    if settlement is None:
        result.violations.append("settlement unexpectedly off-chain")
        return result
    network.run()          # deliver the broadcast to the mempool
    network.mine()         # confirm the settlement on branch A
    # Root the fork ``depth`` blocks below the tip, so the reorg unwinds
    # the settlement block and (depth-1) blocks of history under it.
    fork_parent = chain.blocks[-(depth + 1)].block_hash

    if chain.confirmations(settlement.txid) < 1:
        result.violations.append("settlement did not confirm on branch A")

    # A competing miner extends the pre-settlement block past our tip:
    # depth blocks are unwound, depth+1 connected, the settlement evicted.
    _fork_from(network, fork_parent, depth + 1)
    network.run()          # let the access layer re-broadcast the eviction

    if chain.reorg_count < 1:
        result.violations.append("no reorg was recorded")
    receipt = alice.client._receipts_by_txid.get(settlement.txid)
    if receipt is None or receipt.rebroadcasts < 1:
        result.violations.append(
            "orphaned settlement was never re-broadcast by the client")

    network.mine()         # winning branch mines the re-broadcast mempool
    confirmations = chain.confirmations(settlement.txid)
    if confirmations < 1:
        result.violations.append(
            f"settlement not re-confirmed after reorg "
            f"(confirmations={confirmations})"
        )

    expected_alice = funds - deposit + (deposit - payments * amount)
    expected_bob = funds - deposit + (deposit + payments * amount)
    balance_a = alice.onchain_balance()
    balance_b = bob.onchain_balance()
    if (balance_a, balance_b) != (expected_alice, expected_bob):
        result.violations.append(
            f"settled balances ({balance_a}, {balance_b}) != expected "
            f"({expected_alice}, {expected_bob})"
        )
    _check_conservation(result, network)
    result.details.update({
        "settlement_txid": settlement.txid,
        "confirmations": confirmations,
        "reorgs": chain.reorg_count,
        "rebroadcasts": receipt.rebroadcasts if receipt else 0,
    })
    return result


def _self_spend(node: TeechainNode, outpoint, value: int) -> Transaction:
    """A signed transaction returning ``outpoint`` to the node's own
    wallet — the classic double-spend arm raced against a deposit."""
    unsigned = Transaction(
        inputs=(TxInput(outpoint),),
        outputs=(TxOutput(value, LockingScript.pay_to_address(node.address)),),
    )
    witness = Witness(signatures=(node.wallet.private.sign(unsigned.sighash()),),
                      public_key=node.wallet.public)
    return unsigned.with_witnesses([witness])


def run_deposit_double_spend_fork_cell(*, funds: int = 100_000,
                                       deposit: int = 40_000
                                       ) -> ChainCellResult:
    """Race a funding deposit against a double spend of its own input at
    a fork.  The branch carrying the conflicting spend wins; the deposit
    must be dropped (not returned to the mempool — its input is gone), and
    exactly one spender of the contested outpoint stays confirmed."""
    result = ChainCellResult(name="deposit_double_spend_fork", reorg_depth=1)
    network = TeechainNetwork()
    alice = network.create_node("alice", funds=funds)
    network.create_node("bob", funds=funds)
    chain = network.chain

    fork_parent = chain.tip_hash
    record = alice.create_deposit(deposit)  # broadcast + mined on branch A
    funding_txid = record.outpoint.txid
    funding = chain.block_by_hash(chain.tip_hash).transactions[-1]
    contested = funding.inputs[0].outpoint

    if chain.confirmations(funding_txid) < 1:
        result.violations.append("deposit did not confirm on branch A")

    # The conflicting spend returns the whole contested output to alice
    # (zero fee, like the funding it races — the fork decides, not price).
    rival = _self_spend(alice, contested, funding.total_output_value())

    # Competing branch: rival confirmed instead of the funding tx, then
    # one more block so the fork outweighs branch A.
    rival_block = chain.mine_block(timestamp=network.scheduler.now,
                                   parent=fork_parent,
                                   transactions=(rival,))
    _fork_from(network, rival_block.block_hash, 1)
    network.run()

    if chain.confirmations(funding_txid) != 0:
        result.violations.append(
            "orphaned deposit still reports confirmations on the new branch")
    if chain.in_mempool(funding_txid):
        result.violations.append(
            "conflicted deposit returned to the mempool — it can never "
            "confirm and would wedge the queue")
    spender = chain.utxos.spender_of(contested)
    if spender != rival.txid:
        result.violations.append(
            f"contested outpoint spent by {spender!r}, expected the rival")
    if chain.contains(funding_txid) and chain.contains(rival.txid):
        result.violations.append(
            "both arms of the double spend confirmed — first-spend-wins "
            "broken")
    receipt = alice.client._receipts_by_txid.get(funding_txid)
    if receipt is not None and receipt.rejected is None:
        result.violations.append(
            "client receipt for the conflicted deposit was never rejected")

    # The deposit was never associated to a channel (it lost at depth 1,
    # below any sane confirmation threshold), so alice keeps everything.
    balance = alice.onchain_balance()
    if balance != funds:
        result.violations.append(
            f"alice's wallet is {balance}, expected {funds} after the "
            f"double spend returned her funds")
    _check_conservation(result, network)
    result.details.update({
        "funding_txid": funding_txid,
        "rival_txid": rival.txid,
        "reorgs": chain.reorg_count,
    })
    return result


def run_fee_spike_deferral_cell(*, funds: int = 100_000,
                                deposit: int = 40_000,
                                payments: int = 10, amount: int = 500,
                                block_limit: int = 2,
                                whale_txs: int = 4,
                                whale_fee: int = 2_000) -> ChainCellResult:
    """A fee spike under a binding block limit crowds a settlement out of
    the next block(s); it must confirm once the spike drains, and every
    fee paid must be claimed by a miner coinbase — none minted, none lost.
    """
    result = ChainCellResult(name="fee_spike_deferral", reorg_depth=0)
    network, alice, bob, channel = _channel_pair(funds, deposit)
    chain = network.chain
    chain.block_limit = block_limit
    whale = network.create_node("whale", funds=funds)

    for _ in range(payments):
        alice.pay(channel, amount)
    settlement = alice.settle(channel)
    if settlement is None:
        result.violations.append("settlement unexpectedly off-chain")
        return result
    network.run()
    if not chain.in_mempool(settlement.txid):
        result.violations.append("settlement never reached the mempool")

    # The spike: a chain of self-spends, each offering a fee that
    # out-bids the (zero-fee) settlement many times over.  Chaining off
    # one wallet output also exercises in-mempool parent resolution.
    entry = chain.outputs_for(whale.address)[0]
    outpoint, value = entry.outpoint, entry.value
    for _ in range(whale_txs):
        value -= whale_fee
        spend = Transaction(
            inputs=(TxInput(outpoint),),
            outputs=(TxOutput(value,
                              LockingScript.pay_to_address(whale.address)),),
        )
        witness = Witness(
            signatures=(whale.wallet.private.sign(spend.sighash()),),
            public_key=whale.wallet.public,
        )
        whale.client.broadcast(spend.with_witnesses([witness]))
        outpoint = spend.outpoint(0)
    network.run()

    estimate = chain.feerate_estimate()
    if estimate <= 0.0:
        result.violations.append(
            "feerate estimate shows no congestion despite the spike")

    blocks_deferred = 0
    network.mine()
    if chain.contains(settlement.txid):
        result.violations.append(
            "settlement entered the first spike block — the fee market "
            "did not defer it")
    while not chain.contains(settlement.txid):
        if blocks_deferred > whale_txs + 2:
            result.violations.append(
                "settlement never confirmed after the spike drained")
            break
        network.mine()
        blocks_deferred += 1

    # The zero-fee settlement is priced below every spike transaction, so
    # by the time it confirms the whole spike has been mined — and every
    # unit of fee it offered must sit in exactly one miner coinbase.
    fees_collected = chain.fees_collected()
    if fees_collected != whale_txs * whale_fee:
        result.violations.append(
            f"miners claimed {fees_collected} in fees, expected "
            f"{whale_txs * whale_fee}"
        )
    _check_conservation(result, network)
    result.details.update({
        "settlement_txid": settlement.txid,
        "blocks_deferred": blocks_deferred,
        "feerate_estimate": estimate,
        "whale_fee_total": whale_txs * whale_fee,
    })
    return result


def run_all_chain_cells(*, reorg_depth: int = 2) -> List[ChainCellResult]:
    """The full chain-realism sweep (benchmark sidecar + CI job)."""
    return [
        run_settlement_reorg_cell(depth=reorg_depth),
        run_deposit_double_spend_fork_cell(),
        run_fee_spike_deferral_cell(),
    ]
