"""Signed client-request types for the account hub.

Each request is a frozen dataclass naming the client's ``account``
public key and a per-account ``nonce``; clients wrap the body in a
:class:`~repro.core.messages.SignedMessage` signed with their own key
and hand the encoded bytes to the hub's host.  The enclave verifies the
signature against the ``account`` field and requires the nonce to be
strictly greater than the last accepted one, so the untrusted host and
control plane can neither forge nor replay a request (RouTEE's model:
the operator routes bytes, the TEE enforces balances).

These are wire types — registered with the runtime codec at tags 43–46
— so they must stay pure data with no runtime imports (the codec
imports this module while registering its schema).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import PublicKey

# Withdrawal routes (see DESIGN.md §12 "withdrawal rules"):
#   account — internal ledger move to another account (destination is
#             the recipient's 33-byte public key, hex).
#   channel — out over a real payment channel via the enclave's pay /
#             fastpath machinery (destination is a channel id); the
#             checkpoint is flushed so the move stands on a fresh
#             signature per the fast-path rules.
#   chain   — on-chain payout authorised by the enclave and executed by
#             the host wallet (destination is an on-chain address).
WITHDRAW_ROUTES = ("account", "channel", "chain")


@dataclass(frozen=True)
class AccountDeposit:
    """Open an account (first use) and/or credit it with ``amount``.

    The credit must be covered by the hub's channel/deposit holdings —
    the enclave refuses to owe clients more than it can pay out."""

    account: PublicKey
    amount: int
    nonce: int


@dataclass(frozen=True)
class AccountPay:
    """Move ``amount`` from ``account`` to ``recipient`` inside the hub
    ledger; the hub fee (if configured) is taken from the amount."""

    account: PublicKey
    recipient: PublicKey
    amount: int
    nonce: int


@dataclass(frozen=True)
class AccountWithdraw:
    """Move ``amount`` out of ``account`` via ``route`` (see
    :data:`WITHDRAW_ROUTES`) to ``destination``."""

    account: PublicKey
    amount: int
    nonce: int
    route: str = "account"
    destination: str = ""


@dataclass(frozen=True)
class AccountQuery:
    """Read an account's balance and last accepted nonce.

    Signed like every request (balances are private to the keyholder)
    but read-only: the nonce is not consumed, so a query can never
    invalidate an in-flight payment."""

    account: PublicKey
    nonce: int = 0
