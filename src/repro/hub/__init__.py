"""``repro.hub`` — a RouTEE-style account hub inside one enclave.

Teechain's evaluation makes every participant a full daemon with its
own enclave and channels; that architecture cannot reach millions of
users.  This package adds the missing tier (RouTEE, arXiv:2012.04254):
one TEE-backed hub multiplexes many lightweight *client accounts* over
a small set of real payment channels.  Clients hold only a keypair;
every deposit/pay/withdraw is an ECDSA-signed, nonce-protected request
verified *inside* the enclave, so the hub's host and control plane stay
untrusted — they can drop or delay requests but cannot forge, replay,
or silently skim them (DESIGN.md §12).

Layering: ``messages`` is pure dataclasses (imported by the wire codec
at registration time), ``ledger`` is the in-enclave state machine mixed
into :class:`~repro.core.multihop.TeechainEnclave`, and ``client`` is
the host-side signing client that talks to the daemon's control plane.
"""

from repro.hub.ledger import AccountLedger, HubAccountsMixin
from repro.hub.messages import (
    AccountDeposit,
    AccountPay,
    AccountQuery,
    AccountWithdraw,
)

__all__ = [
    "AccountDeposit",
    "AccountLedger",
    "AccountPay",
    "AccountQuery",
    "AccountWithdraw",
    "HubAccountsMixin",
]
