"""The in-enclave account ledger and its enclave-program mixin.

:class:`AccountLedger` is pure state: client pubkey → balance, the last
accepted nonce per account, the hub's fee bucket, and running deposit/
withdrawal totals.  Its conservation invariant —

    sum(account balances) + fee bucket == deposited − withdrawn

— is re-checked inside the enclave before every mutating request, so a
host that reaches into the (in a real deployment, encrypted) ledger and
edits a balance is detected on the next operation rather than silently
paid out.  Solvency — liabilities never exceed the hub's channel and
free-deposit holdings — is enforced at deposit time, so the enclave
never owes clients more than the channels/deposits it controls can pay.

:class:`HubAccountsMixin` is mixed into
:class:`~repro.core.multihop.TeechainEnclave` and adds the ecall
surface: ``hub_handle_request`` (one signed request), ``hub_handle_batch``
(many, with per-item results), ``hub_stats`` (read-only),
``hub_set_fee``, and ``hub_refund_payout`` (compensation for a chain
payout the host could not execute).  Signature and nonce verification
happen here, inside the enclave — the untrusted host only shuttles
encoded bytes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.messages import SignedMessage
from repro.crypto.keys import PublicKey
from repro.errors import (
    AccountFundsError,
    AccountNonceError,
    HubError,
    LedgerTamperError,
    MessageAuthenticationError,
    NoSuchAccountError,
    ReplicationError,
)
from repro.hub.messages import (
    WITHDRAW_ROUTES,
    AccountDeposit,
    AccountPay,
    AccountQuery,
    AccountWithdraw,
)
from repro.obs import get_metrics


class AccountLedger:
    """Account table living inside the hub enclave.

    Keys are the 33-byte compressed client public keys; values are plain
    integers, so the whole ledger deep-copies cheaply for the ecall
    rollback guard and pickles into the sealed replication blob.
    """

    def __init__(self) -> None:
        self.balances: Dict[bytes, int] = {}
        # Last *accepted* nonce per account; a request is accepted only
        # with a strictly greater nonce, and the nonce advances in the
        # same mutation as the balance change (so a crash/rollback can
        # never leave a spent nonce reusable).
        self.nonces: Dict[bytes, int] = {}
        self.fee_per_pay = 0
        self.fee_bucket = 0
        self.deposited_total = 0
        # External withdrawals only (channel + chain routes); internal
        # account-to-account moves conserve liabilities.
        self.withdrawn_total = 0
        # Chain-route slice of withdrawn_total, and how much of it the
        # host has yet to execute (authorise-then-execute leaves a
        # window between the ledger debit and the wallet payout).  Both
        # advance inside the withdraw ecall; ``hub_payout_done`` retires
        # the pending amount once the payout is on chain, so an auditor
        # can tell an in-flight payout from one the host is withholding.
        self.withdrawn_onchain = 0
        self.payout_pending = 0
        self.pays = 0

    def liabilities(self) -> int:
        """Everything the hub owes: client balances plus collected fees."""
        return sum(self.balances.values()) + self.fee_bucket

    def conserved(self) -> bool:
        return self.liabilities() == self.deposited_total - self.withdrawn_total

    def to_state(self) -> Dict[str, Any]:
        return {
            "balances": dict(self.balances),
            "nonces": dict(self.nonces),
            "fee_per_pay": self.fee_per_pay,
            "fee_bucket": self.fee_bucket,
            "deposited_total": self.deposited_total,
            "withdrawn_total": self.withdrawn_total,
            "withdrawn_onchain": self.withdrawn_onchain,
            "payout_pending": self.payout_pending,
            "pays": self.pays,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "AccountLedger":
        ledger = cls()
        ledger.balances = dict(state.get("balances", {}))
        ledger.nonces = dict(state.get("nonces", {}))
        ledger.fee_per_pay = state.get("fee_per_pay", 0)
        ledger.fee_bucket = state.get("fee_bucket", 0)
        ledger.deposited_total = state.get("deposited_total", 0)
        ledger.withdrawn_total = state.get("withdrawn_total", 0)
        ledger.withdrawn_onchain = state.get("withdrawn_onchain", 0)
        ledger.payout_pending = state.get("payout_pending", 0)
        ledger.pays = state.get("pays", 0)
        return ledger


class HubAccountsMixin:
    """Account-multiplexing ecalls for a channel-protocol enclave.

    Relies on the :class:`~repro.core.channel_base.ChannelProtocol`
    surface later in the MRO: ``channels``, ``deposits``, ``pay``,
    ``_flush_checkpoint``, and ``_replicated``.
    """

    _HUB_HANDLER_NAMES = {
        AccountDeposit: "_hub_deposit",
        AccountPay: "_hub_pay",
        AccountWithdraw: "_hub_withdraw",
        AccountQuery: "_hub_query",
    }

    def __init__(self) -> None:
        super().__init__()
        self.hub = AccountLedger()

    # ------------------------------------------------------------------
    # Ecall surface
    # ------------------------------------------------------------------

    def hub_handle_request(self, signed: SignedMessage) -> Dict[str, Any]:
        """Verify and apply one signed account request (see module doc)."""
        return self._hub_apply(signed)

    def hub_handle_batch(self, requests: List[SignedMessage]
                         ) -> List[Dict[str, Any]]:
        """Apply many requests in order, independently: one bad request
        is rejected in place (with its stable error code) without
        aborting the rest — the batch verb exists to amortise control
        round-trips, not to add transactional semantics.

        The one exception is a replication failure: by the time
        ``_replicated`` raises, the item has already mutated the ledger,
        and only the ecall rollback guard can undo that.  Reporting the
        item as rejected would swallow the exception the guard keys on,
        leaving the pay applied (and its nonce consumed) while the
        client is told it failed — a retry would then double-spend.  So
        replication failures abort the whole batch: the guard restores
        the pre-batch state and the caller resubmits everything."""
        from repro.runtime.registry import code_for_exception

        results: List[Dict[str, Any]] = []
        for signed in requests:
            try:
                results.append({"ok": True, **self._hub_apply(signed)})
            except ReplicationError:
                raise  # Alg. 3: no effect without the backup's ack
            except Exception as exc:  # rejected item, not a crashed batch
                results.append({"ok": False,
                                "code": code_for_exception(exc),
                                "error": str(exc)})
        return results

    def hub_stats(self) -> Dict[str, Any]:
        """Read-only ledger summary (conservation + solvency checks)."""
        liabilities = self.hub.liabilities()
        backing = self._hub_backing()
        return {
            "accounts": len(self.hub.balances),
            "total_balance": sum(self.hub.balances.values()),
            "fee_bucket": self.hub.fee_bucket,
            "fee_per_pay": self.hub.fee_per_pay,
            "deposited_total": self.hub.deposited_total,
            "withdrawn_total": self.hub.withdrawn_total,
            "withdrawn_onchain": self.hub.withdrawn_onchain,
            "payout_pending": self.hub.payout_pending,
            "pays": self.hub.pays,
            "liabilities": liabilities,
            "backing": backing,
            "conserved": self.hub.conserved(),
            "solvent": liabilities <= backing,
        }

    def hub_set_fee(self, fee_per_pay: int) -> Dict[str, Any]:
        if fee_per_pay < 0:
            raise HubError(f"fee must be >= 0, got {fee_per_pay}")
        self.hub.fee_per_pay = int(fee_per_pay)
        self._replicated(f"hub_set_fee:{fee_per_pay}")
        return {"fee_per_pay": self.hub.fee_per_pay}

    def hub_refund_payout(self, account_hex: str,
                          amount: int) -> Dict[str, Any]:
        """Compensate a chain withdrawal whose host-side payout failed.

        The chain route is authorise-then-execute: the enclave debits,
        the host builds/broadcasts the wallet transaction.  When that
        execution fails (wallet UTXOs short, broadcast rejected) the
        host calls back in here to re-credit the account, so the debit
        is a clean rejection instead of burned funds.  The nonce stays
        consumed — replay protection is untouched; the client retries
        with a fresh nonce.

        The host is trusted only for payout *liveness* (it can always
        withhold broadcasts, here as everywhere in Teechain's model); a
        dishonest refund claim cannot mint value — the refund can never
        exceed what external withdrawals actually debited, conservation
        still holds, and every reversal is metered
        (``hub.payout_refunds``) and auditable against the replicated
        chain, where the payout, had it happened, would be visible."""
        if amount <= 0:
            raise HubError(f"refund amount must be positive, got {amount}")
        try:
            key = bytes.fromhex(account_hex)
        except ValueError:
            raise HubError("refund account must be a hex-encoded public "
                           "key") from None
        if key not in self.hub.balances:
            raise NoSuchAccountError(
                f"no account {key.hex()[:12]}… at this hub")
        if amount > self.hub.withdrawn_total:
            raise HubError(
                f"refund of {amount} exceeds the {self.hub.withdrawn_total} "
                "ever withdrawn externally — refused (a refund must "
                "reverse a real debit, not mint liabilities)")
        if amount > self.hub.payout_pending:
            raise HubError(
                f"refund of {amount} exceeds the {self.hub.payout_pending} "
                "still pending host execution — refused (only an "
                "unexecuted chain payout can fail and be refunded)")
        self._hub_check_conserved()
        self.hub.balances[key] += amount
        self.hub.withdrawn_total -= amount
        self.hub.withdrawn_onchain -= amount
        self.hub.payout_pending -= amount
        get_metrics().inc("hub.payout_refunds")
        self._replicated(
            f"hub_refund_payout:{key.hex()[:12]}:{amount}")
        return {"account": key.hex(), "amount": amount,
                "balance": self.hub.balances[key]}

    def hub_payout_done(self, amount: int) -> Dict[str, Any]:
        """Retire a pending chain payout the host has executed.

        Closes the authorise-then-execute window opened by a chain-route
        withdrawal: the host calls back in once the wallet transaction
        is mined, and ``payout_pending`` drops by the executed amount.
        Pure bookkeeping for the audit plane — balances and totals are
        untouched, so no conservation property moves — but it is what
        lets `repro.obs` distinguish an in-flight payout (pending for
        one sweep) from a withheld one (pending forever)."""
        if amount <= 0:
            raise HubError(f"payout amount must be positive, got {amount}")
        if amount > self.hub.payout_pending:
            raise HubError(
                f"payout completion of {amount} exceeds the "
                f"{self.hub.payout_pending} outstanding — refused")
        self.hub.payout_pending -= amount
        self._replicated(f"hub_payout_done:{amount}")
        return {"payout_pending": self.hub.payout_pending}

    # ------------------------------------------------------------------
    # Verification and dispatch
    # ------------------------------------------------------------------

    def _hub_backing(self) -> int:
        """What the hub can actually pay out: its side of every open
        channel plus unassociated (free) deposits."""
        backing = sum(
            channel.my_balance for channel in self.channels.values()
            if channel.is_open and not channel.terminated
        )
        backing += sum(record.value for record in self.deposits.values()
                       if record.is_free)
        return backing

    def _hub_check_conserved(self) -> None:
        if not self.hub.conserved():
            get_metrics().inc("hub.rejected_tamper")
            raise LedgerTamperError(
                f"ledger conservation violated: liabilities "
                f"{self.hub.liabilities()} != deposited "
                f"{self.hub.deposited_total} - withdrawn "
                f"{self.hub.withdrawn_total} — hub state was modified "
                f"outside the request protocol"
            )

    def _hub_apply(self, signed: SignedMessage) -> Dict[str, Any]:
        if not isinstance(signed, SignedMessage):
            raise HubError("account requests must arrive as SignedMessage")
        body = signed.body
        handler = self._HUB_HANDLER_NAMES.get(type(body))
        if handler is None:
            raise HubError(
                f"{type(body).__name__} is not an account request")
        account = body.account
        if not isinstance(account, PublicKey):
            raise HubError("request carries no account public key")
        try:
            # The client key inside the request must also be the signer:
            # the host cannot splice a victim's account onto its own
            # signature, and a flipped bit anywhere breaks the ECDSA
            # check over the canonical body bytes.
            signed.verify(expected_sender=account)
        except MessageAuthenticationError:
            get_metrics().inc("hub.rejected_sigs")
            raise
        key = account.to_bytes()
        if not isinstance(body, AccountQuery):
            self._hub_check_conserved()
            last = self.hub.nonces.get(key, 0)
            if body.nonce <= last:
                get_metrics().inc("hub.rejected_nonces")
                raise AccountNonceError(
                    f"nonce {body.nonce} <= last accepted {last} for "
                    f"account {key.hex()[:12]}… (replay?)")
        return getattr(self, handler)(key, body)

    def _hub_commit(self, key: bytes, nonce: int, description: str) -> None:
        """Advance the account nonce and run the replication/persistence
        barrier — one atomic step with the handler's balance mutation
        (the ecall rollback guard snapshots ``hub`` wholesale)."""
        self.hub.nonces[key] = nonce
        self._replicated(description)

    # ------------------------------------------------------------------
    # Request handlers (called with signature + nonce already verified)
    # ------------------------------------------------------------------

    def _hub_deposit(self, key: bytes, body: AccountDeposit) -> Dict[str, Any]:
        if body.amount < 0:
            raise HubError(f"deposit amount must be >= 0, got {body.amount}")
        backing = self._hub_backing()
        if self.hub.liabilities() + body.amount > backing:
            get_metrics().inc("hub.rejected_funds")
            raise AccountFundsError(
                f"deposit of {body.amount} would raise hub liabilities to "
                f"{self.hub.liabilities() + body.amount}, above its "
                f"channel/deposit backing of {backing}")
        created = key not in self.hub.balances
        if created:
            self.hub.balances[key] = 0
            get_metrics().inc("hub.accounts")
        self.hub.balances[key] += body.amount
        self.hub.deposited_total += body.amount
        self._hub_commit(key, body.nonce,
                         f"account_deposit:{key.hex()[:12]}:{body.amount}")
        return {"account": key.hex(), "created": created,
                "balance": self.hub.balances[key], "nonce": body.nonce}

    def _hub_pay(self, key: bytes, body: AccountPay) -> Dict[str, Any]:
        if body.amount <= 0:
            raise HubError(f"amount must be positive, got {body.amount}")
        if not isinstance(body.recipient, PublicKey):
            raise HubError("pay request carries no recipient public key")
        balance = self.hub.balances.get(key)
        if balance is None:
            raise NoSuchAccountError(
                f"no account {key.hex()[:12]}… at this hub")
        recipient = body.recipient.to_bytes()
        if recipient not in self.hub.balances:
            raise NoSuchAccountError(
                f"no recipient account {recipient.hex()[:12]}… at this hub")
        fee = self.hub.fee_per_pay
        if fee and body.amount <= fee:
            raise HubError(
                f"amount {body.amount} does not exceed the hub fee {fee}")
        if balance < body.amount:
            get_metrics().inc("hub.rejected_funds")
            raise AccountFundsError(
                f"account {key.hex()[:12]}… holds {balance}, "
                f"cannot pay {body.amount}")
        self.hub.balances[key] = balance - body.amount
        self.hub.balances[recipient] += body.amount - fee
        self.hub.fee_bucket += fee
        self.hub.pays += 1
        get_metrics().inc("hub.account_pays")
        self._hub_commit(key, body.nonce,
                         f"account_pay:{key.hex()[:12]}:{body.amount}")
        return {"account": key.hex(), "recipient": recipient.hex(),
                "amount": body.amount, "fee": fee,
                "balance": self.hub.balances[key], "nonce": body.nonce}

    def _hub_withdraw(self, key: bytes,
                      body: AccountWithdraw) -> Dict[str, Any]:
        if body.amount <= 0:
            raise HubError(f"amount must be positive, got {body.amount}")
        if body.route not in WITHDRAW_ROUTES:
            raise HubError(
                f"unknown withdrawal route {body.route!r} "
                f"(one of: {', '.join(WITHDRAW_ROUTES)})")
        balance = self.hub.balances.get(key)
        if balance is None:
            raise NoSuchAccountError(
                f"no account {key.hex()[:12]}… at this hub")
        if balance < body.amount:
            get_metrics().inc("hub.rejected_funds")
            raise AccountFundsError(
                f"account {key.hex()[:12]}… holds {balance}, "
                f"cannot withdraw {body.amount}")
        result: Dict[str, Any] = {"account": key.hex(), "route": body.route,
                                  "amount": body.amount, "nonce": body.nonce,
                                  "destination": body.destination}
        if body.route == "account":
            try:
                destination = bytes.fromhex(body.destination)
            except ValueError:
                raise HubError("account-route destination must be the "
                               "recipient public key, hex-encoded") from None
            if destination not in self.hub.balances:
                raise NoSuchAccountError(
                    f"no account {destination.hex()[:12]}… at this hub")
            self.hub.balances[key] = balance - body.amount
            self.hub.balances[destination] += body.amount
        elif body.route == "channel":
            # Existing channel machinery does the heavy lifting: pay()
            # validates the channel (open, idle, sufficient hub balance)
            # and raises before any ledger mutation; the forced
            # checkpoint flush pins the withdrawal to a fresh signed
            # state per the fast-path rules, like every other external
            # fund move.  The ecall guard only rolls back on replication
            # failure, so any *other* failure after pay() has moved
            # channel funds and queued frames must be unwound here —
            # otherwise the channel has paid out while the account is
            # still credited, and the client can withdraw again.
            snapshot = self._rollback_snapshot()
            try:
                self.pay(body.destination, body.amount)
                self._flush_checkpoint(body.destination)
            except ReplicationError:
                raise  # the ecall guard restores the same snapshot
            except Exception:
                self._rollback(snapshot)
                raise
            self.hub.balances[key] = balance - body.amount
            self.hub.withdrawn_total += body.amount
        else:  # chain
            if not body.destination:
                raise HubError("chain withdrawal needs a destination address")
            # The enclave authorises; the host executes the wallet
            # transfer (observable on the replicated chain, so a client
            # can audit that the payout actually happened).
            self.hub.balances[key] = balance - body.amount
            self.hub.withdrawn_total += body.amount
            self.hub.withdrawn_onchain += body.amount
            self.hub.payout_pending += body.amount
            result["address"] = body.destination
        result["balance"] = self.hub.balances[key]
        self._hub_commit(key, body.nonce,
                         f"account_withdraw:{body.route}:{body.amount}")
        return result

    def _hub_query(self, key: bytes, body: AccountQuery) -> Dict[str, Any]:
        balance = self.hub.balances.get(key)
        return {"account": key.hex(), "exists": balance is not None,
                "balance": 0 if balance is None else balance,
                "nonce": self.hub.nonces.get(key, 0)}
