"""Thin hub clients: a keypair, a control connection, and a nonce.

A hub client is *not* a daemon — it holds no enclave, no channels, no
chain view.  It signs account requests with its own key, hex-encodes
them, and submits them through the hub daemon's control plane; all
verification happens inside the hub's enclave, so the client needs to
trust neither the transport nor the hub's host.

:class:`HubClient` mirrors :class:`~repro.runtime.control.ControlClient`
(blocking sockets, context manager); :class:`AsyncHubClient` mirrors
:class:`~repro.runtime.control.AsyncControlClient` for asyncio callers
like the ``repro.load`` generators.

Nonces are tracked client-side: on first use the client asks the hub
for the last accepted nonce (a signed, read-only query), then counts
upward — so a restarted client resynchronises instead of replaying.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.hub.messages import (
    AccountDeposit,
    AccountPay,
    AccountQuery,
    AccountWithdraw,
)
from repro.core.messages import SignedMessage
from repro.runtime import codec
from repro.runtime.control import AsyncControlClient, ControlClient

RecipientRef = Union[PublicKey, "HubClient", "AsyncHubClient", str]


def sign_request(body: Any, private: PrivateKey) -> str:
    """Sign an account request body and hex-encode it for the control
    plane (line-JSON carries no raw bytes)."""
    return codec.encode(SignedMessage.create(body, private)).hex()


def decode_request(request_hex: str) -> SignedMessage:
    """Decode a hex control-plane request back into its signed message.

    Raises :class:`~repro.runtime.codec.CodecError` (or ``ValueError``
    for non-hex input) — daemon callers map both to ``bad_request``."""
    signed = codec.decode(bytes.fromhex(request_hex))
    if not isinstance(signed, SignedMessage):
        raise codec.CodecError(
            f"expected a SignedMessage, got {type(signed).__name__}")
    return signed


def _recipient_key(recipient: RecipientRef) -> PublicKey:
    if isinstance(recipient, PublicKey):
        return recipient
    if isinstance(recipient, (HubClient, AsyncHubClient)):
        return recipient.account
    return PublicKey.from_bytes(bytes.fromhex(recipient))


class _RequestSigner:
    """Nonce bookkeeping + request construction shared by both clients."""

    def __init__(self, keypair: Optional[KeyPair] = None,
                 seed: Optional[bytes] = None) -> None:
        if keypair is None:
            keypair = (KeyPair.from_seed(seed) if seed is not None
                       else KeyPair.generate())
        self.keypair = keypair
        self._nonce: Optional[int] = None

    @property
    def account(self) -> PublicKey:
        return self.keypair.public

    @property
    def account_hex(self) -> str:
        return self.keypair.public.to_bytes().hex()

    def sync_nonce(self, last_accepted: int) -> None:
        self._nonce = int(last_accepted)

    def next_nonce(self) -> int:
        if self._nonce is None:
            raise RuntimeError("nonce not synchronised")  # guarded by callers
        self._nonce += 1
        return self._nonce

    def deposit_request(self, amount: int) -> str:
        return sign_request(
            AccountDeposit(self.account, amount, self.next_nonce()),
            self.keypair.private)

    def pay_request(self, recipient: RecipientRef, amount: int) -> str:
        return sign_request(
            AccountPay(self.account, _recipient_key(recipient), amount,
                       self.next_nonce()),
            self.keypair.private)

    def withdraw_request(self, amount: int, route: str,
                         destination: str) -> str:
        return sign_request(
            AccountWithdraw(self.account, amount, self.next_nonce(),
                            route, destination),
            self.keypair.private)

    def query_request(self) -> str:
        return sign_request(AccountQuery(self.account), self.keypair.private)


class HubClient(_RequestSigner):
    """Blocking hub client: one keypair over one control connection."""

    def __init__(self, host: str, port: int,
                 keypair: Optional[KeyPair] = None,
                 seed: Optional[bytes] = None,
                 timeout: float = 120.0) -> None:
        super().__init__(keypair, seed)
        self.control = ControlClient(host, port, timeout=timeout)

    def close(self) -> None:
        self.control.close()

    def __enter__(self) -> "HubClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_nonce(self) -> None:
        if self._nonce is None:
            self.sync_nonce(self.query()["nonce"])

    def query(self) -> Dict[str, Any]:
        return self.control.call("account-query",
                                 request=self.query_request())

    def open(self, amount: int = 0) -> Dict[str, Any]:
        """Open the account (idempotent at amount=0) / credit it."""
        self._ensure_nonce()
        return self.control.call("account-open",
                                 request=self.deposit_request(amount))

    def pay(self, recipient: RecipientRef, amount: int) -> Dict[str, Any]:
        self._ensure_nonce()
        return self.control.call("account-pay",
                                 request=self.pay_request(recipient, amount))

    def withdraw(self, amount: int, route: str = "account",
                 destination: str = "") -> Dict[str, Any]:
        self._ensure_nonce()
        return self.control.call(
            "account-withdraw",
            request=self.withdraw_request(amount, route, destination))

    def balance(self) -> int:
        return self.query()["balance"]


class AsyncHubClient(_RequestSigner):
    """Asyncio hub client (one control connection, like its sync twin)."""

    def __init__(self, control: AsyncControlClient,
                 keypair: Optional[KeyPair] = None,
                 seed: Optional[bytes] = None) -> None:
        super().__init__(keypair, seed)
        self.control = control

    @classmethod
    async def connect(cls, host: str, port: int,
                      keypair: Optional[KeyPair] = None,
                      seed: Optional[bytes] = None,
                      timeout: float = 120.0) -> "AsyncHubClient":
        control = await AsyncControlClient.connect(host, port,
                                                   timeout=timeout)
        return cls(control, keypair, seed)

    async def close(self) -> None:
        await self.control.close()

    async def _ensure_nonce(self) -> None:
        if self._nonce is None:
            self.sync_nonce((await self.query())["nonce"])

    async def query(self) -> Dict[str, Any]:
        return await self.control.call("account-query",
                                       request=self.query_request())

    async def open(self, amount: int = 0) -> Dict[str, Any]:
        await self._ensure_nonce()
        return await self.control.call("account-open",
                                       request=self.deposit_request(amount))

    async def pay(self, recipient: RecipientRef,
                  amount: int) -> Dict[str, Any]:
        await self._ensure_nonce()
        return await self.control.call(
            "account-pay", request=self.pay_request(recipient, amount))

    async def withdraw(self, amount: int, route: str = "account",
                       destination: str = "") -> Dict[str, Any]:
        await self._ensure_nonce()
        return await self.control.call(
            "account-withdraw",
            request=self.withdraw_request(amount, route, destination))

    async def balance(self) -> int:
        return (await self.query())["balance"]
