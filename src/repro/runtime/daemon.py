"""The node daemon: one Teechain participant as a networked process.

A :class:`NodeDaemon` hosts a :class:`~repro.core.node.TeechainNode`
unchanged — same enclave, same protocol code — and supplies the live
versions of everything the simulator provided for free:

* **time** — a :class:`~repro.runtime.wallclock.WallClockScheduler`;
* **transport** — an :class:`~repro.runtime.transport.AsyncTcpNetwork`,
  with peer handshakes that exchange attestation quotes so secure
  channels are derived without both enclaves in one process;
* **the blockchain** — every daemon holds a replica of the simulated
  chain, made identical by construction (deterministic genesis from the
  shared ``--fund`` allocation) and *converged* by gossip: transactions
  flood as :class:`ChainTx`, mined blocks flood as full
  :class:`ChainBlock` bodies, and a daemon that receives a block it
  cannot attach walks the sender's hash chain backwards with
  :class:`ChainRequest` until the histories connect — two daemons that
  mine concurrently genuinely fork, then heaviest-chain fork choice
  reorganises the loser, returning its evicted settlements to the
  mempool where the submit-gossip path re-broadcasts them;
* **a control plane** — a line-JSON TCP API (one request object per
  line, one response per line) driven by the CLI, tests, and benchmarks.
  Commands are declared once in a typed registry
  (:mod:`repro.runtime.registry`); dispatch, validation, ``help`` output
  and stable error ``code`` fields all derive from the declarations.
* **stable storage** — with ``state_dir`` set, every protocol state
  change is sealed to disk bound to a persisted monotonic counter
  (paper §6.2, via :class:`~repro.core.persistence.PersistentStore` and
  :class:`~repro.runtime.recovery.DaemonStateStore`).  A daemon
  SIGKILLed mid-payment restarts from its sealed snapshot, replays its
  chain, re-handshakes with peers, and settles the exact balances.

Ordering is the delicate part of channel opening over real sockets:
secure-channel replay counters forbid redelivering an envelope, so the
initiator's ``new_pay_channel`` ecall runs *without* pumping its outbox —
the acknowledgement is held until the responder's own ack arrives (the
per-peer FIFO guarantees the responder created its channel record first),
at which point the delivery path's pump flushes it.  A real host would
buffer the early ack; deferring the pump models that without a retry
queue.

Handshakes carry a per-boot session nonce: both sides hash the two
nonces order-independently into the secure-channel key derivation, so a
restarted endpoint (fresh nonce, replay counters lost with enclave
memory) triggers a key renewal via the ``reinstall_secure_channel``
ecall, while a benign TCP reconnect within the same boot pair computes
the same salt and keeps the existing channel and counters.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.blockchain.chain import Blockchain
from repro.blockchain.script import LockingScript
from repro.blockchain.transaction import Transaction, build_p2pkh_transfer
from repro.core.batching import PaymentBatcher
from repro.core.deposits import DepositRecord
from repro.core.messages import SignedMessage
from repro.core.node import TeechainNetwork, TeechainNode
from repro.core.persistence import PersistentStore
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import BlockchainError, ReproError, RoutingError
from repro.hub import messages as hub_messages
from repro.network.secure_channel import channel_from_quote
from repro.obs import (
    NO_TRACE,
    MetricsRegistry,
    Tracer,
    op_span,
    prometheus_text,
    set_metrics,
    set_tracer,
    summarize_samples,
)
from repro.obs.collector import TelemetryCollector
from repro.runtime.messages import (
    ChainBlock,
    ChainMine,
    ChainRequest,
    ChainTx,
    Echo,
    Hello,
    HelloAck,
    OpenChannel,
    OpenChannelOk,
)
from repro.runtime import codec
from repro.runtime.control import CONTROL_LINE_LIMIT
from repro.runtime.recovery import DaemonStateStore, chain_snapshot, replay_chain
from repro.runtime.registry import (
    CommandError,
    CommandRegistry,
    Param,
    code_for_exception,
)
from repro.routing import (
    ChannelAnnounce,
    ChannelUpdate,
    GossipEngine,
    RoutePlanner,
    TopologyView,
)
from repro.runtime.transport import AsyncTcpNetwork
from repro.runtime.wallclock import WallClockScheduler
from repro.tee.compromise import crash_enclave

logger = logging.getLogger(__name__)

#: The daemon's control-command table.  Every command is declared here by
#: decorating its handler; there is no dispatch if/elif anywhere.
COMMANDS = CommandRegistry()


def make_genesis(chain: Blockchain, allocations: Dict[str, int]) -> None:
    """Mint the shared genesis block.

    Every daemon is started with the same ``--fund`` allocation and
    wallets are seed-derived from node names, so minting in sorted-name
    order produces byte-identical coinbases (same nonces, same txids) in
    every process — the replicas agree from block 1 without any exchange.
    """
    for name in sorted(allocations):
        wallet = KeyPair.from_seed(f"wallet:{name}".encode())
        chain.mint(LockingScript.pay_to_address(wallet.address()),
                   allocations[name])
    chain.mine_block(timestamp=0.0)


class NodeDaemon:
    """One live Teechain participant plus its control server."""

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        allocations: Optional[Dict[str, int]] = None,
        state_dir: Optional[str] = None,
        trace: Optional[bool] = None,
    ) -> None:
        self.name = name
        self.allocations = dict(allocations or {})
        # Installed before any component caches get_metrics().
        self.metrics = MetricsRegistry()
        set_metrics(self.metrics)

        self.scheduler = WallClockScheduler()
        # Causal tracing is opt-in (--trace / REPRO_TRACE=1): the tracer
        # is stamped with the scheduler clock — the same clock handshake
        # skew offsets are measured against, so repro.obs.merge can place
        # this daemon's spans on a shared timeline.
        if trace is None:
            trace = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        self.trace_enabled = bool(trace)
        self.tracer: Tracer = NO_TRACE
        if self.trace_enabled:
            self.tracer = Tracer(now=lambda: self.scheduler.now)
            set_tracer(self.tracer)
        self.collector = TelemetryCollector(
            name, self.tracer, self.metrics,
            now=lambda: self.scheduler.now,
        )
        chain = Blockchain()
        make_genesis(chain, self.allocations)
        self.net = AsyncTcpNetwork(name, host=host, port=port)
        self.net.clock = lambda: self.scheduler.now
        self.network = TeechainNetwork(
            transport=self.net, scheduler=self.scheduler, chain=chain
        )
        self.node: TeechainNode = self.network.create_node(name)
        # After genesis (which every daemon must mine byte-identically):
        # blocks mined *here* pay their fees to this daemon's wallet.
        chain.fee_address = self.node.address
        for participant, amount in self.allocations.items():
            self.network.tracker.register(participant, amount)

        self.control_host = host
        self.control_port = control_port
        self._control_server: Optional[asyncio.AbstractServer] = None

        # Fresh per boot: mixed into secure-channel key derivation so
        # peers can tell a restart (new keys needed) from a reconnect.
        self._session_nonce = os.urandom(16)

        self._peer_keys: Dict[str, PublicKey] = {}
        self._peer_addresses: Dict[str, str] = {}

        # Routing gossip (repro.routing): a fresh per-boot gossip key —
        # deliberately NOT the seed-derived wallet key, which anyone can
        # recompute from the node name.  Peers pin it from the
        # handshake's topo_key field; everyone further away is
        # trust-on-first-use.  The planner reads the gossip-fed view and
        # is the only route-selection code (``pay-multihop dest=``).
        self.topology = TopologyView()
        self.gossip = GossipEngine(name, KeyPair.generate(), self.topology,
                                   metrics=self.metrics)
        self.planner = RoutePlanner(self.topology, metrics=self.metrics)
        self._announced_channels: set = set()
        self._pending_opens: Dict[str, asyncio.Event] = {}
        self._echo_futures: Dict[int, asyncio.Future] = {}
        self._echo_seq = 0
        self._opening = 0
        self._applying_remote = False
        self._deposits: Dict[str, DepositRecord] = {}
        self._shutdown = asyncio.Event()
        self._pump_task: Optional[asyncio.Task] = None

        # §7.2 client-side batching, configured by the ``batch-window``
        # control verb.  The batcher is created on first enable and kept
        # thereafter (its counters are cumulative); ``batch_window_s``
        # gates whether ``pay`` routes through it.  Its flush timer runs
        # on the wall-clock scheduler, i.e. the asyncio loop.
        self.batcher: Optional[PaymentBatcher] = None
        self.batch_window_s = 0.0

        # Session-MAC fast path (the ``fastpath`` control verb): the T-ms
        # half of the checkpoint policy runs here as an asyncio timer —
        # enclaves have no clock of their own, so the host triggers the
        # periodic ``checkpoint_all`` ecall and ships what it emits.
        self.checkpoint_ms = 0
        self._checkpoint_task: Optional[asyncio.Task] = None

        # Stable storage (paper §6.2), gated on state_dir.  Restore runs
        # before the gossip subscriptions below: chain replay is local
        # history, not news to rebroadcast.
        self.state: Optional[DaemonStateStore] = None
        self.pstore: Optional[PersistentStore] = None
        self.restored = False
        if state_dir:
            self.state = DaemonStateStore(state_dir, name)
            self._setup_persistence()

        self.net.hello_factory = self._make_hello
        self.net.hello_handler = self._on_hello
        self.net.hello_ack_handler = self._on_hello_ack
        self.net.control_handler = self._on_control
        chain.subscribe_submit(self._gossip_submit)
        chain.subscribe(self._gossip_block)
        chain.subscribe_reorg(self._on_reorg)

    # ------------------------------------------------------------------
    # Stable storage
    # ------------------------------------------------------------------

    def _setup_persistence(self) -> None:
        """Wire sealed-state persistence; restore a prior boot's state.

        The monotonic counter delay is zero here: counter throttling is
        a *benchmark* concern (Table 1's 10 tx/s stable-storage row,
        measured in the DES); a live daemon should not sleep 100 ms per
        payment just to remind us SGX counters are slow.
        """
        store = self.state
        assert store is not None
        self.pstore = PersistentStore(
            self.node.enclave, self.scheduler,
            platform_secret=store.platform_secret, increment_delay=0.0,
        )
        if store.has_state:
            # Counter first (hardware survives power cycles), then the
            # blob — unseal verifies the binding and rejects rollback.
            self.pstore.counter = self.pstore.counters.create(
                initial=store.load_counter())
            self.pstore.latest_blob = store.load_sealed()
            self.pstore.restore(self.node.enclave)
            meta = store.load_host() or {}
            self.node.channels.update(meta.get("channels", {}))
            self._peer_addresses.update(meta.get("peer_addresses", {}))
            self._deposits.update(meta.get("deposits", {}))
            self._applying_remote = True
            try:
                replay_chain(self.network.chain,
                             meta.get("chain", {"blocks": [], "mempool": []}))
            finally:
                self._applying_remote = False
            self.restored = True
            logger.info("%s: restored sealed state (counter=%d, chain "
                        "height=%d)", self.name, self.pstore.counter.value,
                        self.network.chain.height)

        def hook(description: str) -> None:
            pstore = self.pstore
            pstore.persist()
            store.save_sealed(pstore.latest_blob)
            self._save_host_meta()
            if self.metrics.enabled:
                self.metrics.inc("runtime.seals_written")

        self.node.program.replication_hook = hook
        self._save_host_meta()

    def _save_host_meta(self) -> None:
        if self.state is None:
            return
        self.state.save_host({
            "channels": dict(self.node.channels),
            "peer_addresses": dict(self._peer_addresses),
            "deposits": dict(self._deposits),
            "chain": chain_snapshot(self.network.chain),
        })

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[int, int]:
        """Bind both listeners; returns (peer port, control port)."""
        _, port = await self.net.start()
        self._control_server = await asyncio.start_server(
            self._serve_control, self.control_host, self.control_port,
            limit=CONTROL_LINE_LIMIT,
        )
        self.control_port = self._control_server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.get_event_loop().create_task(
            self._pump_loop(), name=f"pump:{self.name}"
        )
        logger.info("%s: peers on %s:%d, control on %s:%d",
                    self.name, self.net.host, port,
                    self.control_host, self.control_port)
        return port, self.control_port

    async def run_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
        await self.net.stop()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()

    async def _pump_loop(self) -> None:
        # Safety net for timer-driven enclave output; held open while a
        # channel open is in flight (see module docstring).
        while True:
            await asyncio.sleep(0.025)
            if self._opening == 0:
                self.node._pump()

    async def _wait_for(self, predicate: Callable[[], bool],
                        timeout: float = 10.0, what: str = "condition") -> None:
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() > deadline:
                raise ReproError(f"{self.name}: timed out waiting for {what}")
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    # Peer handshake: quotes over the wire → secure channels
    # ------------------------------------------------------------------

    def _make_hello(self) -> Hello:
        return Hello(
            name=self.name,
            host=self.net.host,
            port=self.net.port,
            settlement_address=self.node.address,
            quote=self._my_quote(),
            session=self._session_nonce,
            topo_key=self.gossip.keypair.public.to_bytes(),
        )

    def _my_quote(self):
        enclave = self.node.enclave
        return self.network.attestation.quote(
            enclave, report_data=enclave.public_key.to_bytes()
        )

    def _combined_session(self, peer_nonce: bytes) -> bytes:
        """Both boot nonces hashed order-independently, so the two sides
        of a dual-dial handshake derive the same salt."""
        first, second = sorted((bytes(self._session_nonce),
                                bytes(peer_nonce)))
        return sha256(b"session:" + first + b"|" + second)

    def _install_peer(self, name: str, settlement_address: str, quote,
                      session: bytes = b"", topo_key: bytes = b"") -> None:
        salt = self._combined_session(session)
        key_bytes = quote.enclave_key.to_bytes()
        existing = self.node.program.secure_channels.get(key_bytes)
        if existing is None or existing.session != salt:
            channel = channel_from_quote(
                self.node.enclave, quote,
                self.network.attestation.root_key,
                service=self.network.attestation,
                session=salt,
            )
            # First contact installs; a *different* salt means one of us
            # rebooted (its replay counters died with enclave memory), so
            # renew the keys — the enclave retires the old salt to block
            # replayed-handshake regressions.  Same salt: benign TCP
            # reconnect within the same boot pair; keep channel+counters.
            verb = ("install_secure_channel" if existing is None
                    else "reinstall_secure_channel")
            self.node.enclave.ecall(verb, channel, name)
            if existing is not None and self.metrics.enabled:
                self.metrics.inc("runtime.channel_reinstalls")
        self._peer_keys[name] = quote.enclave_key
        self._peer_addresses[name] = settlement_address
        if topo_key:
            # The handshake rode an attested quote, so this binding
            # outranks anything learned from flooded gossip (TOFU).
            self.topology.bind_key(name, topo_key, pinned=True)
        self._save_host_meta()

    def _on_hello(self, hello: Hello) -> HelloAck:
        self._install_peer(hello.name, hello.settlement_address, hello.quote,
                           hello.session, hello.topo_key)
        # Dial back so we can send; a no-op if the link already exists.
        self.net.add_peer(hello.name, hello.host, hello.port)
        self._sync_gossip(hello.name)
        return HelloAck(name=self.name, settlement_address=self.node.address,
                        quote=self._my_quote(), session=self._session_nonce,
                        topo_key=self.gossip.keypair.public.to_bytes())

    def _on_hello_ack(self, ack: HelloAck) -> None:
        self._install_peer(ack.name, ack.settlement_address, ack.quote,
                           ack.session, ack.topo_key)
        self._sync_gossip(ack.name)

    # ------------------------------------------------------------------
    # Blockchain replication
    # ------------------------------------------------------------------

    def _gossip_submit(self, transaction: Transaction) -> None:
        self._save_host_meta()
        if self._applying_remote:
            return
        for peer in self.net.peer_names():
            self.net.send_control(peer, ChainTx(transaction))

    def _gossip_block(self, block) -> None:
        self._save_host_meta()
        if self._applying_remote:
            return
        announcement = ChainBlock(block=block)
        for peer in self.net.peer_names():
            self.net.send_control(peer, announcement)

    def _apply_remote_tx(self, transaction: Transaction) -> None:
        self._applying_remote = True
        try:
            self.network.chain.submit(transaction)
        except BlockchainError as exc:
            # A conflicting local transaction won the race; real mempools
            # disagree transiently too.  Block gossip reconciles.
            logger.warning("%s: rejected gossiped tx %s: %s",
                           self.name, transaction.txid[:12], exc)
        finally:
            self._applying_remote = False

    def _apply_remote_block(self, block, peer_name: Optional[str]) -> None:
        """Attach a gossiped block body; fork choice reconciles.

        Deliberately *not* run under ``_applying_remote``: connecting a
        peer's branch can reorganise our active chain, and the evicted
        transactions the chain returns to the mempool must re-gossip (the
        orphan re-broadcast path) — the block itself never echoes because
        only locally mined blocks fire the block listeners."""
        chain = self.network.chain
        try:
            status = chain.receive_block(block)
        except BlockchainError as exc:
            logger.warning("%s: rejected gossiped block %s: %s",
                           self.name, block.block_hash[:12], exc)
            return
        if status == "orphan" and peer_name is not None:
            # Hash-chain reconciliation: walk the sender's history
            # backwards until our chains connect.
            self.net.send_control(
                peer_name, ChainRequest(block_hash=block.previous_hash))
        if status == "connected":
            self._save_host_meta()

    def _on_chain_request(self, request: ChainRequest,
                          peer_name: Optional[str]) -> None:
        if peer_name is None:
            return
        block = self.network.chain.block_by_hash(request.block_hash)
        if block is not None:
            self.net.send_control(peer_name, ChainBlock(block=block))
        else:
            logger.warning("%s: peer %s requested unknown block %s",
                           self.name, peer_name, request.block_hash[:12])

    def _send_chain_tip(self, peer: str) -> None:
        """Offer our tip to a peer (handshake / heal anti-entropy): if the
        peer's chain is behind or forked it orphan-requests backwards
        until the histories connect and fork choice converges them."""
        chain = self.network.chain
        if chain.height > 1 and self.net.has_peer(peer):
            self.net.send_control(peer, ChainBlock(block=chain.blocks[-1]))

    def _on_reorg(self, event) -> None:
        if self.metrics.enabled:
            self.metrics.inc("chain.reorgs")
            self.metrics.inc("chain.orphaned_txs",
                             len(event.evicted) + len(event.dropped))
        logger.info(
            "%s: reorg depth=%d (%s → %s): %d txs returned to mempool, "
            "%d dropped", self.name, event.depth, event.old_tip[:12],
            event.new_tip[:12], len(event.evicted), len(event.dropped),
        )

    # ------------------------------------------------------------------
    # Control-plane frames from peers
    # ------------------------------------------------------------------

    def _on_control(self, obj: Any, peer_name: Optional[str]) -> None:
        if isinstance(obj, ChainTx):
            self._apply_remote_tx(obj.transaction)
        elif isinstance(obj, ChainBlock):
            self._apply_remote_block(obj.block, peer_name)
        elif isinstance(obj, ChainRequest):
            self._on_chain_request(obj, peer_name)
        elif isinstance(obj, ChainMine):
            # Legacy txid-only announcement (pre block-body gossip): a
            # modern chain cannot reconstruct the block from txids alone,
            # and blindly mining locally is exactly the divergence bug
            # this frame was retired for.  Ignore; tip sync reconciles.
            logger.warning("%s: ignoring legacy ChainMine from %s "
                           "(height %d)", self.name, peer_name, obj.height)
        elif isinstance(obj, OpenChannel):
            self._on_open_channel(obj)
        elif isinstance(obj, OpenChannelOk):
            self.node.channels[obj.channel_id] = obj.responder
            self._save_host_meta()
            event = self._pending_opens.get(obj.channel_id)
            if event is not None:
                event.set()
        elif isinstance(obj, Echo):
            self._on_echo(obj)
        elif (isinstance(obj, SignedMessage)
              and isinstance(obj.body, (ChannelAnnounce, ChannelUpdate))):
            self._on_gossip(obj, peer_name)
        else:
            logger.warning("%s: unknown control frame %s",
                           self.name, type(obj).__name__)

    def _on_open_channel(self, request: OpenChannel) -> None:
        peer_key = self._peer_keys.get(request.initiator)
        if peer_key is None:
            logger.warning("%s: OpenChannel from unknown peer %r",
                           self.name, request.initiator)
            return
        # Ecall + pump: our NewChannelAck goes on the wire now, and the
        # initiator's held ack follows once ours is processed there.
        self.node._ecall(
            "new_pay_channel", request.channel_id, peer_key,
            request.settlement_address, self.node.address,
        )
        self.node.channels[request.channel_id] = request.initiator
        self._save_host_meta()
        self.net.send_control(
            request.initiator,
            OpenChannelOk(channel_id=request.channel_id, responder=self.name,
                          settlement_address=self.node.address),
        )
        self._advertise_channel(request.channel_id)

    # ------------------------------------------------------------------
    # Routing gossip: flooded ChannelAnnounce/ChannelUpdate frames feed
    # the topology view the planner routes over (DESIGN.md §13)
    # ------------------------------------------------------------------

    def _on_gossip(self, signed: SignedMessage,
                   from_peer: Optional[str]) -> None:
        fresh = self.gossip.handle(signed)
        if fresh:
            # Re-flood fresh news to everyone but its carrier.  Stale,
            # replayed, or forged frames stop here — re-flooding them
            # would launder a replay into continued propagation.
            self._flood_gossip(signed, exclude=from_peer)

    def _flood_gossip(self, signed: SignedMessage,
                      exclude: Optional[str] = None) -> None:
        for peer in self.net.peer_names():
            if peer != exclude:
                self.net.send_control(peer, signed)

    def _sync_gossip(self, peer: str) -> None:
        """Anti-entropy on (re)handshake: replay our stored frames to the
        peer so late joiners and healed partitions converge without
        waiting for organic re-floods."""
        if not self.net.has_peer(peer):
            return
        for frame in self.gossip.backlog():
            self.net.send_control(peer, frame)
        # Chain anti-entropy rides the same (re)handshake: blocks mined
        # during a partition never re-flood organically, so offer our tip
        # and let hash-chain reconciliation pull whatever is missing.
        self._send_chain_tip(peer)

    def _channel_capacity(self, channel_id: str) -> int:
        """Our directional (spendable) balance on a channel."""
        try:
            snapshot = self.node.program.channel_snapshot(channel_id)
        except ReproError:
            return 0
        return int(snapshot["my_balance"])

    def _advertise_channel(self, channel_id: str, *,
                           disabled: bool = False) -> None:
        """Announce (first time) or update (afterwards) our half of a
        channel at its current capacity, and flood the frame."""
        peer = self.node.channels.get(channel_id)
        if peer is None or peer == self.name:
            return
        capacity = 0 if disabled else self._channel_capacity(channel_id)
        if channel_id in self._announced_channels:
            frame = self.gossip.update(channel_id, peer, capacity,
                                       disabled=disabled)
        else:
            self._announced_channels.add(channel_id)
            frame = self.gossip.announce(channel_id, peer, capacity)
            if disabled:  # settle before any announce: disable explicitly
                frame = self.gossip.update(channel_id, peer, 0,
                                           disabled=True)
        self._flood_gossip(frame)

    def _resolve_route(self, dest: str, amount: int) -> List[str]:
        try:
            return self.planner.find_route(self.name, dest, amount=amount)
        except RoutingError as exc:
            raise CommandError(str(exc), code="no_route") from exc

    def _on_echo(self, echo: Echo) -> None:
        if not echo.reply:
            self.net.send_control(
                echo.origin, Echo(seq=echo.seq, origin=echo.origin, reply=True)
            )
            return
        future = self._echo_futures.pop(echo.seq, None)
        if future is not None and not future.done():
            future.set_result(time.perf_counter())

    async def _echo_round_trip(self, peer: str,
                               timeout: float = 10.0) -> float:
        """Seconds until the peer has processed everything we sent before
        this call (FIFO barrier + latency probe in one)."""
        self._echo_seq += 1
        seq = self._echo_seq
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._echo_futures[seq] = future
        started = time.perf_counter()
        self.net.send_control(peer, Echo(seq=seq, origin=self.name))
        finished = await asyncio.wait_for(future, timeout)
        return finished - started

    # ------------------------------------------------------------------
    # Backpressured payment pipeline
    # ------------------------------------------------------------------

    async def _pay_pipelined(self, channel_id: str, amount: int,
                             batch_count: int = 1) -> None:
        """One channel payment through the backpressured send path.

        The pay ecall runs synchronously (sequence numbers are minted
        inside the enclave, and asyncio runs everything up to the first
        ``await`` without interleaving, so concurrent pay tasks cannot
        reorder a channel's envelopes), then the outbox drains through
        :meth:`AsyncTcpNetwork.send_wait`: under sustained load the
        sender is throttled by its own outbound queue instead of
        silently losing payment frames.
        """
        try:
            with op_span("channel.pay", channel=channel_id, node=self.name):
                self.node.enclave.ecall("pay", channel_id, amount,
                                        batch_count)
            peer = self.node.channels.get(channel_id)
            if peer is not None:
                self.network.tracker.record_payment(self.name, peer, amount)
        finally:
            # Drain even when the ecall raised: the outbox may hold
            # unrelated timer-driven frames that must not be stranded.
            for outbound in self.node.enclave.take_outbox():
                await self.net.send_wait(self.node.name,
                                         outbound.destination,
                                         outbound.payload)

    def _flush_batches(self) -> int:
        """Flush pending payment batches (if batching is active)."""
        if self.batcher is None or not self.batcher.pending_payments():
            return 0
        return self.batcher.flush()

    async def _drain_outbox(self) -> None:
        """Ship whatever the enclave queued, with backpressure."""
        for outbound in self.node.enclave.take_outbox():
            await self.net.send_wait(self.node.name, outbound.destination,
                                     outbound.payload)

    async def _checkpoint_loop(self) -> None:
        """The T-ms half of the fast path's K-payments/T-ms checkpoint
        policy: periodically flush deferred state signatures so a quiet
        channel is never more than ``checkpoint_ms`` behind its last
        signed commitment."""
        from repro.errors import EnclaveCrashed, EnclaveFrozen
        while self.checkpoint_ms > 0:
            await asyncio.sleep(self.checkpoint_ms / 1000.0)
            try:
                flushed = self.node.enclave.ecall("checkpoint_all")
            except (EnclaveCrashed, EnclaveFrozen):
                return  # fault injection / freeze; timer has nothing to do
            if flushed:
                await self._drain_outbox()

    def _set_checkpoint_timer(self, checkpoint_ms: int) -> None:
        self.checkpoint_ms = checkpoint_ms
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            self._checkpoint_task = None
        if checkpoint_ms > 0:
            self._checkpoint_task = asyncio.get_event_loop().create_task(
                self._checkpoint_loop(), name=f"checkpoint:{self.name}")

    # ------------------------------------------------------------------
    # Control commands.  Each handler is declared in the registry; the
    # verbs mirror TeechainNode's API (see README's command table).
    # ------------------------------------------------------------------

    @COMMANDS.command("ping", doc="Liveness check; returns name and clock.",
                      idempotent=True)
    async def _cmd_ping(self) -> Dict[str, Any]:
        return {"name": self.name, "now": self.scheduler.now}

    @COMMANDS.command("help", doc="List every command with its signature.",
                      idempotent=True)
    async def _cmd_help(self) -> Dict[str, Any]:
        return {"commands": COMMANDS.help_table()}

    @COMMANDS.command(
        "connect",
        Param("peer", doc="peer daemon name"),
        Param("host", doc="peer host"),
        Param("port", int, doc="peer port"),
        doc="Dial a peer and complete the attested handshake.",
        idempotent=True)
    async def connect(self, peer: str, host: str, port: int,
                      timeout: float = 10.0) -> Dict[str, Any]:
        self.net.add_peer(peer, host, port)
        await self.net.wait_connected(peer, timeout)
        await self._wait_for(lambda: peer in self._peer_keys, timeout,
                             f"attestation handshake with {peer}")
        return {"peer": peer, "attested": True}

    @COMMANDS.command(
        "open-channel",
        Param("peer", doc="attested peer name"),
        Param("channel_id", required=False, doc="explicit id (optional)"),
        doc="Open a payment channel with an attested peer.")
    async def open_channel(self, peer: str,
                           channel_id: Optional[str] = None,
                           timeout: float = 10.0) -> Dict[str, Any]:
        if peer not in self._peer_keys:
            raise CommandError(f"not connected to {peer!r}",
                               code="not_connected")
        cid = channel_id or self.network.next_channel_id(self.name, peer)
        event = asyncio.Event()
        self._pending_opens[cid] = event
        self._opening += 1
        try:
            # Direct ecall, NOT node._ecall: the ack must stay in the
            # outbox until the responder's ack arrives (module docstring).
            self.node.enclave.ecall(
                "new_pay_channel", cid, self._peer_keys[peer],
                self._peer_addresses[peer], self.node.address,
            )
            self.net.send_control(
                peer, OpenChannel(channel_id=cid, initiator=self.name,
                                  settlement_address=self.node.address),
            )
            await asyncio.wait_for(event.wait(), timeout)
        finally:
            self._opening -= 1
            self._pending_opens.pop(cid, None)
        self.node.channels[cid] = peer
        self._save_host_meta()
        self._advertise_channel(cid)
        # Barrier: the peer has processed our (now flushed) ack.
        await self._echo_round_trip(peer, timeout)
        return {"channel_id": cid, "peer": peer}

    @COMMANDS.command(
        "deposit",
        Param("value", int, doc="satoshi value to deposit"),
        doc="Create and confirm an on-chain deposit.")
    async def deposit(self, value: int) -> Dict[str, Any]:
        record = self.node.create_deposit(value, confirm=True)
        self._deposits[record.outpoint.txid] = record
        self._save_host_meta()
        return {"txid": record.outpoint.txid,
                "index": record.outpoint.index, "value": value}

    @COMMANDS.command(
        "approve-associate",
        Param("peer", doc="channel counterparty"),
        Param("channel_id"),
        Param("txid", doc="deposit txid from 'deposit'"),
        doc="Approve a deposit for a peer and associate it to a channel.")
    async def approve_associate(self, peer: str, channel_id: str,
                                txid: str, timeout: float = 10.0) -> Dict[str, Any]:
        record = self._deposits.get(txid)
        if record is None:
            raise CommandError(f"no deposit with txid {txid[:12]}…",
                               code="no_such_deposit")
        peer_key = self._peer_keys[peer]
        key_bytes = peer_key.to_bytes()
        program = self.node.program
        approved = program.approved_deposits.get(key_bytes, set())
        if record.outpoint not in approved:
            self.node._ecall("approve_my_deposit", peer_key, record.outpoint)
            await self._wait_for(
                lambda: record.outpoint in program.approved_deposits.get(
                    key_bytes, set()),
                timeout, "deposit approval",
            )
        self.node._ecall("associate_deposit", channel_id, record.outpoint)
        await self._echo_round_trip(peer, timeout)
        # The channel's spendable capacity changed: gossip the new number
        # so remote planners stop excluding (or start preferring) it.
        self._advertise_channel(channel_id)
        snapshot = self.node.program.channel_snapshot(channel_id)
        return {"channel_id": channel_id, "txid": txid,
                "my_balance": snapshot["my_balance"],
                "remote_balance": snapshot["remote_balance"]}

    @COMMANDS.command(
        "pay",
        Param("channel_id"),
        Param("amount", int),
        doc="Send one off-chain payment over a channel.")
    async def pay(self, channel_id: str, amount: int) -> Dict[str, Any]:
        if self.batch_window_s > 0:
            # §7.2 batching: queue the logical payment; the window timer
            # (or settle/batch-window) flushes it as one protocol
            # payment carrying batch_count.
            if channel_id not in self.node.channels:
                raise CommandError(f"no open channel {channel_id!r}",
                                   code="no_such_channel")
            assert self.batcher is not None
            self.batcher.submit(channel_id, amount)
            if self.metrics.enabled:
                self.metrics.inc("runtime.payments_batched")
            return {"channel_id": channel_id, "amount": amount,
                    "batched": True,
                    "pending": self.batcher.pending_count(channel_id)}
        await self._pay_pipelined(channel_id, amount)
        snapshot = self.node.program.channel_snapshot(channel_id)
        return {"channel_id": channel_id, "amount": amount,
                "my_balance": snapshot["my_balance"],
                "remote_balance": snapshot["remote_balance"]}

    @COMMANDS.command(
        "batch-window",
        Param("window_ms", int, doc="batching window in ms; 0 disables"),
        doc="Configure §7.2 client-side payment batching.",
        idempotent=True)
    async def _cmd_batch_window(self, window_ms: int) -> Dict[str, Any]:
        if window_ms < 0:
            raise CommandError(f"window_ms must be >= 0, got {window_ms}",
                               code="bad_request")
        # Reconfiguring mid-stream flushes what is queued under the old
        # window first, and pushes it to the sockets so a 'batch-window 0'
        # followed by 'settle' observes every payment.
        flushed = self._flush_batches()
        if flushed:
            await self.net.flush()
        self.batch_window_s = window_ms / 1000.0
        if window_ms > 0:
            if self.batcher is None:
                self.batcher = PaymentBatcher(self.node,
                                              window=self.batch_window_s,
                                              scheduler=self.scheduler)
            else:
                self.batcher.window = self.batch_window_s
        return {"window_ms": window_ms, "enabled": window_ms > 0,
                "flushed": flushed}

    @COMMANDS.command(
        "fastpath",
        Param("enabled", int, doc="1 enables the MAC fast path, 0 disables"),
        Param("checkpoint_every", int, required=False,
              doc="signed checkpoint every K fast-path payments"),
        Param("checkpoint_ms", int, required=False, default=0,
              doc="also flush checkpoints every T ms (0 = payments only)"),
        doc="Configure the session-MAC payment fast path.",
        idempotent=True)
    async def _cmd_fastpath(self, enabled: int,
                            checkpoint_every: Optional[int] = None,
                            checkpoint_ms: int = 0) -> Dict[str, Any]:
        if checkpoint_ms < 0:
            raise CommandError(
                f"checkpoint_ms must be >= 0, got {checkpoint_ms}",
                code="bad_request")
        result = self.node.enclave.ecall("set_fastpath", bool(enabled),
                                         checkpoint_every)
        # Disabling flushes deferred checkpoints inside the enclave; they
        # are in the outbox now and must reach the peer.
        await self._drain_outbox()
        self._set_checkpoint_timer(checkpoint_ms if enabled else 0)
        return {**result, "checkpoint_ms": self.checkpoint_ms}

    # ------------------------------------------------------------------
    # Account hub (repro.hub): the host only shuttles signed request
    # bytes into the enclave — forgery/replay/balance checks all happen
    # inside hub_handle_request, so none of these verbs are trusted.
    # ------------------------------------------------------------------

    def _decode_account_request(self, request: Any,
                                expected: Optional[type] = None):
        """Hex → SignedMessage, with ``bad_request`` on malformed input.

        Type/signature/nonce verification is the enclave's job; this
        only rejects bytes that cannot possibly be a request."""
        from repro.core.messages import SignedMessage

        if not isinstance(request, str):
            raise CommandError("request must be a hex string",
                               code="bad_request")
        try:
            signed = codec.decode(bytes.fromhex(request))
        except (ValueError, codec.CodecError) as exc:
            raise CommandError(f"undecodable account request: {exc}",
                               code="bad_request") from None
        if not isinstance(signed, SignedMessage):
            raise CommandError("account requests must be SignedMessages",
                               code="bad_request")
        if expected is not None and not isinstance(signed.body, expected):
            raise CommandError(
                f"expected a signed {expected.__name__}, got "
                f"{type(signed.body).__name__}", code="bad_request")
        return signed

    def _chain_payout(self, address: str, amount: int) -> str:
        """Execute an enclave-authorised on-chain withdrawal from the hub
        wallet and mine it, so the payout is immediately auditable on
        every replica's chain."""
        sources, total = self.node._wallet_outpoints(amount)
        destinations = [(address, amount)]
        if total > amount:
            destinations.append((self.node.address, total - amount))
        transaction = build_p2pkh_transfer(
            sources, self.node.wallet.private, destinations)
        self.node.client.broadcast(transaction)
        self.network.mine()
        return transaction.txid

    def _chain_payout_refunding(self, account_hex: str, address: str,
                                amount: int) -> str:
        """``_chain_payout``, but a failure re-credits the enclave
        ledger instead of burning the client's balance.

        The chain route is authorise-then-execute: the enclave has
        already debited by the time the host builds the wallet
        transaction, and the wallet can come up short even though the
        withdrawal was admitted (solvency counts channel balances and
        free deposits, not wallet UTXOs).  Without the compensating
        ecall the debit would stand with no payout, no txid, and no
        reconciliation path."""
        try:
            txid = self._chain_payout(address, amount)
        except Exception as exc:
            self.node.enclave.ecall("hub_refund_payout", account_hex,
                                    amount)
            raise CommandError(
                f"chain payout of {amount} to {address!r} failed ({exc}); "
                "the account balance was re-credited — the nonce stays "
                "consumed, retry with a fresh one",
                code="payout_failed") from exc
        # Retire the authorise-then-execute window (outside the
        # try/except: a failure *here* must not trigger a refund of a
        # payout that did execute — that would mint the amount twice).
        self.node.enclave.ecall("hub_payout_done", amount)
        return txid

    @COMMANDS.command(
        "account-open",
        Param("request", doc="hex-encoded signed AccountDeposit"),
        doc="Open (or credit) a client account from a signed deposit "
            "request; the credit must fit the hub's channel/deposit "
            "backing.")
    async def _cmd_account_open(self, request: str) -> Dict[str, Any]:
        signed = self._decode_account_request(
            request, hub_messages.AccountDeposit)
        return self.node.enclave.ecall("hub_handle_request", signed)

    @COMMANDS.command(
        "account-pay",
        Param("request", doc="hex-encoded signed AccountPay"),
        doc="Move value between two client accounts inside the hub "
            "ledger (minus the hub fee).")
    async def _cmd_account_pay(self, request: str) -> Dict[str, Any]:
        signed = self._decode_account_request(request,
                                              hub_messages.AccountPay)
        return self.node.enclave.ecall("hub_handle_request", signed)

    @COMMANDS.command(
        "account-withdraw",
        Param("request", doc="hex-encoded signed AccountWithdraw"),
        doc="Withdraw from an account: internal move, out over a channel "
            "(pinned to a fresh checkpoint), or on-chain via the hub "
            "wallet.")
    async def _cmd_account_withdraw(self, request: str) -> Dict[str, Any]:
        signed = self._decode_account_request(
            request, hub_messages.AccountWithdraw)
        body = signed.body
        if body.route == "chain" and body.amount > 0:
            # Fail the cheap case before the enclave debits: solvency
            # admission counts channel balances and free deposits, not
            # wallet UTXOs, so check the wallet actually covers the
            # payout first (InsufficientFunds → stable code, and the
            # request's nonce is never consumed).  Non-positive amounts
            # fall through for the enclave's own validation.
            self.node._wallet_outpoints(body.amount)
        result = self.node.enclave.ecall("hub_handle_request", signed)
        # Channel-route withdrawals leave Paid/checkpoint frames in the
        # enclave outbox; chain-route ones return a payout authorisation
        # the host wallet executes (observable on the replicated chain).
        await self._drain_outbox()
        if result.get("route") == "chain":
            result["txid"] = self._chain_payout_refunding(
                result["account"], result["address"], result["amount"])
        return result

    @COMMANDS.command(
        "account-query",
        Param("request", doc="hex-encoded signed AccountQuery"),
        doc="Read an account's balance and last accepted nonce "
            "(signed: balances are private to the keyholder).",
        idempotent=True)
    async def _cmd_account_query(self, request: str) -> Dict[str, Any]:
        signed = self._decode_account_request(request,
                                              hub_messages.AccountQuery)
        return self.node.enclave.ecall("hub_handle_request", signed)

    @COMMANDS.command(
        "account-pay-many",
        Param("requests", list, doc="list of hex-encoded signed requests"),
        doc="Apply a batch of signed account requests in order; each "
            "item succeeds or is rejected independently with its stable "
            "error code.")
    async def _cmd_account_pay_many(self, requests) -> Dict[str, Any]:
        if not isinstance(requests, list) or not requests:
            raise CommandError("requests must be a non-empty list",
                               code="bad_request")
        signeds = [self._decode_account_request(item) for item in requests]
        results = self.node.enclave.ecall("hub_handle_batch", signeds)
        await self._drain_outbox()
        for item in results:
            if item.get("ok") and item.get("route") == "chain":
                try:
                    item["txid"] = self._chain_payout_refunding(
                        item["account"], item["address"], item["amount"])
                except CommandError as exc:
                    # The ledger debit was reversed; report the item as
                    # rejected in place so the rest of the batch stands.
                    item.update(ok=False, code=exc.code, error=str(exc),
                                refunded=True)
        accepted = sum(1 for item in results if item.get("ok"))
        return {"results": results, "accepted": accepted,
                "rejected": len(results) - accepted}

    @COMMANDS.command(
        "account-stats",
        doc="Hub ledger summary: accounts, balances, fee bucket, backing, "
            "conservation and solvency checks.", idempotent=True)
    async def _cmd_account_stats(self) -> Dict[str, Any]:
        return {"name": self.name,
                "hub": self.node.enclave.ecall("hub_stats")}

    @COMMANDS.command(
        "hub-fee",
        Param("fee_per_pay", int, doc="fee collected per account pay"),
        doc="Set the hub's per-payment fee (accumulates in the fee "
            "bucket).", idempotent=True)
    async def _cmd_hub_fee(self, fee_per_pay: int) -> Dict[str, Any]:
        return self.node.enclave.ecall("hub_set_fee", fee_per_pay)

    @COMMANDS.command(
        "route",
        Param("dest", doc="destination node name"),
        Param("amount", int, required=False, default=0,
              doc="filter out edges below this capacity (0 = ignore)"),
        doc="Resolve a route to dest over the gossip-discovered topology "
            "(no payment); 'no_route' when none exists yet.",
        idempotent=True)
    async def _cmd_route(self, dest: str, amount: int = 0) -> Dict[str, Any]:
        route = self._resolve_route(str(dest), amount)
        return {"dest": dest, "route": route, "hops": len(route) - 1,
                "topology": self.topology.stats()}

    @COMMANDS.command(
        "pay-multihop",
        Param("amount", int),
        Param("dest", required=False,
              doc="destination node; the route is resolved through the "
                  "gossip-discovered topology"),
        Param("path", required=False,
              doc="explicit comma-separated hop override, this daemon "
                  "first (skips route discovery)"),
        Param("payment_id", required=False, doc="explicit id (optional)"),
        doc="Send a multi-hop payment: give dest= to route via discovery, "
            "or path= to force an explicit route.")
    async def pay_multihop(self, amount: int,
                           dest: Optional[str] = None,
                           path: Optional[str] = None,
                           payment_id: Optional[str] = None,
                           timeout: float = 30.0) -> Dict[str, Any]:
        routed = False
        if path:
            hop_names = [hop.strip() for hop in str(path).split(",")
                         if hop.strip()]
            if len(hop_names) < 2:
                raise CommandError("path needs at least two hop names",
                                   code="bad_request")
            if hop_names[0] != self.name:
                raise CommandError(f"path must start at {self.name!r}",
                                   code="bad_request")
        elif dest:
            hop_names = self._resolve_route(str(dest), amount)
            if len(hop_names) < 2:
                raise CommandError(
                    f"{dest!r} is this daemon; nothing to pay",
                    code="bad_request")
            routed = True
        else:
            raise CommandError("need dest= (routed) or path= (explicit)",
                               code="bad_request")
        # Payment ids are minted per daemon; prefixing with our name keeps
        # them unique across the network without coordination.
        pid = payment_id or f"{self.name}-{self.network.next_payment_id()}"
        with op_span("multihop.pay", payment=pid, node=self.name,
                     hops=len(hop_names) - 1):
            self.node._ecall("pay_multihop", pid, amount, hop_names)
        await self._wait_for(
            lambda: pid in self.node.program.multihop_completed,
            timeout, f"multihop payment {pid}",
        )
        return {"payment_id": pid, "amount": amount,
                "hops": len(hop_names) - 1, "route": hop_names,
                "routed": routed, "completed": True}

    @COMMANDS.command(
        "bench-pay",
        Param("channel_id"),
        Param("count", int, doc="number of payments"),
        Param("amount", int, required=False, default=1),
        doc="Throughput probe: count payments, echo-barrier timed.")
    async def bench_pay(self, channel_id: str, count: int, amount: int = 1,
                        timeout: float = 120.0) -> Dict[str, Any]:
        """Throughput probe: ``count`` payments, timed until the peer has
        processed the last one (echo barrier), not merely until enqueued.

        Payments ride the backpressured pipeline (flow control instead of
        the old manual every-64-sends yield), so the probe can sustain
        arbitrary counts without dropping protocol frames."""
        peer = self.node.channels[channel_id]
        started = time.perf_counter()
        for _ in range(count):
            await self._pay_pipelined(channel_id, amount)
        await self.net.flush(peer, timeout=timeout)
        await self._echo_round_trip(peer, timeout)
        elapsed = time.perf_counter() - started
        # A rate computed from a ~zero elapsed is reported as null, not
        # 0.0 — "0 payments/s" reads as a stall, which is the opposite of
        # what a sub-resolution elapsed means.
        return {"count": count, "elapsed_s": elapsed,
                "payments_per_s": count / elapsed if elapsed > 0 else None}

    @COMMANDS.command(
        "bench-latency",
        Param("channel_id"),
        Param("count", int, doc="number of samples"),
        Param("amount", int, required=False, default=1),
        doc="Latency probe: per-payment round trips.")
    async def bench_latency(self, channel_id: str, count: int, amount: int = 1,
                            timeout: float = 30.0) -> Dict[str, Any]:
        """Latency probe: per-payment round trips (pay + echo barrier).

        Quantiles come from the shared nearest-rank helper — the naive
        ``ordered[int(n * 0.95)]`` indexing it replaces returned the
        maximum for small n and the upper median for even n."""
        peer = self.node.channels[channel_id]
        samples: List[float] = []
        for _ in range(count):
            started = time.perf_counter()
            await self._pay_pipelined(channel_id, amount)
            await self._echo_round_trip(peer, timeout)
            samples.append(time.perf_counter() - started)
        summary = summarize_samples(samples)
        return {
            "count": count,
            "mean_s": summary["mean"],
            "p50_s": summary["p50"],
            "p95_s": summary["p95"],
            "min_s": summary["min"],
            "max_s": summary["max"],
        }

    @COMMANDS.command(
        "echo",
        Param("peer"),
        doc="Round-trip a control frame to a peer; returns the RTT.",
        idempotent=True)
    async def _cmd_echo(self, peer: str) -> Dict[str, Any]:
        rtt = await self._echo_round_trip(peer)
        return {"peer": peer, "rtt_s": rtt}

    @COMMANDS.command(
        "settle",
        Param("channel_id"),
        doc="Settle a channel (off-chain if balanced, on-chain otherwise).")
    async def settle(self, channel_id: str) -> Dict[str, Any]:
        peer = self.node.channels.get(channel_id)
        # Payments still queued in the batcher are part of the channel's
        # logical balance; settling without flushing would destroy them.
        if self._flush_batches():
            await self.net.flush()
        transaction = self.node.settle(channel_id)
        if transaction is not None:
            self.network.mine()
        # Tell the network the edge is gone before anyone routes over it.
        self._advertise_channel(channel_id, disabled=True)
        if peer is not None:
            # Best-effort FIFO barrier: confirm the peer processed the
            # SettleNotify.  A partitioned peer cannot answer, and must
            # not block the settlement — it is unilateral by design; the
            # peer reconciles from the chain when the partition heals.
            try:
                await self._echo_round_trip(peer, timeout=5.0)
            except asyncio.TimeoutError:
                logger.warning("%s: peer %s unreachable during settle of "
                               "%s; proceeding unilaterally",
                               self.name, peer, channel_id)
        return {"channel_id": channel_id,
                "txid": transaction.txid if transaction else None,
                "offchain": transaction is None}

    @COMMANDS.command(
        "eject-all",
        doc="Eject every in-flight multi-hop payment (crash recovery).")
    async def _cmd_eject_all(self) -> Dict[str, Any]:
        ejected = self.node.eject_all()
        if any(ejected.values()):
            self.network.mine()
        return {"ejected": {payment_id: [tx.txid for tx in transactions]
                            for payment_id, transactions in ejected.items()}}

    @COMMANDS.command(
        "reclaim",
        doc="Settle all channels and reclaim every deposit on-chain.")
    async def _cmd_reclaim(self) -> Dict[str, Any]:
        reclaimed = self.node.reclaim_all()
        return {"reclaimed": reclaimed,
                "onchain": self.node.onchain_balance()}

    @COMMANDS.command("mine", doc="Mine the mempool into a block.")
    async def _cmd_mine(self) -> Dict[str, Any]:
        chain = self.network.chain
        self.network.mine()
        return {"height": chain.height,
                "tip": chain.tip_hash,
                "fees_collected": chain.fees_collected()}

    @COMMANDS.command(
        "chain-sync",
        doc="Offer our chain tip to every connected peer (anti-entropy "
            "after a partition heals: forked peers request our history "
            "backwards until fork choice converges).")
    async def _cmd_chain_sync(self) -> Dict[str, Any]:
        peers = list(self.net.peer_names())
        for peer in peers:
            self._send_chain_tip(peer)
        chain = self.network.chain
        return {"offered_to": peers,
                "height": chain.height,
                "tip": chain.tip_hash}

    @COMMANDS.command(
        "fee-policy",
        Param("feerate", float),
        Param("limit", int, required=False),
        doc="Set the settlement feerate (value per vsize byte; sealed "
            "enclave state — both channel endpoints must agree or their "
            "settlement txids diverge) and optionally the local block "
            "size limit that makes the fee market bind.")
    async def _cmd_fee_policy(self, feerate: float,
                              limit: Optional[int] = None) -> Dict[str, Any]:
        result = self.node.enclave.ecall("set_fee_policy", feerate)
        if limit is not None:
            if limit <= 0:
                raise CommandError("limit must be positive")
            self.network.chain.block_limit = limit
        return {"feerate": result["settlement_feerate"],
                "block_limit": self.network.chain.block_limit,
                "feerate_estimate": self.network.chain.feerate_estimate(
                    self.network.chain.block_limit or 10)}

    @COMMANDS.command("balance", doc="On-chain balance of this node.",
                      idempotent=True)
    async def _cmd_balance(self) -> Dict[str, Any]:
        return {"name": self.name,
                "onchain": self.node.onchain_balance()}

    @COMMANDS.command(
        "channel",
        Param("channel_id"),
        doc="Snapshot one channel's balances and deposits.",
        idempotent=True)
    async def _cmd_channel(self, channel_id: str) -> Dict[str, Any]:
        snapshot = self.node.program.channel_snapshot(channel_id)
        return {
            "channel_id": snapshot["channel_id"],
            "is_open": snapshot["is_open"],
            "my_balance": snapshot["my_balance"],
            "remote_balance": snapshot["remote_balance"],
            "my_deposits": [f"{o.txid}:{o.index}"
                            for o in snapshot["my_deposits"]],
            "remote_deposits": [f"{o.txid}:{o.index}"
                                for o in snapshot["remote_deposits"]],
        }

    @COMMANDS.command("stats", doc="Transport, chain, and uptime stats.",
                      idempotent=True)
    async def _cmd_stats(self) -> Dict[str, Any]:
        batcher = self.batcher
        program = self.node.program
        return {
            "name": self.name,
            "transport": self.net.stats(),
            "chain": {"height": self.network.chain.height,
                      "tip": self.network.chain.tip_hash,
                      "mempool": self.network.chain.mempool_size(),
                      "reorgs": self.network.chain.reorg_count,
                      "orphaned_txs": self.network.chain.orphaned_tx_count,
                      "fees_collected": self.network.chain.fees_collected(),
                      "block_limit": self.network.chain.block_limit},
            "payments": {"sent": self.node.program.payments_sent,
                         "received": self.node.program.payments_received},
            "batching": {
                "window_ms": round(self.batch_window_s * 1000),
                "enabled": self.batch_window_s > 0,
                "payments_batched": batcher.payments_batched if batcher else 0,
                "batches_flushed": batcher.batches_flushed if batcher else 0,
                "pending": batcher.pending_payments() if batcher else 0,
            },
            "routing": {
                "cache": self.planner.cache_info(),
                "topology": self.topology.stats(),
            },
            "gossip": self.gossip.stats(),
            "fastpath": {
                "enabled": program.fastpath_enabled,
                "checkpoint_every": program.checkpoint_every,
                "checkpoint_ms": self.checkpoint_ms,
                "unsigned_pending": sum(
                    program._fastpath_unsigned.values()),
                "checkpoints_sent": sum(
                    program._checkpoint_index_out.values()),
                "checkpoints_accepted": sum(
                    program._checkpoint_index_in.values()),
            },
            "uptime_s": self.scheduler.now,
            "restored": self.restored,
        }

    @COMMANDS.command("metrics", doc="Snapshot of the obs metrics registry.",
                      idempotent=True)
    async def _cmd_metrics(self) -> Dict[str, Any]:
        return {"metrics": self.metrics.snapshot()}

    @COMMANDS.command(
        "trace_dump",
        doc="This daemon's span ring plus the clock metadata trace "
            "merging needs (local/wall clocks, handshake skew offsets).",
        idempotent=True)
    async def _cmd_trace_dump(self) -> Dict[str, Any]:
        return self.collector.trace_dump(peer_offsets=self.net.peer_offsets)

    @COMMANDS.command(
        "metrics_stream",
        doc="Metrics delta since the previous call (rates without "
            "per-client server state; drives the 'top' view).")
    async def _cmd_metrics_stream(self) -> Dict[str, Any]:
        return self.collector.metrics_delta()

    @COMMANDS.command(
        "metrics_prom",
        doc="Metrics in Prometheus text exposition format.",
        idempotent=True)
    async def _cmd_metrics_prom(self) -> Dict[str, Any]:
        return {"text": prometheus_text(self.metrics.snapshot())}

    @COMMANDS.command(
        "audit-snapshot",
        doc="Atomic audit digest for the fleet auditor: channel "
            "balances, free deposits, hub ledger verdicts, on-chain "
            "balance, and transport pressure, read in one event-loop "
            "slice so it never races a fund movement.",
        idempotent=True)
    async def _cmd_audit_snapshot(self) -> Dict[str, Any]:
        # No await between the ecall and the host-side reads: command
        # handlers run to completion inside one event-loop slice, so a
        # concurrent pay on another connection is either fully applied
        # before this line or not started until after the return.
        snapshot = self.node.enclave.ecall("audit_snapshot")
        peers = self.net.stats()["peers"]
        snapshot.update({
            "name": self.name,
            "onchain": self.node.onchain_balance(),
            "chain_height": self.network.chain.height,
            "mempool": self.network.chain.mempool_size(),
            "checkpoint_ms": self.checkpoint_ms,
            "transport": {
                "peers": len(peers),
                "disconnected": sum(
                    1 for link in peers.values() if not link["connected"]),
                "queued": sum(link["queued"] for link in peers.values()),
                "reconnects": sum(
                    link["reconnects"] for link in peers.values()),
                "backpressure_waits": sum(
                    link["backpressure_waits"] for link in peers.values()),
                "drops_protocol": sum(
                    link["drops_protocol"] for link in peers.values()),
                "drops_control": sum(
                    link["drops_control"] for link in peers.values()),
            },
        })
        return snapshot

    @COMMANDS.command(
        "health",
        doc="Cheap liveness summary: uptime, trace ring pressure, "
            "peer/channel counts.", idempotent=True)
    async def _cmd_health(self) -> Dict[str, Any]:
        return self.collector.health(
            peers=len(self._peer_keys),
            channels=len(self.node.channels),
            chain_height=self.network.chain.height,
            tracing=self.trace_enabled,
        )

    @COMMANDS.command(
        "fault",
        Param("action", doc="crash | sever | blackhole | heal"),
        Param("peer", required=False, doc="peer link for sever/blackhole/heal"),
        doc="Inject a fault into this daemon (testing only).")
    async def _cmd_fault(self, action: str,
                         peer: Optional[str] = None) -> Dict[str, Any]:
        if action == "crash":
            crash_enclave(self.node.enclave)
        elif action in ("sever", "blackhole", "heal"):
            if not peer:
                raise CommandError(
                    f"fault action {action!r} requires 'peer'",
                    code="bad_request")
            if action == "sever":
                self.net.sever(peer)
            elif action == "blackhole":
                self.net.blackhole(peer)
            else:
                self.net.restore(peer)
        else:
            raise CommandError(
                f"unknown fault action {action!r} "
                "(crash | sever | blackhole | heal)", code="bad_request")
        if self.metrics.enabled:
            self.metrics.inc("faults.injected")
            self.metrics.inc(f"faults.injected[{action}]")
        return {"action": action, "peer": peer}

    @COMMANDS.command("shutdown", doc="Stop the daemon gracefully.",
                      idempotent=True)
    async def _cmd_shutdown(self) -> Dict[str, Any]:
        self._shutdown.set()
        return {"stopping": True}

    # ------------------------------------------------------------------
    # Control server (line JSON)
    # ------------------------------------------------------------------

    async def _serve_control(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    try:
                        request = json.loads(line)
                    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                        raise CommandError(
                            f"request is not valid JSON: {exc}",
                            code="bad_request") from None
                    if not isinstance(request, dict):
                        raise CommandError("request must be a JSON object",
                                           code="bad_request")
                    result = await COMMANDS.dispatch(self, request)
                    response = {"ok": True, **result}
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    code = code_for_exception(exc)
                    response = {"ok": False, "code": code,
                                "error": f"{type(exc).__name__}: {exc}"}
                    if self.metrics.enabled:
                        self.metrics.inc("control.errors")
                        self.metrics.inc(f"control.errors[{code}]")
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except asyncio.CancelledError:
            return  # loop teardown at shutdown; exit without the log noise
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


async def serve(name: str, host: str, port: int, control_port: int,
                allocations: Dict[str, int],
                state_dir: Optional[str] = None,
                announce: bool = True,
                trace: Optional[bool] = None) -> None:
    """Run a daemon until its control API receives ``shutdown``."""
    daemon = NodeDaemon(name, host=host, port=port,
                        control_port=control_port, allocations=allocations,
                        state_dir=state_dir, trace=trace)
    peer_port, ctrl_port = await daemon.start()
    if announce:
        # Machine-readable startup line so launchers can scrape the ports.
        print(json.dumps({"name": name, "host": host, "port": peer_port,
                          "control_port": ctrl_port,
                          "restored": daemon.restored}), flush=True)
    await daemon.run_until_shutdown()
