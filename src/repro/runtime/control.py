"""Synchronous client for the daemon's line-JSON control API.

Used by the CLI, the live tests, and the loopback benchmark — all of
which run *outside* the daemon's event loop, so a plain blocking socket
is the right tool.  One request object per line out, one response object
per line back, strictly in order.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, Optional

from repro.errors import ReproError


class ControlError(ReproError):
    """The daemon reported a command failure (its ``error`` string)."""


class ControlClient:
    """Blocking line-JSON client with call semantics.

    Usable as a context manager; ``call`` raises :class:`ControlError`
    when the daemon answers ``ok: false`` and returns the rest of the
    response object otherwise.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._socket.settimeout(timeout)
        self._reader = self._socket.makefile("rb")

    def call(self, cmd: str, **kwargs: Any) -> Dict[str, Any]:
        request = {"cmd": cmd, **kwargs}
        self._socket.sendall(json.dumps(request).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            raise ControlError(f"daemon at {self.host}:{self.port} hung up")
        response = json.loads(line)
        if not response.pop("ok", False):
            raise ControlError(response.get("error", "unknown daemon error"))
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def wait_for_control(host: str, port: int, timeout: float = 15.0,
                     interval: float = 0.05) -> ControlClient:
    """Poll until a daemon's control port accepts a ``ping``.

    Daemons started as subprocesses need a beat to bind their listeners;
    this is the launcher's readiness check.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            client = ControlClient(host, port, timeout=timeout)
            client.call("ping")
            return client
        except (OSError, ReproError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ControlError(
        f"no daemon on {host}:{port} after {timeout}s: {last_error}"
    )
