"""Clients for the daemon's line-JSON control API.

:class:`ControlClient` is synchronous — used by the CLI, the live
tests, and the loopback benchmark, all of which run *outside* the
daemon's event loop, so a plain blocking socket is the right tool.
:class:`AsyncControlClient` is its asyncio twin for drivers that hold
many control connections open concurrently (the ``repro.load``
generators).  Both speak one request object per line out, one response
object per line back, strictly in order.

Failures are structured: the daemon answers ``{"ok": false, "code": ...,
"error": ...}`` and :class:`ControlError` carries the stable ``code``
(``bad_request``, ``no_such_channel``, ``enclave_crashed``, …) so
callers branch on codes, not prose.  Timeouts are explicit deadline
errors that say what was being waited for, never silent hangs.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any, Dict, Optional

from repro.errors import ReproError

# Per-line buffer cap for the control plane's asyncio streams.  The
# asyncio default (64 KiB) is too small for batched hub verbs: one
# ``account-pay-many`` line carries hundreds of hex-encoded signed
# requests (~400 bytes each), so servers and async clients both
# allocate this limit instead.  The blocking client reads through a
# socket file object and needs no cap.
CONTROL_LINE_LIMIT = 1 << 20


class ControlError(ReproError):
    """A control command failed; ``code`` is the stable error code.

    ``request_sent`` records whether the request bytes reached the
    transport before the failure.  ``False`` means the daemon cannot
    have seen the command, so even a non-idempotent verb is safe to
    retry; ``True`` (the conservative default) means the command may
    already have been applied and only idempotent verbs may be
    replayed.
    """

    def __init__(self, message: str, code: str = "error",
                 request_sent: bool = True) -> None:
        super().__init__(message)
        self.code = code
        self.request_sent = request_sent


class ControlClient:
    """Blocking line-JSON client with call semantics.

    Usable as a context manager; ``call`` raises :class:`ControlError`
    when the daemon answers ``ok: false`` and returns the rest of the
    response object otherwise.
    """

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    def call(self, cmd: str, timeout: Optional[float] = None,
             **kwargs: Any) -> Dict[str, Any]:
        """Send one command and wait (bounded) for its response.

        ``timeout`` overrides the client default for this call only —
        a ``bench-pay`` needs more room than a ``ping``.
        """
        request = {"cmd": cmd, **kwargs}
        deadline = self.timeout if timeout is None else timeout
        self._socket.settimeout(deadline)
        sent = False
        try:
            self._socket.sendall(json.dumps(request).encode() + b"\n")
            sent = True
            line = self._reader.readline()
        except socket.timeout:
            raise ControlError(
                f"{cmd!r} to {self.host}:{self.port} got no response "
                f"within {deadline:.1f}s", code="timeout",
                request_sent=sent) from None
        except OSError as exc:
            raise ControlError(
                f"transport failure for {cmd!r} to "
                f"{self.host}:{self.port}: {exc}",
                code="connection_closed", request_sent=sent) from exc
        if not line:
            raise ControlError(
                f"daemon at {self.host}:{self.port} hung up "
                f"while {cmd!r} was in flight", code="connection_closed")
        response = json.loads(line)
        if not response.pop("ok", False):
            raise ControlError(
                response.get("error", "unknown daemon error"),
                code=response.get("code", "error"),
            )
        return response

    def reconnect(self) -> None:
        """Tear down and re-dial the control connection.

        After a timeout the stream is desynchronised — a late reply to
        the timed-out request would be mis-paired with the next command
        — so retry helpers must reconnect before re-sending anything.
        """
        self.close()
        self._socket = socket.create_connection((self.host, self.port),
                                                timeout=self.timeout)
        self._reader = self._socket.makefile("rb")

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncControlClient:
    """Asyncio line-JSON control client.

    One coroutine per connection: the daemon serves each control
    connection serially (it awaits a command before reading the next
    line), so a driver that wants N concurrent commands in flight opens
    N clients — which is exactly how ``repro.load`` models N closed-loop
    users.  Create with :meth:`connect`.
    """

    def __init__(self, host: str, port: int,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int,
                      timeout: float = 120.0) -> "AsyncControlClient":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port,
                                        limit=CONTROL_LINE_LIMIT),
                timeout)
        except asyncio.TimeoutError:
            raise ControlError(
                f"connect to {host}:{port} timed out after {timeout:.1f}s",
                code="timeout") from None
        return cls(host, port, reader, writer, timeout=timeout)

    async def call(self, cmd: str, timeout: Optional[float] = None,
                   **kwargs: Any) -> Dict[str, Any]:
        request = {"cmd": cmd, **kwargs}
        deadline = self.timeout if timeout is None else timeout
        # Once the payload is handed to the writer the daemon may
        # receive it even if drain() later fails, so the request counts
        # as sent from the first write onward (same conservative rule
        # as the blocking client).
        sent = False
        try:
            self._writer.write(json.dumps(request).encode() + b"\n")
            sent = True
            await asyncio.wait_for(self._writer.drain(), deadline)
            line = await asyncio.wait_for(self._reader.readline(), deadline)
        except asyncio.TimeoutError:
            raise ControlError(
                f"{cmd!r} to {self.host}:{self.port} got no response "
                f"within {deadline:.1f}s", code="timeout",
                request_sent=sent) from None
        except OSError as exc:
            raise ControlError(
                f"transport failure for {cmd!r} to "
                f"{self.host}:{self.port}: {exc}",
                code="connection_closed", request_sent=sent) from exc
        if not line:
            raise ControlError(
                f"daemon at {self.host}:{self.port} hung up "
                f"while {cmd!r} was in flight", code="connection_closed")
        response = json.loads(line)
        if not response.pop("ok", False):
            raise ControlError(
                response.get("error", "unknown daemon error"),
                code=response.get("code", "error"),
            )
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    async def __aenter__(self) -> "AsyncControlClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


def _command_is_idempotent(cmd: str) -> bool:
    """Look up ``cmd``'s declared idempotency in the daemon registry.

    Unknown commands (or an import failure in stripped-down test rigs)
    default to non-idempotent: the only safe assumption about a verb we
    know nothing about is that replaying it is not free.
    """
    try:
        from repro.runtime.daemon import COMMANDS
        return COMMANDS._commands[cmd].idempotent
    except Exception:
        return False


def call_with_retry(client: ControlClient, cmd: str, *, attempts: int = 5,
                    backoff: float = 0.1, backoff_cap: float = 2.0,
                    idempotent: Optional[bool] = None,
                    **kwargs: Any) -> Dict[str, Any]:
    """Retry a command on *transport-level* failures with exponential
    backoff plus jitter.

    Command-level failures (the daemon answered ``ok: false``) are never
    retried: the daemon spoke, and blindly repeating a rejected request
    is how duplicate payments happen.

    Transport failures are retried only when replaying is provably
    safe: either the request never reached the wire
    (``ControlError.request_sent`` is False), or the command is
    idempotent — declared per-command in the daemon registry, or
    overridden with the ``idempotent`` argument.  A non-idempotent verb
    that failed *mid-response* (request possibly applied, reply lost)
    raises ``code="retry_unsafe"`` instead of double-applying: the
    caller must inspect daemon state to learn the outcome.

    Each retry re-dials the connection: after a timeout the old stream
    may still deliver the late reply, which would be mis-paired with
    the retried request.
    """
    if idempotent is None:
        idempotent = _command_is_idempotent(cmd)
    last: Optional[Exception] = None
    for attempt in range(attempts):
        try:
            return client.call(cmd, **kwargs)
        except ControlError as exc:
            if exc.code not in ("timeout", "connection_closed"):
                raise
            if not idempotent and exc.request_sent:
                raise ControlError(
                    f"{cmd!r} hit a transport failure after the request "
                    f"was sent and is not idempotent; refusing to replay "
                    f"(outcome unknown): {exc}",
                    code="retry_unsafe") from exc
            last = exc
        except (OSError, json.JSONDecodeError) as exc:
            # Raw transport errors carry no sent/unsent marker; assume
            # the request may have been applied.
            if not idempotent:
                raise ControlError(
                    f"{cmd!r} hit an ambiguous transport failure and is "
                    f"not idempotent; refusing to replay: {exc}",
                    code="retry_unsafe") from exc
            last = exc
        if attempt < attempts - 1:
            time.sleep(backoff * (1.0 + random.random() * 0.5))
            backoff = min(backoff * 2, backoff_cap)
            try:
                client.reconnect()
            except OSError as exc:
                last = exc
    raise ControlError(
        f"{cmd!r} failed after {attempts} attempts: {last}",
        code="retries_exhausted")


def wait_for_control(host: str, port: int, timeout: float = 15.0,
                     interval: float = 0.05) -> ControlClient:
    """Poll until a daemon's control port accepts a ``ping``.

    Daemons started as subprocesses need a beat to bind their listeners;
    this is the launcher's readiness check.  A poll attempt that fails
    mid-ping closes its socket before retrying — a slow-starting daemon
    must not leak one file descriptor per tick — and the poll interval
    backs off (with jitter) so many concurrent launches don't hammer
    the loopback in lockstep.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    sleep = interval
    while time.monotonic() < deadline:
        client: Optional[ControlClient] = None
        try:
            client = ControlClient(host, port, timeout=timeout)
            client.call("ping")
            return client
        except (OSError, ReproError, json.JSONDecodeError) as exc:
            if client is not None:
                client.close()
            last_error = exc
            time.sleep(sleep * (1.0 + random.random() * 0.25))
            sleep = min(sleep * 1.5, 1.0)
    raise ControlError(
        f"no daemon on {host}:{port} after {timeout}s: {last_error}",
        code="timeout")
