"""Control-plane messages for the live runtime (wire tags 50–69).

These ride the same codec as the protocol messages but never enter an
enclave: they are host-to-host traffic — peer handshakes, channel-open
coordination, and simulated-blockchain gossip between daemon processes.
Protocol payloads (sealed envelopes) stay opaque bytes inside
:class:`Envelope`; the runtime cannot read them even though it carries
them, mirroring the paper's untrusted-host model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.blockchain.chain import Block
from repro.blockchain.transaction import Transaction
from repro.runtime import codec
from repro.tee.attestation import Quote


@dataclass(frozen=True)
class Hello:
    """First frame on a peer connection: who I am and my enclave's quote.

    ``report_data`` inside the quote binds the enclave's channel (identity)
    public key, so the receiver can run
    :func:`~repro.network.secure_channel.channel_from_quote` without any
    further round trip."""

    name: str
    host: str
    port: int
    settlement_address: str
    quote: Quote
    # The sender's per-boot session nonce.  Both sides hash the two nonces
    # (order-independently) into the secure channel's key derivation, so a
    # daemon restart yields fresh channel keys — see
    # ``NodeDaemon._install_peer``.
    session: bytes = b""
    # Sender's local clock (its WallClockScheduler) at send time.  Feeds
    # the NTP-style skew estimate that lets repro.obs.merge place spans
    # from daemons with different clock epochs on one timeline.  The name
    # sorts after every older field, so version-1 frames still decode.
    t_sent: float = 0.0
    # The sender's per-boot routing-gossip public key (compressed SEC1),
    # pinned by the receiver so gossip claiming this origin must verify
    # under it.  "topo_key" sorts after "t_sent" ('_' < 'o'), keeping
    # older frames decodable.
    topo_key: bytes = b""


@dataclass(frozen=True)
class HelloAck:
    """Handshake response: the responder's identity, quote, and session
    nonce (same role as :class:`Hello.session`)."""

    name: str
    settlement_address: str
    quote: Quote
    session: bytes = b""
    # Skew-estimation timestamps (responder's local clock), all defaulted
    # so older peers' four-field frames still decode: ``t_echo`` echoes
    # the Hello's ``t_sent`` back (stateless NTP), ``t_received`` is when
    # the Hello arrived, ``t_sent`` when this ack left.
    t_echo: float = 0.0
    t_received: float = 0.0
    t_sent: float = 0.0
    # Responder's routing-gossip public key (see Hello.topo_key).
    topo_key: bytes = b""


@dataclass(frozen=True)
class Envelope:
    """A sealed protocol message in transit between two endpoints.

    ``payload`` is normally the secure-channel ciphertext, carried opaque;
    ``encoded`` marks the rare non-bytes payload shipped as a nested codec
    frame instead.  The runtime routes on the cleartext sender/destination
    names exactly as ``BaseNetwork`` does in-process."""

    sender: str
    destination: str
    payload: bytes
    encoded: bool = False


@dataclass(frozen=True)
class OpenChannel:
    """Host A asks host B to instruct B's enclave to open ``channel_id``.

    Carries the initiator's settlement address — each side's
    ``new_pay_channel`` ecall needs both addresses (Alg. 1)."""

    channel_id: str
    initiator: str
    settlement_address: str


@dataclass(frozen=True)
class OpenChannelOk:
    """Responder's confirmation that its enclave created the channel
    record (its NewChannelAck is already on the wire ahead of this)."""

    channel_id: str
    responder: str
    settlement_address: str


@dataclass(frozen=True)
class ChainTx:
    """Mempool gossip: a transaction accepted by the sender's local copy
    of the simulated blockchain."""

    transaction: Transaction


@dataclass(frozen=True)
class ChainMine:
    """Legacy block gossip (pre-fork-choice): the sender mined a block of
    ``txids`` and every daemon re-mined its own mempool replica, merely
    warning on divergence.  Superseded by :class:`ChainBlock`, which
    carries the block body so replicas converge by hash-chain
    reconciliation instead of hope; kept registered so old frames still
    decode (receivers ignore them with a warning)."""

    txids: Tuple[str, ...]
    height: int


@dataclass(frozen=True)
class ChainBlock:
    """Block-body gossip: the sender's chain accepted ``block``.

    The receiver attaches it with ``Blockchain.receive_block`` — fork
    choice decides whether it extends, forks, or reorganises the local
    active chain.  When the parent is unknown the receiver answers with a
    :class:`ChainRequest` for it, walking the sender's chain backwards
    until the histories connect."""

    block: Block


@dataclass(frozen=True)
class ChainRequest:
    """Ask a peer for the block body with ``block_hash`` (orphan
    resolution during hash-chain reconciliation)."""

    block_hash: str


@dataclass(frozen=True)
class Echo:
    """Latency probe.  Because control frames share the per-peer FIFO with
    protocol envelopes, an ``Echo`` sent right after a payment is only
    answered once the peer has processed that payment — its round trip is
    an honest payment-latency sample."""

    seq: int
    origin: str
    reply: bool = False


codec.register_dataclass(50, Hello)
codec.register_dataclass(51, HelloAck)
codec.register_dataclass(52, Envelope)
codec.register_dataclass(53, OpenChannel)
codec.register_dataclass(54, OpenChannelOk)
codec.register_dataclass(55, ChainTx)
codec.register_dataclass(56, ChainMine)
codec.register_dataclass(57, Echo)
codec.register_dataclass(60, ChainBlock)
codec.register_dataclass(61, ChainRequest)
