"""Live deployment runtime (DESIGN.md S19).

Everything under :mod:`repro.runtime` exists to run the simulator's pure
protocol state machines as real networked processes:

* :mod:`repro.runtime.codec` — versioned, length-prefixed wire format with
  a registry covering every protocol message dataclass;
* :mod:`repro.runtime.wallclock` — a wall-clock shim satisfying the
  :class:`~repro.simulation.scheduler.Scheduler` interface protocol code
  relies on;
* :mod:`repro.runtime.transport` — ``AsyncTcpNetwork``, an asyncio TCP
  implementation of the :class:`~repro.network.transport.BaseNetwork`
  interface;
* :mod:`repro.runtime.daemon` — a node daemon hosting one
  :class:`~repro.core.node.TeechainNode` with a line-JSON control API;
* :mod:`repro.runtime.cli` — ``python -m repro.runtime`` entry points.

Only the codec is imported eagerly: the daemon pulls in the full protocol
stack, and :mod:`repro.network.secure_channel` imports the codec, so the
package root must stay import-light to avoid cycles.
"""

from repro.runtime import codec

__all__ = ["codec"]
